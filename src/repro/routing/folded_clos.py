"""Folded-Clos routing: deterministic and adaptive uprouting.

Both algorithms use the classic up*/down* scheme of the k-ary n-tree:
ascend until reaching an ancestor of the destination, then descend
deterministically by destination digit.  They differ only in how the up
port is chosen:

``clos_deterministic`` -- a hash of (source, destination) picks the up
port at every level, spreading pairs across the fabric while keeping
each pair's path fixed (in-order delivery per pair).

``clos_adaptive`` -- the adaptive uprouting of case study A (after Kim
et al., "Adaptive Routing in High-Radix Clos Networks"): each packet
chooses the *least congested* up port, as reported by the router's
congestion sensor.  Because the sensor's view is delayed by its
propagation latency, stale values make many input ports' routing
engines bombard the same seemingly-good output -- the effect §VI-A
quantifies.

Up*/down* routing is deadlock-free with a single VC (the channel
dependency graph of a tree orientation is acyclic), so all VCs are
admissible everywhere and packets may inject on any VC.
"""

from __future__ import annotations

from typing import List

from repro import factory
from repro.routing.base import Candidate, RoutingAlgorithm


class _ClosRoutingBase(RoutingAlgorithm):
    """Shared up*/down* structure; subclasses order the up ports."""

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self.level, self.index = router.address
        self.half_radix = network.half_radix
        self.num_levels = network.num_levels
        # The down-routing decision is static per destination for a given
        # router: cache (is_ancestor, down_candidates) per terminal id.
        self._down_cache: dict = {}

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst = packet.destination
        down = self._down_cache.get(dst)
        if down is None:
            num_vcs = self.router.num_vcs
            if self.network.is_ancestor(self.level, self.index, dst):
                # Descend (or eject at level 0): down port = dst digit.
                down_port = self.network.terminal_digits(dst)[self.level]
                down = [(down_port, vc) for vc in range(num_vcs)]
            else:
                down = []
            self._down_cache[dst] = down
        if down:
            return down
        num_vcs = self.router.num_vcs
        up_ports = self._ordered_up_ports(packet)
        return [(port, vc) for port in up_ports for vc in range(num_vcs)]

    def _ordered_up_ports(self, packet) -> List[int]:
        raise NotImplementedError


@factory.register(RoutingAlgorithm, "clos_deterministic")
class ClosDeterministicRouting(_ClosRoutingBase):
    """Hash-based deterministic uprouting (in-order per src/dst pair)."""

    def _ordered_up_ports(self, packet) -> List[int]:
        k = self.half_radix
        mix = (
            packet.source * 2654435761 + packet.destination * 40503 + self.level
        ) & 0xFFFFFFFF
        chosen = mix % k
        # The hashed port first; the rest follow as a fallback ordering
        # (they are only used if the first choice's VCs are all owned).
        return [k + (chosen + i) % k for i in range(k)]


@factory.register(RoutingAlgorithm, "clos_adaptive")
class ClosAdaptiveRouting(_ClosRoutingBase):
    """Least-congested uprouting driven by the (delayed) sensor."""

    def _ordered_up_ports(self, packet) -> List[int]:
        k = self.half_radix
        num_vcs = self.router.num_vcs
        # Rotate the tie-break origin per packet so equal sensed values
        # spread uniformly instead of herding onto the lowest port.
        rotation = packet.global_id % k
        congestion_status = self.router.congestion_status
        scored = []
        for i in range(k):
            up = (rotation + i) % k
            port = k + up
            # The sensor's configured granularity already aggregates VCs
            # for port-level accounting; query VC 0 as the representative.
            scored.append((congestion_status(port, 0), port))
        scored.sort(key=lambda pair: pair[0])  # stable: rotation breaks ties
        return [port for _congestion, port in scored]

"""Torus routing algorithms.

``torus_dimension_order`` -- deterministic dimension order routing (DOR)
with dateline VC classes, the algorithm of case study C (Table I).
Packets resolve dimension 0 completely, then dimension 1, and so on.
Deadlock freedom on each ring uses the dateline scheme [11]: packets
start a dimension in VC class 0 and switch to class 1 on the hop that
crosses the wrap-around link; since DOR travel within a dimension is
monotone, at most one crossing occurs.  With ``V`` virtual channels,
even VCs form class 0 and odd VCs class 1 (so V must be even and >= 2).

``torus_minimal_adaptive`` -- Duato-style minimal adaptive routing: any
profitable dimension may be taken on the adaptive VC class, ordered by
sensed congestion, with DOR on the escape class as the last candidate.
The escape class keeps the network deadlock-free; the adaptive class
(the upper half of the VCs) may be claimed in any order.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import factory
from repro.routing.base import Candidate, RoutingAlgorithm, RoutingError
from repro.topology.util import ring_distance


class _TorusRoutingBase(RoutingAlgorithm):
    """Shared coordinate helpers for torus routing."""

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self.coords = router.address
        self.widths = network.widths
        self.concentration = network.concentration
        # terminal port -> shared ejection candidate list (iterated only).
        self._eject_cache: dict = {}

    def _ejection_candidates(self, packet) -> List[Candidate]:
        port = self.network.terminal_port(packet.destination)
        candidates = self._eject_cache.get(port)
        if candidates is None:
            candidates = [(port, vc) for vc in range(self.router.num_vcs)]
            self._eject_cache[port] = candidates
        return candidates

    def _first_differing_dimension(self, dst_coords) -> int:
        for dim, (own, dst) in enumerate(zip(self.coords, dst_coords)):
            if own != dst:
                return dim
        raise RoutingError("no differing dimension at a non-destination router")

    def _dst_coords(self, packet):
        return self.network.router_coords(
            self.network.terminal_router(packet.destination)
        )

    def _dateline_class(self, packet, dim: int, direction: int) -> int:
        """0 before the dateline, 1 at or after the wrap hop.

        Geometric test: remember where the packet started traveling in
        this dimension; since minimal travel within a ring is monotone,
        it has crossed the wrap iff it moved "backwards" relative to its
        start.  The hop that wraps itself already uses class 1.
        """
        own = self.coords[dim]
        width = self.widths[dim]
        state = packet.routing_state
        if state.get("dl_dim") != dim:
            state["dl_dim"] = dim
            state["dl_start"] = own
        start = state["dl_start"]
        crossed = (direction == +1 and own < start) or (
            direction == -1 and own > start
        )
        wraps = (direction == +1 and own == width - 1) or (
            direction == -1 and own == 0
        )
        return 1 if (crossed or wraps) else 0


@factory.register(RoutingAlgorithm, "torus_dimension_order")
class TorusDimensionOrderRouting(_TorusRoutingBase):
    """Deterministic DOR with dateline VC classes."""

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        if router.num_vcs < 2 or router.num_vcs % 2 != 0:
            raise RoutingError(
                "torus_dimension_order needs an even number of VCs >= 2 "
                f"for the dateline scheme, got {router.num_vcs}"
            )
        # The geometric decision (dimension, direction, output port) for
        # a destination router is a pure function of this router's fixed
        # coordinates, so it is memoized per destination.  Only the
        # dateline class (which reads and updates packet routing state)
        # must be recomputed per packet.
        self._dor_memo: dict = {}
        # Dateline class -> rotation -> VC preference order.
        half = router.num_vcs // 2
        self._class_rotations = tuple(
            tuple(
                tuple(vcs[rot:] + vcs[:rot]) for rot in range(half)
            )
            for vcs in (
                [vc for vc in range(router.num_vcs) if vc % 2 == parity]
                for parity in (0, 1)
            )
        )
        # (port, vc_class, rotation) -> shared candidate list.  Callers
        # only iterate candidates, never mutate them.
        self._candidate_cache: dict = {}

    @classmethod
    def injection_vcs(cls, num_vcs: int) -> List[int]:
        # Packets enter the network in dateline class 0 (even VCs).
        return [vc for vc in range(num_vcs) if vc % 2 == 0]

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            return self._ejection_candidates(packet)
        memo = self._dor_memo.get(dst_router)
        if memo is None:
            dst_coords = self.network.router_coords(dst_router)
            dim = self._first_differing_dimension(dst_coords)
            width = self.widths[dim]
            _hops, direction = ring_distance(
                self.coords[dim], dst_coords[dim], width
            )
            port = self.network.port_for(dim, direction)
            memo = (dim, direction, port)
            self._dor_memo[dst_router] = memo
        dim, direction, port = memo
        vc_class = self._dateline_class(packet, dim, direction)

        rotations = self._class_rotations[vc_class]
        rotation = packet.global_id % len(rotations)
        key = (port, vc_class, rotation)
        candidates = self._candidate_cache.get(key)
        if candidates is None:
            candidates = [(port, vc) for vc in rotations[rotation]]
            self._candidate_cache[key] = candidates
        return candidates


@factory.register(RoutingAlgorithm, "torus_minimal_adaptive")
class TorusMinimalAdaptiveRouting(_TorusRoutingBase):
    """Minimal adaptive routing with a DOR escape class.

    VC layout: the lower half of the VCs is the escape class (even/odd
    dateline pairs, exactly as ``torus_dimension_order``); the upper
    half is the fully adaptive class.  Needs ``num_vcs`` divisible by 4.
    """

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        if router.num_vcs < 4 or router.num_vcs % 4 != 0:
            raise RoutingError(
                "torus_minimal_adaptive needs num_vcs divisible by 4 "
                f"(escape pairs + adaptive class), got {router.num_vcs}"
            )
        self.escape_vcs = router.num_vcs // 2

    @classmethod
    def injection_vcs(cls, num_vcs: int) -> List[int]:
        return [vc for vc in range(num_vcs // 2) if vc % 2 == 0]

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            return self._ejection_candidates(packet)
        dst_coords = self._dst_coords(packet)

        # Adaptive candidates: every profitable dimension, least
        # congested first, on the adaptive (upper-half) VCs.
        profitable: List[Tuple[float, int]] = []
        for dim, (own, dst) in enumerate(zip(self.coords, dst_coords)):
            if own == dst:
                continue
            _hops, direction = ring_distance(own, dst, self.widths[dim])
            port = self.network.port_for(dim, direction)
            adaptive_vcs = range(self.escape_vcs, self.router.num_vcs)
            congestion = self.port_congestion(port, adaptive_vcs)
            profitable.append((congestion, port))
        profitable.sort()
        candidates: List[Candidate] = [
            (port, vc)
            for _congestion, port in profitable
            for vc in range(self.escape_vcs, self.router.num_vcs)
        ]

        # Escape candidates: plain DOR with datelines on the lower half.
        dim = self._first_differing_dimension(dst_coords)
        width = self.widths[dim]
        _hops, direction = ring_distance(self.coords[dim], dst_coords[dim], width)
        port = self.network.port_for(dim, direction)
        vc_class = self._dateline_class(packet, dim, direction)
        candidates.extend(
            (port, vc)
            for vc in range(self.escape_vcs)
            if vc % 2 == vc_class
        )
        return candidates

"""Dragonfly routing [Kim et al., ISCA'08].

``dragonfly_minimal`` -- the l-g-l minimal path: a local hop to the
gateway router holding the direct global channel, the global hop, and a
local hop to the destination router.

``dragonfly_valiant`` -- Valiant group balancing: minimal to a random
intermediate *group*, then minimal to the destination (worst case
l-g-l-g-l).

``dragonfly_ugal`` -- UGAL-L: at the source router, compare the sensed
congestion of the minimal first hop against a random Valiant first hop,
weighted by path lengths, and commit.

VC discipline: the VC index equals the number of router-to-router hops
taken so far (clamped).  Minimal needs ``num_vcs >= 3``; the Valiant
variants need ``num_vcs >= 5``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import factory
from repro.routing.base import Candidate, RoutingAlgorithm, RoutingError


class _DragonflyRoutingBase(RoutingAlgorithm):
    MIN_VCS = 3

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        if router.num_vcs < self.MIN_VCS:
            raise RoutingError(
                f"{type(self).__name__} needs num_vcs >= {self.MIN_VCS}, "
                f"got {router.num_vcs}"
            )
        self.group, self.local = router.address
        self.concentration = network.concentration

    def _is_terminal_input(self) -> bool:
        return self.input_port < self.concentration

    def _ejection(self, packet) -> List[Candidate]:
        port = self.network.terminal_port(packet.destination)
        return [(port, vc) for vc in range(self.router.num_vcs)]

    def _hop_vc(self, packet) -> int:
        return min(packet.hop_count, self.router.num_vcs - 1)

    def _minimal_port_toward_router(self, dst_router: int) -> Optional[int]:
        """Next minimal hop toward a router, or None if we are there."""
        if dst_router == self.router.router_id:
            return None
        dst_group = self.network.router_group(dst_router)
        if dst_group == self.group:
            return self.network.local_port(
                self.local, dst_router % self.network.group_size
            )
        exit_local, global_port = self.network.global_route(self.group, dst_group)
        if exit_local == self.local:
            return global_port
        return self.network.local_port(self.local, exit_local)

    def _entry_router(self, dst_group: int) -> int:
        """The router in ``dst_group`` where the direct channel lands."""
        entry_local, _port = self.network.global_route(dst_group, self.group)
        return dst_group * self.network.group_size + entry_local


@factory.register(RoutingAlgorithm, "dragonfly_minimal")
class DragonflyMinimalRouting(_DragonflyRoutingBase):
    """l-g-l minimal routing."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        port = self._minimal_port_toward_router(dst_router)
        if port is None:
            return self._ejection(packet)
        return [(port, self._hop_vc(packet))]


class _TwoPhaseDragonflyRouting(_DragonflyRoutingBase):
    MIN_VCS = 5

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self._rng = network.random.generator(
            f"routing.{router.full_name}.in{input_port}"
        )

    def _pick_intermediate_group(self) -> int:
        return int(self._rng.integers(self.network.num_groups))

    def _two_phase_route(self, packet) -> List[Candidate]:
        state = packet.routing_state
        vc = self._hop_vc(packet)
        if state.get("val_phase") == 0:
            target_group = state["val_group"]
            if self.group == target_group:
                state["val_phase"] = 1
            else:
                port = self._minimal_port_toward_router(
                    self._entry_router(target_group)
                )
                if port is None:  # already at the entry router
                    state["val_phase"] = 1
                else:
                    return [(port, vc)]
        dst_router = self.network.terminal_router(packet.destination)
        port = self._minimal_port_toward_router(dst_router)
        if port is None:
            return self._ejection(packet)
        return [(port, vc)]


@factory.register(RoutingAlgorithm, "dragonfly_valiant")
class DragonflyValiantRouting(_TwoPhaseDragonflyRouting):
    """Always detour through a random intermediate group."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        state = packet.routing_state
        if self._is_terminal_input() and "val_phase" not in state:
            dst_group = self.network.router_group(
                self.network.terminal_router(packet.destination)
            )
            intermediate = self._pick_intermediate_group()
            if intermediate in (self.group, dst_group):
                state["val_phase"] = 1
            else:
                state["val_phase"] = 0
                state["val_group"] = intermediate
                packet.non_minimal = True
        return self._two_phase_route(packet)


@factory.register(RoutingAlgorithm, "dragonfly_ugal")
class DragonflyUgalRouting(_TwoPhaseDragonflyRouting):
    """UGAL-L over group-level Valiant paths.

    Settings:
        ``ugal_bias`` -- additive bias favoring the minimal path.
    """

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self.bias = settings.get_float("ugal_bias", 0.0)

    def route(self, packet, input_vc: int) -> List[Candidate]:
        state = packet.routing_state
        if self._is_terminal_input() and "val_phase" not in state:
            self._decide(packet)
        return self._two_phase_route(packet)

    def _decide(self, packet) -> None:
        state = packet.routing_state
        dst_router = self.network.terminal_router(packet.destination)
        dst_group = self.network.router_group(dst_router)
        intermediate = self._pick_intermediate_group()
        min_port = self._minimal_port_toward_router(dst_router)
        if min_port is None or intermediate in (self.group, dst_group):
            state["val_phase"] = 1
            return
        val_port = self._minimal_port_toward_router(self._entry_router(intermediate))
        if val_port is None:
            state["val_phase"] = 1
            return
        # Group-level hop estimates: minimal <= 3, valiant <= 5.
        min_hops = 1 if dst_group == self.group else 3
        val_hops = min_hops + 2
        q_min = self.congestion(min_port, self._hop_vc(packet))
        q_val = self.congestion(val_port, self._hop_vc(packet))
        if q_min * min_hops <= q_val * val_hops + self.bias:
            state["val_phase"] = 1
        else:
            state["val_phase"] = 0
            state["val_group"] = intermediate
            packet.non_minimal = True

"""HyperX / flattened butterfly routing.

``hyperx_dimension_order`` -- minimal DOR: resolve each dimension with
its single direct hop, in dimension order.  Deadlock-free with one VC
(dimension ordering makes the channel dependency graph acyclic).

``hyperx_valiant`` -- Valiant load balancing: route minimally to a
uniformly random intermediate router, then minimally to the
destination.  VCs increase with hop count (phase separation), so
``num_vcs`` must be at least the worst-case hop count.

``hyperx_ugal`` -- Universal Globally Adaptive Load-balancing [Singh],
the algorithm of case study B: at the source router the packet compares
the sensed congestion of its minimal first hop against a random Valiant
alternative, each weighted by path length, and commits to whichever
wins::

    q_min * h_min <= q_val * h_val + bias   ->  go minimal

The congestion values come from the router's congestion sensor, so the
credit accounting style (VC vs port granularity; output, downstream, or
both credit pools) and the sensing latency directly shape UGAL's
decisions -- which is precisely what §VI-B studies.

VC discipline for all non-minimal options: the VC index equals the
number of router-to-router hops already taken (clamped to the top VC).
Every hop moves to a strictly higher VC until the clamp, which breaks
cyclic dependencies for paths up to ``num_vcs`` hops; configurations
whose worst-case path exceeds ``num_vcs`` hops are rejected.
"""

from __future__ import annotations

from typing import List, Optional

from repro import factory
from repro.routing.base import Candidate, RoutingAlgorithm, RoutingError


class _HyperXRoutingBase(RoutingAlgorithm):
    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self.coords = router.address
        self.widths = network.widths
        self.concentration = network.concentration

    def _is_terminal_input(self) -> bool:
        return self.input_port < self.concentration

    def _ejection(self, packet) -> List[Candidate]:
        port = self.network.terminal_port(packet.destination)
        return [(port, vc) for vc in range(self.router.num_vcs)]

    def _minimal_port_toward(self, dst_router: int) -> Optional[int]:
        """The DOR next-hop port toward a router, or None if here."""
        dst_coords = self.network.router_coords(dst_router)
        for dim, (own, dst) in enumerate(zip(self.coords, dst_coords)):
            if own != dst:
                return self.network.port_for(dim, own, dst)
        return None

    def _hop_vc(self, packet) -> int:
        return min(packet.hop_count, self.router.num_vcs - 1)


@factory.register(RoutingAlgorithm, "hyperx_dimension_order")
class HyperXDimensionOrderRouting(_HyperXRoutingBase):
    """Minimal dimension order routing."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            return self._ejection(packet)
        port = self._minimal_port_toward(dst_router)
        vcs = list(range(self.router.num_vcs))
        rotation = packet.global_id % len(vcs)
        vcs = vcs[rotation:] + vcs[:rotation]
        return [(port, vc) for vc in vcs]


class _TwoPhaseHyperXRouting(_HyperXRoutingBase):
    """Shared Valiant machinery: phase 0 to the intermediate, phase 1 home."""

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        max_hops = 2 * len(self.widths)  # valiant worst case
        if router.num_vcs < max_hops:
            raise RoutingError(
                f"{type(self).__name__} needs num_vcs >= {max_hops} "
                f"(2 hops per dimension), got {router.num_vcs}"
            )
        self._rng = network.random.generator(
            f"routing.{router.full_name}.in{input_port}"
        )

    def _pick_intermediate(self, packet) -> int:
        num_routers = len(self.network.routers)
        return int(self._rng.integers(num_routers))

    def _two_phase_route(self, packet) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        state = packet.routing_state
        vc = self._hop_vc(packet)
        if state.get("val_phase") == 0:
            intermediate = state["val_intermediate"]
            port = self._minimal_port_toward(intermediate)
            if port is None:  # reached the intermediate: switch phases
                state["val_phase"] = 1
            else:
                return [(port, vc)]
        if dst_router == self.router.router_id:
            return self._ejection(packet)
        return [(self._minimal_port_toward(dst_router), vc)]


@factory.register(RoutingAlgorithm, "hyperx_valiant")
class HyperXValiantRouting(_TwoPhaseHyperXRouting):
    """Valiant load balancing: always via a random intermediate."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        state = packet.routing_state
        if self._is_terminal_input() and "val_phase" not in state:
            dst_router = self.network.terminal_router(packet.destination)
            intermediate = self._pick_intermediate(packet)
            if intermediate in (self.router.router_id, dst_router):
                state["val_phase"] = 1  # degenerate: go minimal
            else:
                state["val_phase"] = 0
                state["val_intermediate"] = intermediate
                packet.non_minimal = True
                packet.intermediate = intermediate
        return self._two_phase_route(packet)


@factory.register(RoutingAlgorithm, "hyperx_ugal")
class HyperXUgalRouting(_TwoPhaseHyperXRouting):
    """UGAL: per-packet source-routed choice of minimal vs Valiant.

    Settings:
        ``ugal_bias`` -- additive bias favoring the minimal path
            (default 0.0, in sensed-congestion units).
    """

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self.bias = settings.get_float("ugal_bias", 0.0)

    def route(self, packet, input_vc: int) -> List[Candidate]:
        state = packet.routing_state
        if self._is_terminal_input() and "val_phase" not in state:
            self._decide(packet)
        return self._two_phase_route(packet)

    def _decide(self, packet) -> None:
        state = packet.routing_state
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            state["val_phase"] = 1  # local delivery, nothing to balance
            return
        intermediate = self._pick_intermediate(packet)
        if intermediate in (self.router.router_id, dst_router):
            state["val_phase"] = 1
            return
        source_coords = self.coords
        min_port = self._minimal_port_toward(dst_router)
        val_port = self._minimal_port_toward(intermediate)
        min_hops = self._router_hops(dst_router)
        val_hops = self._router_hops(intermediate) + self._hops_between(
            intermediate, dst_router
        )
        q_min = self.congestion(min_port, 0)
        q_val = self.congestion(val_port, 0)
        if q_min * min_hops <= q_val * val_hops + self.bias:
            state["val_phase"] = 1
        else:
            state["val_phase"] = 0
            state["val_intermediate"] = intermediate
            packet.non_minimal = True
            packet.intermediate = intermediate

    def _router_hops(self, other_router: int) -> int:
        other = self.network.router_coords(other_router)
        return sum(1 for a, b in zip(self.coords, other) if a != b)

    def _hops_between(self, router_a: int, router_b: int) -> int:
        a = self.network.router_coords(router_a)
        b = self.network.router_coords(router_b)
        return sum(1 for x, y in zip(a, b) if x != y)

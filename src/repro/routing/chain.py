"""Chain routing for the parking-lot stress topology (§IV-B).

Move toward the destination router along the chain; deadlock-free with
one VC per direction since each direction of a path graph is acyclic.
All VCs are admissible (the two directions never form a cycle through
a buffer because a packet travels in only one direction).
"""

from __future__ import annotations

from typing import List

from repro import factory
from repro.routing.base import Candidate, RoutingAlgorithm


@factory.register(RoutingAlgorithm, "chain")
class ChainRouting(RoutingAlgorithm):
    """Left/right routing on a bidirectional chain."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        network = self.network
        own = self.router.address[0]
        dst_router = network.terminal_router(packet.destination)
        num_vcs = self.router.num_vcs
        if dst_router == own:
            port = network.terminal_port(packet.destination)
        elif dst_router < own:
            port = network.down_port
        else:
            port = network.up_port
        return [(port, vc) for vc in range(num_vcs)]

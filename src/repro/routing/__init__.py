"""Routing algorithms for the packaged topologies (paper §IV-B)."""

from repro.routing.base import Candidate, RoutingAlgorithm, RoutingError

__all__ = ["Candidate", "RoutingAlgorithm", "RoutingError"]

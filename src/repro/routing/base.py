"""Routing algorithm abstraction.

A routing algorithm instance is attached to each router input port
(paper §IV-B): when a packet's head flit reaches the front of an input
VC buffer, the port's routing algorithm produces the set of admissible
``(output port, output VC)`` pairs, ordered by preference.  The router's
VC-allocation stage then claims the first candidate whose output VC is
free.

Routing algorithms are constructed through a factory closure that the
Network hands to each Router it builds, so the router microarchitecture
and the topology/routing pair stay independent (§IV-B).

Error detection (§IV-D): the base class validates every response --
ports must be wired, VCs must be inside the set registered to the
algorithm -- so a buggy user algorithm fails loudly and immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.net.packet import Packet
    from repro.router.base import Router

#: A routing response entry: (output_port, output_vc).
Candidate = Tuple[int, int]


class RoutingError(RuntimeError):
    """Raised when a routing algorithm produces an invalid response."""


class RoutingAlgorithm:
    """Base class for per-input-port routing engines."""

    #: User-defined algorithms declare the topology factory name they
    #: support here (e.g. ``"torus"``; ``"*"`` = any topology).  The
    #: packaged algorithms are instead listed in each Network's
    #: ``compatible_routing`` property; either mechanism satisfies the
    #: network's compatibility check.
    topology: Optional[str] = None

    def __init__(
        self,
        network,
        router: "Router",
        input_port: int,
        settings: "Settings",
    ):
        self.network = network
        self.router = router
        self.input_port = input_port
        self.settings = settings
        # The VCs this algorithm has registered itself to use.  Responses
        # using other VCs are rejected (§IV-D).
        self._registered_vcs = frozenset(range(router.num_vcs))
        # (port, vc) pairs already validated; validity is static per
        # algorithm instance, so each pair is checked exactly once.
        self._validated: set = set()

    # -- VC registration ---------------------------------------------------------

    def register_vcs(self, vcs: Sequence[int]) -> None:
        """Restrict responses to this VC set (e.g. a traffic class)."""
        vcs = frozenset(vcs)
        for vc in vcs:
            if not 0 <= vc < self.router.num_vcs:
                raise RoutingError(f"registered VC {vc} out of range")
        self._registered_vcs = vcs
        self._validated.clear()

    @property
    def registered_vcs(self) -> frozenset:
        return self._registered_vcs

    # -- the algorithm -------------------------------------------------------------

    @classmethod
    def injection_vcs(cls, num_vcs: int) -> List[int]:
        """VCs on which packets may enter the network.

        Topology routing algorithms override this when deadlock freedom
        requires packets to start in a particular VC class (e.g. torus
        dateline VC 0).
        """
        return list(range(num_vcs))

    def route(self, packet: "Packet", input_vc: int) -> List[Candidate]:
        """Produce admissible (port, vc) candidates, best first."""
        raise NotImplementedError

    # -- validated entry point used by routers ---------------------------------------

    def respond(self, packet: "Packet", input_vc: int) -> List[Candidate]:
        response = self.route(packet, input_vc)
        if not response:
            raise RoutingError(
                f"{type(self).__name__} at {self.router.full_name}.in"
                f"{self.input_port} produced no route for {packet!r}"
            )
        validated = self._validated
        for candidate in response:
            if candidate in validated:
                continue
            port, vc = candidate
            if not 0 <= port < self.router.num_ports:
                raise RoutingError(
                    f"routing response port {port} out of range at "
                    f"{self.router.full_name}"
                )
            if not self.router.port_is_wired(port):
                raise RoutingError(
                    f"routing response targets unused output port {port} at "
                    f"{self.router.full_name} for {packet!r}"
                )
            if vc not in self._registered_vcs:
                raise RoutingError(
                    f"routing response VC {vc} not registered to "
                    f"{type(self).__name__} at {self.router.full_name}"
                )
            validated.add(candidate)
        return response

    # -- helpers -----------------------------------------------------------------------

    def congestion(self, port: int, vc: int) -> float:
        """Sensed congestion for a candidate (delayed view, §VI-A)."""
        return self.router.congestion_status(port, vc)

    def port_congestion(self, port: int, vcs: Sequence[int]) -> float:
        """Mean sensed congestion across ``vcs`` of ``port``."""
        vcs = list(vcs)
        if not vcs:
            return 0.0
        return sum(self.router.congestion_status(port, vc) for vc in vcs) / len(vcs)

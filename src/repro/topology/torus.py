"""Torus (k-ary n-cube) topology [Dally & Seitz, Torus Routing Chip].

The network is a grid of routers with wrap-around links in every
dimension.  Each router concentrates ``concentration`` terminals and has
two ports per dimension (one per direction).

Settings:
    ``dimension_widths`` -- list of ints, e.g. ``[8, 8, 8, 8]`` for the
        paper's 4-D torus (case study C).
    ``concentration`` -- terminals per router (default 1).

Port layout on every router::

    0 .. c-1                    terminal ports
    c + 2d                      dimension d, positive (+) direction
    c + 2d + 1                  dimension d, negative (-) direction

Router addresses are coordinate tuples; terminal ``t`` attaches to the
router with flat index ``t // concentration`` at port ``t % concentration``.
"""

from __future__ import annotations

from repro import factory
from repro.net.network import Network
from repro.topology.util import (
    coords_to_index,
    index_to_coords,
    product,
    ring_distance,
)


@factory.register(Network, "torus")
class TorusNetwork(Network):
    """k-ary n-cube with wrap-around links."""

    @property
    def compatible_routing(self):
        return ("torus_dimension_order", "torus_minimal_adaptive")

    def _build(self) -> None:
        self.widths = self.settings.get_int_list("dimension_widths")
        if not self.widths or any(w < 2 for w in self.widths):
            raise ValueError(
                f"dimension_widths must be >= 2 each, got {self.widths}"
            )
        self.concentration = self.settings.get_uint("concentration", 1)
        if self.concentration < 1:
            raise ValueError("concentration must be >= 1")
        self.num_dimensions = len(self.widths)
        num_routers = product(self.widths)
        num_ports = self.concentration + 2 * self.num_dimensions

        for rid in range(num_routers):
            router = self._create_router(f"router{rid}", rid, num_ports)
            router.address = index_to_coords(rid, self.widths)

        # Terminals.
        for tid in range(num_routers * self.concentration):
            interface = self._create_interface(tid)
            router = self.routers[tid // self.concentration]
            self._wire_terminal(interface, router, tid % self.concentration)

        # Rings: wire each router's + port to its +1 neighbor's - port.
        for rid in range(num_routers):
            coords = list(self.routers[rid].address)
            for dim, width in enumerate(self.widths):
                neighbor_coords = list(coords)
                neighbor_coords[dim] = (coords[dim] + 1) % width
                nid = coords_to_index(neighbor_coords, self.widths)
                self._wire_routers(
                    self.routers[rid],
                    self.port_for(dim, +1),
                    self.routers[nid],
                    self.port_for(dim, -1),
                )

    # -- coordinate helpers ------------------------------------------------------

    def port_for(self, dim: int, direction: int) -> int:
        """The router port moving in ``direction`` along ``dim``."""
        if direction not in (+1, -1):
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        return self.concentration + 2 * dim + (0 if direction == +1 else 1)

    def terminal_router(self, terminal_id: int) -> int:
        return terminal_id // self.concentration

    def terminal_port(self, terminal_id: int) -> int:
        return terminal_id % self.concentration

    def router_coords(self, router_id: int):
        return index_to_coords(router_id, self.widths)

    def minimal_hops(self, src_terminal: int, dst_terminal: int) -> int:
        src = index_to_coords(self.terminal_router(src_terminal), self.widths)
        dst = index_to_coords(self.terminal_router(dst_terminal), self.widths)
        return sum(
            ring_distance(s, d, w)[0] for s, d, w in zip(src, dst, self.widths)
        )

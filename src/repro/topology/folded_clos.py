"""Folded-Clos / fat-tree topology [Clos 1953], as a k-ary n-tree.

``num_levels`` levels of routers (level 0 at the leaves), each level
containing ``half_radix ** (num_levels - 1)`` routers.  Every router has
``half_radix`` down ports; all levels except the top also have
``half_radix`` up ports.  Terminals number ``half_radix ** num_levels``.
The paper's case study A uses the 3-level, 4096-terminal instance
(half_radix 16, i.e. radix-32 routers).

Wiring follows the standard k-ary n-tree rule.  Writing a router's
index in base-k digits ``w[num_levels-2] .. w[0]``:

* level-``l`` router ``w``, up port ``u``  <->  level-``l+1`` router
  ``w`` with digit ``l`` replaced by ``u``, down port ``w[l]``.
* terminal ``t`` attaches to the level-0 router ``t // k`` at down
  port ``t % k``.

A level-``l`` router is an ancestor of terminal ``t`` iff its digits at
positions ``l .. num_levels-2`` equal ``t``'s base-k digits at positions
``l+1 .. num_levels-1``.  Minimal routing ascends (any up port -- this
freedom is what adaptive uprouting exploits) until an ancestor of the
destination, then descends deterministically by digit.

Port layout: down ports ``0 .. k-1``, up ports ``k .. 2k-1``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import factory
from repro.net.network import Network


@factory.register(Network, "folded_clos")
class FoldedClosNetwork(Network):
    """k-ary n-tree folded Clos."""

    @property
    def compatible_routing(self):
        return ("clos_deterministic", "clos_adaptive")

    def _build(self) -> None:
        self.half_radix = self.settings.get_uint("half_radix")
        self.num_levels = self.settings.get_uint("num_levels")
        if self.half_radix < 2:
            raise ValueError("half_radix must be >= 2")
        if self.num_levels < 2:
            raise ValueError("num_levels must be >= 2")
        k, n = self.half_radix, self.num_levels
        self.routers_per_level = k ** (n - 1)
        num_terminals = k**n

        # routers[level][index]
        self._grid: List[List] = []
        rid = 0
        for level in range(n):
            is_top = level == n - 1
            num_ports = k if is_top else 2 * k
            row = []
            for index in range(self.routers_per_level):
                router = self._create_router(
                    f"router_l{level}_{index}", rid, num_ports
                )
                router.address = (level, index)
                row.append(router)
                rid += 1
            self._grid.append(row)

        for tid in range(num_terminals):
            interface = self._create_interface(tid)
            self._wire_terminal(interface, self._grid[0][tid // k], tid % k)

        # Up links per the k-ary n-tree rule.
        for level in range(n - 1):
            for index in range(self.routers_per_level):
                digits = self.router_digits(index)
                for up_port in range(k):
                    upper_digits = list(digits)
                    upper_digits[level] = up_port
                    upper_index = self.digits_to_index(upper_digits)
                    self._wire_routers(
                        self._grid[level][index],
                        k + up_port,
                        self._grid[level + 1][upper_index],
                        digits[level],
                    )

    # -- digit helpers ------------------------------------------------------------

    def router_digits(self, index: int) -> Tuple[int, ...]:
        """Base-k digits of a router index, digit 0 first."""
        k, n = self.half_radix, self.num_levels
        digits = []
        for _ in range(n - 1):
            digits.append(index % k)
            index //= k
        return tuple(digits)

    def digits_to_index(self, digits) -> int:
        k = self.half_radix
        index = 0
        for position in reversed(range(len(digits))):
            index = index * k + digits[position]
        return index

    def terminal_digits(self, terminal_id: int) -> Tuple[int, ...]:
        """Base-k digits of a terminal id, digit 0 first (n digits)."""
        k, n = self.half_radix, self.num_levels
        digits = []
        for _ in range(n):
            digits.append(terminal_id % k)
            terminal_id //= k
        return tuple(digits)

    def router_at(self, level: int, index: int):
        return self._grid[level][index]

    def is_ancestor(self, level: int, index: int, terminal_id: int) -> bool:
        """Is router (level, index) an ancestor of ``terminal_id``?"""
        router_digits = self.router_digits(index)
        terminal_digits = self.terminal_digits(terminal_id)
        for position in range(level, self.num_levels - 1):
            if router_digits[position] != terminal_digits[position + 1]:
                return False
        return True

    def ancestor_level(self, src_terminal: int, dst_terminal: int) -> int:
        """Lowest level of a common ancestor of two terminals."""
        src = self.terminal_digits(src_terminal)
        dst = self.terminal_digits(dst_terminal)
        for level in reversed(range(self.num_levels)):
            if src[level] != dst[level]:
                return level
        return 0

    def minimal_hops(self, src_terminal: int, dst_terminal: int) -> int:
        """Router-to-router channel traversals on a minimal path."""
        level = self.ancestor_level(src_terminal, dst_terminal)
        return 2 * level  # `level` hops up plus `level` hops down

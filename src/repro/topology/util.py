"""Mixed-radix coordinate arithmetic shared by the topologies."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def index_to_coords(index: int, widths: Sequence[int]) -> Tuple[int, ...]:
    """Decompose a flat index into mixed-radix coordinates.

    Dimension 0 is the fastest varying digit:
    ``index = c[0] + c[1]*w[0] + c[2]*w[0]*w[1] + ...``.
    """
    coords: List[int] = []
    for width in widths:
        coords.append(index % width)
        index //= width
    if index != 0:
        raise ValueError("index out of range for the given widths")
    return tuple(coords)


def coords_to_index(coords: Sequence[int], widths: Sequence[int]) -> int:
    """Inverse of :func:`index_to_coords`."""
    if len(coords) != len(widths):
        raise ValueError("coords/widths length mismatch")
    index = 0
    stride = 1
    for coord, width in zip(coords, widths):
        if not 0 <= coord < width:
            raise ValueError(f"coordinate {coord} out of range [0, {width})")
        index += coord * stride
        stride *= width
    return index


def product(widths: Sequence[int]) -> int:
    result = 1
    for width in widths:
        result *= width
    return result


def ring_distance(a: int, b: int, k: int) -> Tuple[int, int]:
    """(hops, direction) for the shortest way around a ring of size k.

    direction is +1 or -1; ties (exactly half way) resolve to +1.
    """
    forward = (b - a) % k
    backward = (a - b) % k
    if forward <= backward:
        return forward, +1
    return backward, -1

"""HyperX topology [Ahn et al., SC'09].

Routers form an n-dimensional lattice where every dimension is fully
connected (a clique): moving within a dimension takes exactly one hop.
HyperX generalizes the hypercube (all widths 2) and the flattened
butterfly [Kim et al., ISCA'07]; the 1-D instance with 32 routers and
concentration 32 is the paper's case study B network (Table I: 63-port
routers, 1024 terminals).

Settings:
    ``dimension_widths`` -- routers per dimension, e.g. ``[32]`` for the
        1-D flattened butterfly.
    ``concentration`` -- terminals per router.

Port layout on every router::

    0 .. c-1                                  terminal ports
    c + offset(d) + j'                        dimension d, link to the
                                              router with coordinate j in
                                              that dimension, where
                                              j' = j if j < own coordinate
                                              else j - 1

with ``offset(d) = sum(widths[e] - 1 for e < d)``.
"""

from __future__ import annotations

from repro import factory
from repro.net.network import Network
from repro.topology.util import coords_to_index, index_to_coords, product


@factory.register(Network, "hyperx")
class HyperXNetwork(Network):
    """n-dimensional HyperX / flattened butterfly."""

    @property
    def compatible_routing(self):
        return ("hyperx_dimension_order", "hyperx_valiant", "hyperx_ugal")

    def _build(self) -> None:
        self.widths = self.settings.get_int_list("dimension_widths")
        if not self.widths or any(w < 2 for w in self.widths):
            raise ValueError(f"dimension_widths must be >= 2 each, got {self.widths}")
        self.concentration = self.settings.get_uint("concentration", 1)
        if self.concentration < 1:
            raise ValueError("concentration must be >= 1")
        self.num_dimensions = len(self.widths)
        num_routers = product(self.widths)
        num_ports = self.concentration + sum(w - 1 for w in self.widths)

        self._dim_offsets = []
        offset = 0
        for width in self.widths:
            self._dim_offsets.append(offset)
            offset += width - 1

        for rid in range(num_routers):
            router = self._create_router(f"router{rid}", rid, num_ports)
            router.address = index_to_coords(rid, self.widths)

        for tid in range(num_routers * self.concentration):
            interface = self._create_interface(tid)
            router = self.routers[tid // self.concentration]
            self._wire_terminal(interface, router, tid % self.concentration)

        # Cliques: wire each ordered pair once (lower coordinate initiates).
        for rid in range(num_routers):
            coords = self.routers[rid].address
            for dim, width in enumerate(self.widths):
                own = coords[dim]
                for other in range(own + 1, width):
                    neighbor_coords = list(coords)
                    neighbor_coords[dim] = other
                    nid = coords_to_index(neighbor_coords, self.widths)
                    self._wire_routers(
                        self.routers[rid],
                        self.port_for(dim, own, other),
                        self.routers[nid],
                        self.port_for(dim, other, own),
                    )

    # -- coordinate helpers ------------------------------------------------------

    def port_for(self, dim: int, own_coord: int, target_coord: int) -> int:
        """The port on a router at ``own_coord`` reaching ``target_coord``."""
        if target_coord == own_coord:
            raise ValueError("no self link in a HyperX dimension")
        adjusted = target_coord if target_coord < own_coord else target_coord - 1
        return self.concentration + self._dim_offsets[dim] + adjusted

    def terminal_router(self, terminal_id: int) -> int:
        return terminal_id // self.concentration

    def terminal_port(self, terminal_id: int) -> int:
        return terminal_id % self.concentration

    def router_coords(self, router_id: int):
        return index_to_coords(router_id, self.widths)

    def minimal_hops(self, src_terminal: int, dst_terminal: int) -> int:
        src = self.router_coords(self.terminal_router(src_terminal))
        dst = self.router_coords(self.terminal_router(dst_terminal))
        return sum(1 for s, d in zip(src, dst) if s != d)

"""Dragonfly topology [Kim et al., ISCA'08].

Groups of ``group_size`` routers, fully connected locally; each router
has ``global_links`` ports to other groups, and the groups themselves
form a clique over the global channels.  With the balanced arrangement
``num_groups = group_size * global_links + 1`` every ordered group pair
is joined by exactly one global channel (the "absolute" arrangement).

Settings:
    ``group_size``   -- routers per group (a).
    ``global_links`` -- global channels per router (h).
    ``concentration`` -- terminals per router (p).
    ``num_groups``   -- optional; defaults to a*h + 1 (must be <= that).
    ``global_latency`` -- optional latency for global channels
        (defaults to ``channel_latency``; real systems have much longer
        global cables).

Port layout on every router::

    0 .. p-1                       terminal ports
    p .. p+a-2                     local ports (to the other a-1 routers
                                   in the group, in coordinate order
                                   skipping self)
    p+a-1 .. p+a-1+h-1             global ports
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import factory
from repro.net.network import Network, wire


@factory.register(Network, "dragonfly")
class DragonflyNetwork(Network):
    """Balanced dragonfly with single global channels between groups."""

    @property
    def compatible_routing(self):
        return ("dragonfly_minimal", "dragonfly_valiant", "dragonfly_ugal")

    def _build(self) -> None:
        self.group_size = self.settings.get_uint("group_size")
        self.global_links = self.settings.get_uint("global_links")
        self.concentration = self.settings.get_uint("concentration", 1)
        max_groups = self.group_size * self.global_links + 1
        self.num_groups = self.settings.get_uint("num_groups", max_groups)
        self.global_latency = self.settings.get_uint(
            "global_latency", self.channel_latency
        )
        if self.group_size < 2:
            raise ValueError("group_size must be >= 2")
        if self.num_groups < 2 or self.num_groups > max_groups:
            raise ValueError(
                f"num_groups must be in [2, {max_groups}], got {self.num_groups}"
            )

        a, h, p = self.group_size, self.global_links, self.concentration
        num_ports = p + (a - 1) + h

        for group in range(self.num_groups):
            for local in range(a):
                rid = group * a + local
                router = self._create_router(f"router{rid}", rid, num_ports)
                router.address = (group, local)

        for tid in range(self.num_groups * a * p):
            interface = self._create_interface(tid)
            router = self.routers[tid // p]
            self._wire_terminal(interface, router, tid % p)

        # Local cliques.
        for group in range(self.num_groups):
            for i in range(a):
                for j in range(i + 1, a):
                    self._wire_routers(
                        self.routers[group * a + i],
                        self.local_port(i, j),
                        self.routers[group * a + j],
                        self.local_port(j, i),
                    )

        # Global channels, absolute arrangement: group G's link index
        # ell in [0, a*h) reaches group (ell if ell < G else ell + 1);
        # links beyond num_groups-1 targets are left unwired.
        for group in range(self.num_groups):
            for ell in range(a * h):
                target = ell if ell < group else ell + 1
                if target >= self.num_groups or target <= group:
                    continue  # unwired (small config) or wired by peer
                # This link on the target side has index `group` (since
                # group < target).
                src_router = self.routers[group * a + ell // h]
                dst_router = self.routers[target * a + (group // h)]
                wire(
                    self,
                    src_router,
                    self.global_port(ell % h),
                    dst_router,
                    self.global_port(group % h),
                    self.global_latency,
                    self.channel_period,
                )

    # -- port helpers ---------------------------------------------------------------

    def local_port(self, own_local: int, target_local: int) -> int:
        """Port on router ``own_local`` reaching ``target_local`` (same group)."""
        if target_local == own_local:
            raise ValueError("no local self link")
        adjusted = target_local if target_local < own_local else target_local - 1
        return self.concentration + adjusted

    def global_port(self, link: int) -> int:
        return self.concentration + (self.group_size - 1) + link

    def global_route(self, src_group: int, dst_group: int) -> Tuple[int, int]:
        """(local router index, global port) exiting ``src_group`` toward
        ``dst_group`` over the single direct global channel."""
        if src_group == dst_group:
            raise ValueError("groups are equal; no global hop needed")
        ell = dst_group if dst_group < src_group else dst_group - 1
        return ell // self.global_links, self.global_port(ell % self.global_links)

    def terminal_router(self, terminal_id: int) -> int:
        return terminal_id // self.concentration

    def terminal_port(self, terminal_id: int) -> int:
        return terminal_id % self.concentration

    def router_group(self, router_id: int) -> int:
        return router_id // self.group_size

    def minimal_hops(self, src_terminal: int, dst_terminal: int) -> int:
        src_router = self.terminal_router(src_terminal)
        dst_router = self.terminal_router(dst_terminal)
        if src_router == dst_router:
            return 0
        src_group = self.router_group(src_router)
        dst_group = self.router_group(dst_router)
        if src_group == dst_group:
            return 1
        # Up to: local hop to the gateway, global hop, local hop.
        exit_local, _port = self.global_route(src_group, dst_group)
        entry_local, _port = self.global_route(dst_group, src_group)
        hops = 1  # the global channel
        if src_router % self.group_size != exit_local:
            hops += 1
        if dst_router % self.group_size != entry_local:
            hops += 1
        return hops

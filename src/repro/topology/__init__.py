"""Packaged topologies (paper §IV-B)."""

from repro.topology.dragonfly import DragonflyNetwork
from repro.topology.folded_clos import FoldedClosNetwork
from repro.topology.hyperx import HyperXNetwork
from repro.topology.parking_lot import ParkingLotNetwork
from repro.topology.torus import TorusNetwork

__all__ = [
    "DragonflyNetwork",
    "FoldedClosNetwork",
    "HyperXNetwork",
    "ParkingLotNetwork",
    "TorusNetwork",
]

"""Parking-lot stress topology (paper §IV-B).

A chain of routers, one terminal per router, with all traffic converging
on terminal 0.  Flows joining closer to the head of the chain win a
round-robin arbiter's bandwidth geometrically more often than flows
joining farther away -- the classic parking-lot unfairness that
age-based arbitration is known to fix [Abts & Weisser, SC'07].  SuperSim
ships this topology specifically to stress-test arbitration features.

Settings:
    ``length`` -- number of routers in the chain (>= 2).
    ``concentration`` -- terminals per router (default 1).

Port layout: terminal ports ``0 .. c-1``, port ``c`` toward router
``i-1`` (down-chain, toward terminal 0), port ``c+1`` toward ``i+1``.
"""

from __future__ import annotations

from repro import factory
from repro.net.network import Network


@factory.register(Network, "parking_lot")
class ParkingLotNetwork(Network):
    """A bidirectional chain of routers."""

    @property
    def compatible_routing(self):
        return ("chain",)

    def _build(self) -> None:
        self.length = self.settings.get_uint("length")
        if self.length < 2:
            raise ValueError("chain length must be >= 2")
        self.concentration = self.settings.get_uint("concentration", 1)
        num_ports = self.concentration + 2

        for rid in range(self.length):
            router = self._create_router(f"router{rid}", rid, num_ports)
            router.address = (rid,)

        for tid in range(self.length * self.concentration):
            interface = self._create_interface(tid)
            router = self.routers[tid // self.concentration]
            self._wire_terminal(interface, router, tid % self.concentration)

        for rid in range(self.length - 1):
            self._wire_routers(
                self.routers[rid],
                self.up_port,
                self.routers[rid + 1],
                self.down_port,
            )

    @property
    def down_port(self) -> int:
        """Port toward router i-1 (and ultimately terminal 0)."""
        return self.concentration

    @property
    def up_port(self) -> int:
        """Port toward router i+1 (the tail of the chain)."""
        return self.concentration + 1

    def terminal_router(self, terminal_id: int) -> int:
        return terminal_id // self.concentration

    def terminal_port(self, terminal_id: int) -> int:
        return terminal_id % self.concentration

    def minimal_hops(self, src_terminal: int, dst_terminal: int) -> int:
        return abs(
            self.terminal_router(src_terminal) - self.terminal_router(dst_terminal)
        )

"""Sanitizer plumbing: errors, the base class, method shims, the suite.

A *sanitizer* is a runtime invariant checker that rides along with a
simulation.  SuperSim's built-in error detection (paper §IV-D) raises
on protocol violations that devices can see locally; sanitizers close
the remaining gap -- bugs that type-check, run, and produce plausible
numbers while silently corrupting results (the paper's case-study bug
classes, plus the hazards the freelist engine rewrite introduced).

Design constraints, in priority order:

1. **~0 cost when disabled.**  No sanitizer leaves any trace in the hot
   path unless attached: checks are installed by *replacing class
   methods with wrappers* (:class:`MethodPatch`) and by routing the
   executer through :meth:`Simulator._run_sanitized`, both only while a
   suite is attached.  A simulation that never attaches a suite
   executes byte-for-byte the same code as before this subsystem
   existed (one attribute test per ``run()`` call aside).
2. **Individually toggleable.**  Each sanitizer registers with the
   object factory under a short name (``credit``, ``flit``, ``event``,
   ``det``), exactly like router architectures, so
   ``supersim --sanitize=credit,det`` composes any subset and user
   sanitizers can be dropped in without editing this package.
3. **Fail loud, fail located.**  A violation raises
   :class:`SanitizerError` at the first inconsistent check, carrying
   the simulation time, the component/link, and both sides of the
   violated equation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Union

from repro import factory

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulation


class SanitizerError(RuntimeError):
    """Raised at the first invariant violation a sanitizer detects."""


class MethodPatch:
    """One reversible class-method replacement.

    Wrappers close over the sanitizer instance and look up per-object
    state by ``id()``; objects the sanitizer was not attached to fall
    straight through to the original method, so patched classes remain
    usable by unrelated simulator instances in the same process (the
    lint graph layer constructs throwaway networks, tests run multiple
    simulations, ...).

    Patches stack: when two sanitizers patch the same method, the later
    wrapper closes over the earlier one.  :class:`SanitizerSuite`
    therefore removes patches in strict reverse attach order, and
    ``remove()`` refuses to run out of order rather than silently
    leaving a stale wrapper installed.
    """

    def __init__(
        self,
        cls: type,
        method_name: str,
        make_wrapper: Callable[[Callable], Callable],
    ):
        self.cls = cls
        self.method_name = method_name
        self.original = getattr(cls, method_name)
        self.wrapper = make_wrapper(self.original)

    def install(self) -> None:
        setattr(self.cls, self.method_name, self.wrapper)

    def remove(self) -> None:
        current = getattr(self.cls, self.method_name)
        if current is not self.wrapper:
            raise SanitizerError(
                f"cannot unpatch {self.cls.__name__}.{self.method_name}: "
                f"another wrapper was installed on top; detach sanitizer "
                f"suites in reverse attach order"
            )
        setattr(self.cls, self.method_name, self.original)


class Sanitizer:
    """Base class; concrete sanitizers register with the object factory.

    Lifecycle: ``attach(simulation)`` builds per-object state and
    installs shims; the simulation runs (possibly in several ``run()``
    calls); ``finish()`` performs end-of-run global checks; ``report()``
    returns a JSON-friendly stats dict; ``detach()`` restores every
    patched method.  ``attach``/``detach`` must pair exactly.
    """

    #: short factory name (``credit``, ``flit``, ``event``, ``det``).
    name: str = ""
    #: one-line summary (docs, ``--sanitize=help`` style listings).
    description: str = ""

    def __init__(self) -> None:
        self.simulation: Any = None
        self.checks = 0
        self._patches: List[MethodPatch] = []

    # -- lifecycle ----------------------------------------------------------

    def attach(self, simulation: "Simulation") -> None:
        if self.simulation is not None:
            raise SanitizerError(f"{self.name}: already attached")
        self.simulation = simulation
        self._install(simulation)
        for patch in self._patches:
            patch.install()

    def detach(self) -> None:
        for patch in reversed(self._patches):
            patch.remove()
        self._patches = []
        self.simulation = None

    def _install(self, simulation: "Simulation") -> None:
        """Build state and append :class:`MethodPatch` objects."""
        raise NotImplementedError

    # -- executer hooks (used by Simulator._run_sanitized) ------------------

    def pre_event_hook(self):
        """Callable ``hook(entry_key, event)`` run before each handler,
        or ``None`` when this sanitizer does not observe events."""
        return None

    def recycle_hook(self):
        """Callable ``hook(event)`` run before an event is parked in
        the freelist, or ``None``."""
        return None

    # -- results ------------------------------------------------------------

    def finish(self) -> None:
        """End-of-run global checks; raise :class:`SanitizerError` on
        violation."""

    def report(self) -> Dict[str, Any]:
        return {"checks": self.checks}

    # -- helpers ------------------------------------------------------------

    def violation(self, message: str) -> None:
        now = "?"
        if self.simulation is not None:
            now = str(self.simulation.simulator.now)
        raise SanitizerError(f"[{self.name}] at {now}: {message}")


#: canonical attach order; credit/flit patch channels, event/det hook the
#: executer, and the order is what detach reverses.
SANITIZER_NAMES = ("credit", "flit", "event", "det")


def _parse_spec(spec: Union[str, Iterable[str]]) -> List[str]:
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = list(spec)
    if not names:
        raise SanitizerError("empty sanitizer spec; use 'all' or a "
                             "comma-separated subset of "
                             + ",".join(SANITIZER_NAMES))
    if "all" in names:
        return list(SANITIZER_NAMES)
    # Canonical order regardless of spec order, unknown names rejected
    # by the factory lookup with the registered alternatives listed.
    known = [name for name in SANITIZER_NAMES if name in names]
    extra = [name for name in names if name not in SANITIZER_NAMES]
    return known + extra


class SanitizerSuite:
    """A set of attached sanitizers plus their aggregated executer hooks."""

    def __init__(self, sanitizers: List[Sanitizer]):
        self.sanitizers = sanitizers
        self.simulation: Any = None
        self.pre_event_hooks: List[Callable] = []
        self.recycle_hooks: List[Callable] = []

    @property
    def names(self) -> List[str]:
        return [sanitizer.name for sanitizer in self.sanitizers]

    def attach(self, simulation: "Simulation") -> "SanitizerSuite":
        if simulation.simulator._sanitizer is not None:
            raise SanitizerError(
                "a sanitizer suite is already attached to this simulator"
            )
        self.simulation = simulation
        for sanitizer in self.sanitizers:
            sanitizer.attach(simulation)
        self.pre_event_hooks = [
            hook
            for sanitizer in self.sanitizers
            if (hook := sanitizer.pre_event_hook()) is not None
        ]
        self.recycle_hooks = [
            hook
            for sanitizer in self.sanitizers
            if (hook := sanitizer.recycle_hook()) is not None
        ]
        if self.pre_event_hooks or self.recycle_hooks:
            simulation.simulator._sanitizer = self
        return self

    def detach(self) -> None:
        if self.simulation is not None:
            self.simulation.simulator._sanitizer = None
        for sanitizer in reversed(self.sanitizers):
            if sanitizer.simulation is not None:
                sanitizer.detach()
        self.simulation = None

    def finish(self) -> None:
        """Run every sanitizer's end-of-run checks."""
        for sanitizer in self.sanitizers:
            sanitizer.finish()

    def report(self) -> Dict[str, Dict[str, Any]]:
        return {
            sanitizer.name: sanitizer.report()
            for sanitizer in self.sanitizers
        }

    # Context manager: guarantees detach even when a violation raises.

    def __enter__(self) -> "SanitizerSuite":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()


def attach_sanitizers(
    simulation: "Simulation", spec: Union[str, Iterable[str]] = "all"
) -> SanitizerSuite:
    """Create and attach the sanitizers ``spec`` names.

    ``spec`` is ``"all"``, a comma-separated string, or an iterable of
    factory names.  Returns the attached :class:`SanitizerSuite`; use it
    as a context manager (or call ``detach()``) so class patches are
    removed even when a run raises::

        suite = attach_sanitizers(simulation, "credit,det")
        with suite:
            simulation.run(max_time=10_000)
            suite.finish()
        print(suite.report())
    """
    import repro.sanitize  # noqa: F401 - ensure built-ins are registered

    names = _parse_spec(spec)
    suite = SanitizerSuite([
        factory.create(Sanitizer, name) for name in names
    ])
    return suite.attach(simulation)

"""Runtime sanitizers: invariant checkers shimmed into a live simulation.

See ``docs/SANITIZERS.md`` for the user guide.  The built-ins:

* ``credit`` -- :class:`~repro.sanitize.credit_san.CreditSan`:
  per-link/per-VC credit conservation.
* ``flit`` -- :class:`~repro.sanitize.flit_san.FlitSan`: end-to-end
  flit conservation and wormhole stream ordering on every channel.
* ``event`` -- :class:`~repro.sanitize.event_san.EventSan`: freelist
  use-after-reuse, double fires, stale cancels, time-field mutation.
* ``det`` -- :class:`~repro.sanitize.det_san.DetSan`: chained hash of
  the event stream for diffing two same-seed runs.

Typical use::

    from repro import Simulation, Settings
    from repro.sanitize import attach_sanitizers

    simulation = Simulation(Settings.from_file("config.json"))
    with attach_sanitizers(simulation, "all") as suite:
        simulation.run()
        suite.finish()          # end-of-run global checks
        print(suite.report())

or from the command line: ``supersim config.json --sanitize=all``.
"""

from repro.sanitize.base import (
    SANITIZER_NAMES,
    MethodPatch,
    Sanitizer,
    SanitizerError,
    SanitizerSuite,
    attach_sanitizers,
)

# Importing the modules registers the built-ins with the object factory.
from repro.sanitize import credit_san, det_san, event_san, flit_san  # noqa: E402,F401
from repro.sanitize.credit_san import CreditSan
from repro.sanitize.det_san import DetSan, first_divergence
from repro.sanitize.event_san import EventSan
from repro.sanitize.flit_san import FlitSan

__all__ = [
    "SANITIZER_NAMES",
    "MethodPatch",
    "Sanitizer",
    "SanitizerError",
    "SanitizerSuite",
    "attach_sanitizers",
    "CreditSan",
    "FlitSan",
    "EventSan",
    "DetSan",
    "first_divergence",
]

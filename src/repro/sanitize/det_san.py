"""DetSan: incremental state-hash of the executed event stream.

Determinism is a load-bearing property: sweeps cache results by config
hash, CI compares summaries across machines, and a same-seed rerun is
the first debugging tool for any simulation bug.  ``sslint``'s D-rules
catch the *static* hazards (unseeded RNGs, iteration over unordered
containers); DetSan catches the dynamic residue -- two same-seed runs
whose event streams diverge anywhere, for any reason.

Each executed event folds ``(packed time key, owning component, handler
name)`` into a chained CRC32.  The per-event ``(key, digest)`` pairs
are kept in a bounded trace; :func:`first_divergence` diffs two traces
to the first divergent event, i.e. the exact tick and handler where the
runs parted ways -- far more actionable than "the final latencies
differ".

DetSan keeps a second, *delivery* digest alongside the event digest.
Coalesced channel delivery (``repro.net.channel``) merges per-item
delivery events into per-channel batches, so the executed event stream
legitimately differs from the legacy one-event-per-item stream even
though the simulations are identical.  The delivery digest hashes the
*items* landing at each ``(tick, epsilon)``: item fingerprints within
one time key are folded commutatively (count + XOR + sum), then the
per-key bucket is chained in key order.  Two runs produce the same
delivery digest iff every flit and credit lands on the same channel at
the same time carrying the same identity -- regardless of how the
deliveries were packed into events.  This is the cross-path equality
the golden tests assert; the order-sensitive event digest remains the
right tool for comparing two runs of the *same* code path.

CRC32 is deliberate: this is a fast fingerprint for diffing two runs
the user controls, not a collision-resistant digest, and it keeps the
sanitized hot path cheap.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from repro import factory
from repro.net.channel import Channel, CreditChannel
from repro.sanitize.base import MethodPatch, Sanitizer

#: (packed time key, chained digest after this event)
TraceEntry = Tuple[int, int]

#: one flushed delivery bucket: (packed key, count, xor, sum)
DeliveryBucket = Tuple[int, int, int, int]


def merge_delivery_digests(
    bucket_streams: List[List[DeliveryBucket]],
) -> str:
    """Fold several runs' retained delivery buckets into one digest.

    The delivery digest is commutative *within* a time key and chained
    *across* keys in increasing order, so per-shard digests of a
    partitioned run merge exactly: buckets sharing a key combine by
    summing counts/sums and XOR-ing the xors, then the merged buckets
    chain in sorted key order.  The result equals the single-process
    ``delivery_digest`` iff every shard delivered the same items at the
    same times as the unpartitioned simulation -- the equality the PDES
    runtime's golden tests pin down.

    Requires each sanitizer to have retained its buckets
    (``DetSan(retain_buckets=True)`` or the ``retain_buckets``
    attribute set before any delivery).
    """
    merged: dict = {}
    for stream in bucket_streams:
        for key, count, xor, total in stream:
            entry = merged.get(key)
            if entry is None:
                merged[key] = [count, xor, total]
            else:
                entry[0] += count
                entry[1] ^= xor
                entry[2] += total
    digest = 0
    for key in sorted(merged):
        count, xor, total = merged[key]
        digest = zlib.crc32(
            f"{key}|{count}|{xor:08x}|{total:x}".encode(), digest
        )
    return f"{digest:08x}"


def first_divergence(
    trace_a: List[TraceEntry], trace_b: List[TraceEntry]
) -> Optional[int]:
    """Index of the first event where two traces differ, or None.

    A shared prefix with different lengths diverges at the shorter
    trace's end (one run executed events the other did not).
    """
    for index, (entry_a, entry_b) in enumerate(zip(trace_a, trace_b)):
        if entry_a != entry_b:
            return index
    if len(trace_a) != len(trace_b):
        return min(len(trace_a), len(trace_b))
    return None


@factory.register(Sanitizer, "det")
class DetSan(Sanitizer):
    """Chained CRC32 over the event stream, with a bounded trace."""

    name = "det"
    description = (
        "incremental state-hash of the event stream so two same-seed "
        "runs diff to the first divergent tick"
    )

    #: default bound on the per-event trace; the chained digest keeps
    #: covering every event after the trace fills.
    DEFAULT_MAX_TRACE = 1_000_000

    def __init__(
        self,
        max_trace: int = DEFAULT_MAX_TRACE,
        retain_buckets: bool = False,
    ) -> None:
        super().__init__()
        self.max_trace = max_trace
        self.digest = 0
        self.trace: List[TraceEntry] = []
        self.trace_truncated = False
        # Delivery digest state: the commutative bucket for the current
        # (tick, epsilon) key, chained into delivery_digest at each key
        # change (see the module docstring).
        self.delivery_digest = 0
        self.deliveries = 0
        self._bucket_key = -1
        self._bucket_count = 0
        self._bucket_xor = 0
        self._bucket_sum = 0
        # When retaining, every flushed bucket is also kept raw so the
        # digests of several runs (the shards of a partitioned
        # simulation) can be merged by merge_delivery_digests().
        self.retain_buckets = retain_buckets
        self.delivery_buckets: List[DeliveryBucket] = []

    def _install(self, simulation) -> None:
        from repro.core.simulator import EPSILON_BITS

        sim = simulation.simulator
        crc32 = zlib.crc32
        fold_item = self._fold_item

        def wrap_deliver_flit(original):
            def _deliver_item(channel, flit):
                if channel.simulator is sim:
                    fold_item(
                        (sim.tick << EPSILON_BITS) | sim.epsilon,
                        crc32(
                            f"F|{channel.full_name}|{flit.vc}|"
                            f"{flit.packet.global_id}|{flit.index}".encode()
                        ),
                    )
                original(channel, flit)

            return _deliver_item

        def wrap_deliver_credit(original):
            def _deliver_item(channel, credit):
                if channel.simulator is sim:
                    fold_item(
                        (sim.tick << EPSILON_BITS) | sim.epsilon,
                        crc32(f"C|{channel.full_name}|{credit.vc}".encode()),
                    )
                original(channel, credit)

            return _deliver_item

        self._patches = [
            MethodPatch(Channel, "_deliver_item", wrap_deliver_flit),
            MethodPatch(CreditChannel, "_deliver_item", wrap_deliver_credit),
        ]

    def _fold_item(self, key: int, item_crc: int) -> None:
        """Fold one delivered item into the current time-key bucket."""
        if key != self._bucket_key:
            self._flush_bucket()
            self._bucket_key = key
        self.deliveries += 1
        self._bucket_count += 1
        self._bucket_xor ^= item_crc
        self._bucket_sum += item_crc

    def _flush_bucket(self) -> None:
        if self._bucket_key < 0:
            return
        self.delivery_digest = zlib.crc32(
            f"{self._bucket_key}|{self._bucket_count}|"
            f"{self._bucket_xor:08x}|{self._bucket_sum:x}".encode(),
            self.delivery_digest,
        )
        if self.retain_buckets:
            self.delivery_buckets.append((
                self._bucket_key,
                self._bucket_count,
                self._bucket_xor,
                self._bucket_sum,
            ))
        self._bucket_key = -1
        self._bucket_count = 0
        self._bucket_xor = 0
        self._bucket_sum = 0

    def finish(self) -> None:
        self._flush_bucket()

    def pre_event_hook(self):
        crc32 = zlib.crc32
        trace = self.trace
        max_trace = self.max_trace

        def fold(entry_key, event):
            self.checks += 1
            handler = event.handler
            owner = getattr(handler, "__self__", None)
            owner_name = getattr(owner, "full_name", "")
            name = getattr(handler, "__qualname__", "?")
            self.digest = crc32(
                f"{entry_key}|{owner_name}|{name}".encode(), self.digest
            )
            if len(trace) < max_trace:
                trace.append((entry_key, self.digest))
            else:
                self.trace_truncated = True

        return fold

    def diff(self, other: "DetSan") -> Optional[dict]:
        """Compare against another run's DetSan; None when identical.

        Returns a dict locating the first divergent event: its index,
        and each run's (tick, epsilon, digest) at that index (None past
        the end of a shorter trace).
        """
        index = first_divergence(self.trace, other.trace)
        if index is None:
            if self.digest != other.digest:
                # Traces agree over the recorded window but digests
                # differ: divergence happened past the trace bound.
                return {
                    "index": len(self.trace),
                    "self": None,
                    "other": None,
                    "truncated": True,
                }
            return None
        return {
            "index": index,
            "self": self._locate(index),
            "other": other._locate(index),
            "truncated": False,
        }

    def _locate(self, index: int) -> Optional[dict]:
        from repro.core.simulator import EPSILON_BITS, EPSILON_LIMIT

        if index >= len(self.trace):
            return None
        key, digest = self.trace[index]
        return {
            "tick": key >> EPSILON_BITS,
            "epsilon": key & (EPSILON_LIMIT - 1),
            "digest": digest,
        }

    def report(self):
        self._flush_bucket()
        return {
            "checks": self.checks,
            "digest": f"{self.digest:08x}",
            "delivery_digest": f"{self.delivery_digest:08x}",
            "deliveries": self.deliveries,
            "trace_length": len(self.trace),
            "trace_truncated": self.trace_truncated,
        }

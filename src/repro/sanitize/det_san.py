"""DetSan: incremental state-hash of the executed event stream.

Determinism is a load-bearing property: sweeps cache results by config
hash, CI compares summaries across machines, and a same-seed rerun is
the first debugging tool for any simulation bug.  ``sslint``'s D-rules
catch the *static* hazards (unseeded RNGs, iteration over unordered
containers); DetSan catches the dynamic residue -- two same-seed runs
whose event streams diverge anywhere, for any reason.

Each executed event folds ``(packed time key, owning component, handler
name)`` into a chained CRC32.  The per-event ``(key, digest)`` pairs
are kept in a bounded trace; :func:`first_divergence` diffs two traces
to the first divergent event, i.e. the exact tick and handler where the
runs parted ways -- far more actionable than "the final latencies
differ".

CRC32 is deliberate: this is a fast fingerprint for diffing two runs
the user controls, not a collision-resistant digest, and it keeps the
sanitized hot path cheap.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from repro import factory
from repro.sanitize.base import Sanitizer

#: (packed time key, chained digest after this event)
TraceEntry = Tuple[int, int]


def first_divergence(
    trace_a: List[TraceEntry], trace_b: List[TraceEntry]
) -> Optional[int]:
    """Index of the first event where two traces differ, or None.

    A shared prefix with different lengths diverges at the shorter
    trace's end (one run executed events the other did not).
    """
    for index, (entry_a, entry_b) in enumerate(zip(trace_a, trace_b)):
        if entry_a != entry_b:
            return index
    if len(trace_a) != len(trace_b):
        return min(len(trace_a), len(trace_b))
    return None


@factory.register(Sanitizer, "det")
class DetSan(Sanitizer):
    """Chained CRC32 over the event stream, with a bounded trace."""

    name = "det"
    description = (
        "incremental state-hash of the event stream so two same-seed "
        "runs diff to the first divergent tick"
    )

    #: default bound on the per-event trace; the chained digest keeps
    #: covering every event after the trace fills.
    DEFAULT_MAX_TRACE = 1_000_000

    def __init__(self, max_trace: int = DEFAULT_MAX_TRACE) -> None:
        super().__init__()
        self.max_trace = max_trace
        self.digest = 0
        self.trace: List[TraceEntry] = []
        self.trace_truncated = False

    def _install(self, simulation) -> None:
        # Pure executer hook; nothing to patch.
        self._patches = []

    def pre_event_hook(self):
        crc32 = zlib.crc32
        trace = self.trace
        max_trace = self.max_trace

        def fold(entry_key, event):
            self.checks += 1
            handler = event.handler
            owner = getattr(handler, "__self__", None)
            owner_name = getattr(owner, "full_name", "")
            name = getattr(handler, "__qualname__", "?")
            self.digest = crc32(
                f"{entry_key}|{owner_name}|{name}".encode(), self.digest
            )
            if len(trace) < max_trace:
                trace.append((entry_key, self.digest))
            else:
                self.trace_truncated = True

        return fold

    def diff(self, other: "DetSan") -> Optional[dict]:
        """Compare against another run's DetSan; None when identical.

        Returns a dict locating the first divergent event: its index,
        and each run's (tick, epsilon, digest) at that index (None past
        the end of a shorter trace).
        """
        index = first_divergence(self.trace, other.trace)
        if index is None:
            if self.digest != other.digest:
                # Traces agree over the recorded window but digests
                # differ: divergence happened past the trace bound.
                return {
                    "index": len(self.trace),
                    "self": None,
                    "other": None,
                    "truncated": True,
                }
            return None
        return {
            "index": index,
            "self": self._locate(index),
            "other": other._locate(index),
            "truncated": False,
        }

    def _locate(self, index: int) -> Optional[dict]:
        from repro.core.simulator import EPSILON_BITS, EPSILON_LIMIT

        if index >= len(self.trace):
            return None
        key, digest = self.trace[index]
        return {
            "tick": key >> EPSILON_BITS,
            "epsilon": key & (EPSILON_LIMIT - 1),
            "digest": digest,
        }

    def report(self):
        return {
            "checks": self.checks,
            "digest": f"{self.digest:08x}",
            "trace_length": len(self.trace),
            "trace_truncated": self.trace_truncated,
        }

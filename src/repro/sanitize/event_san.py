"""EventSan: freelist use-after-reuse and engine-field integrity.

The PR 1 engine rewrite recycles fired :class:`Event` objects through a
freelist.  Recycling is refcount-gated (an event the caller kept a
handle to is never pooled), so the engine itself cannot alias a live
handle -- but model code can still misuse the lifecycle in ways that
stay silent:

* scheduling the *same* Event object twice via ``add_event`` -- the
  first firing marks it fired, the second queue entry then executes a
  logically dead event;
* cancelling a stale handle whose event already fired -- a no-op by
  design, but almost always means the model believes it stopped
  something it did not;
* mutating engine-owned fields (``tick``/``epsilon``) after
  scheduling -- the heap key was computed at scheduling time, so the
  event silently fires at the *old* time.

EventSan makes all three loud.  Pooled events are *poisoned* (handler
replaced with a sentinel) the instant they enter the freelist, so any
path that executes or re-schedules a recycled carcass trips the
pre-fire check; the packed entry key is cross-checked against the
event's fields at every firing; and ``Event.cancel`` is patched to
raise on a stale cancel instead of no-opping.
"""

from __future__ import annotations

from repro import factory
from repro.core.event import Event
from repro.core.simulator import EPSILON_BITS
from repro.sanitize.base import MethodPatch, Sanitizer


def _poisoned_handler(event) -> None:  # pragma: no cover - sentinel only
    raise AssertionError(
        "poisoned freelist event executed; EventSan should have caught "
        "this in its pre-fire check"
    )


@factory.register(Sanitizer, "event")
class EventSan(Sanitizer):
    """Poison recycled events; verify lifecycle flags and time fields."""

    name = "event"
    description = (
        "freelist use-after-reuse: poison recycled events, flag double "
        "fires, stale cancels, and engine-field mutation"
    )

    def __init__(self) -> None:
        super().__init__()
        self.poisoned = 0

    def _install(self, simulation) -> None:
        simulator = simulation.simulator

        def wrap_cancel(original):
            def cancel(event):
                if (
                    event._sim is simulator
                    and event.fired
                    and not event.cancelled
                ):
                    self.violation(
                        f"stale cancel: {event!r} already fired "
                        f"(generation {event.generation}); the handle was "
                        f"retained past the event's lifetime and no "
                        f"longer refers to a pending event"
                    )
                original(event)

            return cancel

        self._patches = [MethodPatch(Event, "cancel", wrap_cancel)]

    def pre_event_hook(self):
        def check(entry_key, event):
            self.checks += 1
            if event.handler is _poisoned_handler:
                self.violation(
                    f"recycled event executed: a freelist carcass "
                    f"(generation {event.generation}) was re-scheduled "
                    f"through a stale handle"
                )
            if event.fired:
                self.violation(
                    f"double fire: {event!r} executed twice from one "
                    f"scheduling -- the same Event object was added to "
                    f"the queue more than once"
                )
            if ((event.tick << EPSILON_BITS) | event.epsilon) != entry_key:
                self.violation(
                    f"engine-owned time fields mutated after scheduling: "
                    f"queue entry fires at key {entry_key:#x} but the "
                    f"event now claims ({event.tick}, {event.epsilon}); "
                    f"tick/epsilon are read-only once scheduled"
                )

        return check

    def recycle_hook(self):
        def poison(event):
            event.handler = _poisoned_handler
            event.data = None
            self.poisoned += 1

        return poison

    def report(self):
        return {"checks": self.checks, "poisoned": self.poisoned}

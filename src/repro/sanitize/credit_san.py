"""CreditSan: per-link, per-VC credit conservation.

The paper's case-study bug class is the *credit accounting gap*: a model
that leaks (or double-returns) credits type-checks and runs, and the
network limps along at reduced throughput -- no assertion trips, the
results are just quietly wrong.  The built-in :class:`CreditTracker`
checks only its local bounds (never negative, never above capacity);
a credit that is simply *never sent* satisfies both forever.

CreditSan closes the loop around each directed link.  For the link from
device ``u`` port ``p`` to device ``d`` port ``q``, with flit channel
``F``, returning credit channel ``C``, and ``u``'s credit tracker ``T``
(sized from ``d``'s input buffer), conservation demands at all times::

    T.occupancy(vc) == claimed(vc)               # taken, not yet on F
                       + flits in flight on F carrying vc
                       + d.input_occupancy(q, vc)
                       + credits in flight on C for vc

i.e. every slot the sender believes is consumed downstream is accounted
for by a prepaid flit still inside the sender (the IQ router takes the
credit at crossbar grant, ``core_latency`` + staging cycles before the
flit reaches the wire), a flit on the wire, a buffered flit, or a
credit on its way home.

The four terms move only inside six shimmed methods
(``CreditTracker.take``/``give``, ``Channel.send_flit``/``_deliver``,
``CreditChannel.send_credit``/``_deliver``), and the equation is
checked after each of them -- the exact instants at which it is stable,
because devices mutate tracker/buffer/channel state atomically within
one handler.  :meth:`finish` sweeps every link once more, catching
leaks on links that went quiet (all terms must still balance, and at
quiescence they must all be zero).
"""

from __future__ import annotations

from typing import Dict, List

from repro import factory
from repro.net.channel import Channel, CreditChannel
from repro.net.credit import CreditTracker
from repro.sanitize.base import MethodPatch, Sanitizer


class _Link:
    """State for one directed link (flit channel + returning credits)."""

    __slots__ = (
        "name",
        "tracker",
        "downstream",
        "down_port",
        "claimed",
        "inflight_flits",
        "inflight_credits",
    )

    def __init__(self, name, tracker, downstream, down_port, num_vcs):
        self.name = name
        self.tracker = tracker
        self.downstream = downstream
        self.down_port = down_port
        self.claimed: List[int] = [0] * num_vcs
        self.inflight_flits: List[int] = [0] * num_vcs
        self.inflight_credits: List[int] = [0] * num_vcs


@factory.register(Sanitizer, "credit")
class CreditSan(Sanitizer):
    """Credit conservation: outstanding credits == prepaid + in flight + buffered."""

    name = "credit"
    description = (
        "per-link/per-VC credit conservation: credits outstanding == "
        "prepaid flits + flits in flight + downstream buffer occupancy "
        "+ credits in flight"
    )

    def __init__(self) -> None:
        super().__init__()
        self._links: List[_Link] = []
        self._by_flit_channel: Dict[int, _Link] = {}
        self._by_credit_channel: Dict[int, _Link] = {}
        self._by_tracker: Dict[int, _Link] = {}

    def _install(self, simulation) -> None:
        network = simulation.network
        for device in [*network.routers, *network.interfaces]:
            for port in range(device.num_ports):
                flit_channel = device._flit_out[port]
                if flit_channel is None:
                    continue
                downstream = flit_channel.sink
                down_port = flit_channel.sink_port
                credit_channel = downstream._credit_out[down_port]
                # Cut links of a partitioned (sharded) run: the flit or
                # credit flow crosses a shard boundary through proxy
                # endpoints, so one side of the conservation equation is
                # invisible here.  The shard runtime checks those links
                # by record-count conservation and quiescent-drain
                # occupancy instead; intra-shard links stay fully
                # accounted.
                if getattr(flit_channel, "shard_proxy", False) or getattr(
                    credit_channel, "shard_proxy", False
                ):
                    continue
                tracker = device._output_credits[port]
                link = _Link(
                    f"{device.full_name}.out{port} -> "
                    f"{downstream.full_name}.in{down_port}",
                    tracker,
                    downstream,
                    down_port,
                    tracker.num_vcs,
                )
                self._links.append(link)
                self._by_flit_channel[id(flit_channel)] = link
                self._by_credit_channel[id(credit_channel)] = link
                self._by_tracker[id(tracker)] = link

        by_flit = self._by_flit_channel
        by_credit = self._by_credit_channel
        by_tracker = self._by_tracker
        check = self._check

        def wrap_take(original):
            def take(tracker, vc, count=1):
                original(tracker, vc, count)
                link = by_tracker.get(id(tracker))
                if link is not None:
                    link.claimed[vc] += count
                    check(link, vc)

            return take

        def wrap_give(original):
            def give(tracker, vc, count=1):
                original(tracker, vc, count)
                link = by_tracker.get(id(tracker))
                if link is not None:
                    check(link, vc)

            return give

        def wrap_send_flit(original):
            def send_flit(channel, flit):
                original(channel, flit)
                link = by_flit.get(id(channel))
                if link is not None:
                    link.claimed[flit.vc] -= 1
                    link.inflight_flits[flit.vc] += 1
                    check(link, flit.vc)

            return send_flit

        def wrap_deliver_flit(original):
            # `_deliver_item` is the per-item landing hook shared by the
            # coalesced and legacy delivery paths, so the accounting below
            # is per flit regardless of how many land in one event.
            def _deliver_item(channel, flit):
                link = by_flit.get(id(channel))
                if link is None:
                    original(channel, flit)
                    return
                vc = flit.vc
                # Decrement *before* delivering: the receive handler may
                # itself send a credit (the standard interface does), and
                # that nested check must already see this flit as landed.
                link.inflight_flits[vc] -= 1
                original(channel, flit)
                check(link, vc)

            return _deliver_item

        def wrap_send_credit(original):
            def send_credit(channel, credit):
                original(channel, credit)
                link = by_credit.get(id(channel))
                if link is not None:
                    link.inflight_credits[credit.vc] += 1
                    check(link, credit.vc)

            return send_credit

        def wrap_deliver_credit(original):
            def _deliver_item(channel, credit):
                link = by_credit.get(id(channel))
                if link is None:
                    original(channel, credit)
                    return
                vc = credit.vc
                link.inflight_credits[vc] -= 1
                original(channel, credit)
                check(link, vc)

            return _deliver_item

        self._patches = [
            MethodPatch(CreditTracker, "take", wrap_take),
            MethodPatch(CreditTracker, "give", wrap_give),
            MethodPatch(Channel, "send_flit", wrap_send_flit),
            MethodPatch(Channel, "_deliver_item", wrap_deliver_flit),
            MethodPatch(CreditChannel, "send_credit", wrap_send_credit),
            MethodPatch(CreditChannel, "_deliver_item", wrap_deliver_credit),
        ]

    def _check(self, link: _Link, vc: int) -> None:
        self.checks += 1
        outstanding = link.tracker.occupancy(vc)
        claimed = link.claimed[vc]
        on_wire = link.inflight_flits[vc]
        buffered = link.downstream.input_occupancy(link.down_port, vc)
        returning = link.inflight_credits[vc]
        if claimed < 0 or on_wire < 0 or returning < 0:
            self.violation(
                f"link {link.name} VC {vc}: negative in-flight count "
                f"(prepaid {claimed}, flits in flight {on_wire}, credits "
                f"in flight {returning}); a flit or credit crossed the "
                f"link without going through the channel/tracker API"
            )
        if outstanding != claimed + on_wire + buffered + returning:
            self.violation(
                f"credit accounting gap on link {link.name} VC {vc}: "
                f"sender believes {outstanding} slots are consumed, but "
                f"{claimed} prepaid + {on_wire} flits in flight + "
                f"{buffered} buffered downstream + {returning} credits "
                f"in flight = {claimed + on_wire + buffered + returning}; "
                f"a model leaked or duplicated a credit outside the "
                f"repro.net.credit API"
            )

    def finish(self) -> None:
        for link in self._links:
            for vc in range(link.tracker.num_vcs):
                self._check(link, vc)

    def report(self):
        return {"checks": self.checks, "links": len(self._links)}

"""FlitSan: flit/packet conservation and wormhole stream ordering.

Two end-to-end properties the per-device checks cannot see:

* **Conservation** -- every flit injected at a source interface is
  either ejected at its destination interface or still in flight.  A
  router that drops a flit (or delivers the same object twice) breaks
  no local assertion; the workload just never drains, or drains with a
  corrupted message.  FlitSan keeps the set of in-network flits, added
  when a flit enters an interface's injection channel and removed when
  one arrives at an interface's ejection port; :meth:`finish` reports
  the leak set once the event queue is quiescent.
* **Stream order** -- wormhole switching streams a packet's flits
  contiguously per (channel, VC): one head, bodies in index order, one
  tail, no interleaving with another packet on the same VC.  The
  destination interface checks this at ejection (§IV-D), but by then
  the corrupting hop is long gone.  FlitSan checks it at *every* flit
  channel on every send, so a violation names the first bad link.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro import factory
from repro.net.channel import Channel
from repro.net.interface import Interface
from repro.sanitize.base import MethodPatch, Sanitizer


@factory.register(Sanitizer, "flit")
class FlitSan(Sanitizer):
    """Flit conservation + head/body/tail ordering on every channel."""

    name = "flit"
    description = (
        "end-to-end flit conservation (injected == ejected + in flight) "
        "and per-channel/per-VC head/body/tail stream ordering"
    )

    def __init__(self) -> None:
        super().__init__()
        # id(flit channel) -> channel (all flit channels in the network).
        self._channels: Dict[int, Channel] = {}
        # (id(channel), vc) -> (packet, next expected flit index).
        self._streams: Dict[Tuple[int, int], Tuple[object, int]] = {}
        # Injection channels add to the in-network map, ejection channels
        # remove; a flit channel can be both only in a degenerate
        # interface-to-interface wiring, which the Network never builds.
        self._injection: Dict[int, bool] = {}
        self._ejection: Dict[int, bool] = {}
        self._in_network: Dict[int, object] = {}  # id(flit) -> flit
        self.flits_tracked = 0

    def _install(self, simulation) -> None:
        network = simulation.network
        for channel in network.flit_channels:
            self._channels[id(channel)] = channel
            if isinstance(channel.sink, Interface):
                self._ejection[id(channel)] = True
        for interface in network.interfaces:
            injection_channel = interface._flit_out[0]
            if injection_channel is not None:
                self._injection[id(injection_channel)] = True

        channels = self._channels
        injection = self._injection
        ejection = self._ejection
        in_network = self._in_network
        on_send = self._on_send

        def wrap_send_flit(original):
            def send_flit(channel, flit):
                original(channel, flit)
                channel_id = id(channel)
                if channel_id in channels:
                    on_send(channel, channel_id, flit)
                    if channel_id in injection:
                        if id(flit) in in_network:
                            self.violation(
                                f"flit injected twice without ejection on "
                                f"{channel.full_name}: {flit!r}"
                            )
                        in_network[id(flit)] = flit
                        self.flits_tracked += 1

            return send_flit

        def wrap_deliver(original):
            # Per-item landing hook: shared by the coalesced and legacy
            # delivery paths, and the flit is removed from the in-network
            # map *before* the interface consumes (and possibly recycles)
            # it, so the id() key is read while it is still unambiguous.
            def _deliver_item(channel, flit):
                channel_id = id(channel)
                if channel_id in ejection:
                    if in_network.pop(id(flit), None) is None:
                        self.violation(
                            f"flit ejected on {channel.full_name} that is "
                            f"not in the network (dropped-then-delivered, "
                            f"or delivered twice): {flit!r}"
                        )
                original(channel, flit)

            return _deliver_item

        self._patches = [
            MethodPatch(Channel, "send_flit", wrap_send_flit),
            MethodPatch(Channel, "_deliver_item", wrap_deliver),
        ]

    def _on_send(self, channel: Channel, channel_id: int, flit) -> None:
        """Advance the (channel, VC) wormhole stream state machine."""
        self.checks += 1
        vc = flit.vc
        stream_key = (channel_id, vc)
        current = self._streams.get(stream_key)
        if flit.head:
            if current is not None:
                self.violation(
                    f"head flit of packet {flit.packet.global_id} "
                    f"interleaves packet {current[0].global_id} on "
                    f"{channel.full_name} VC {vc} (expected flit "
                    f"{current[1]} next)"
                )
            if not flit.tail:
                self._streams[stream_key] = (flit.packet, 1)
            return
        if current is None:
            self.violation(
                f"body/tail flit with no packet in progress on "
                f"{channel.full_name} VC {vc}: {flit!r}"
            )
        packet, expected_index = current
        if flit.packet is not packet or flit.index != expected_index:
            self.violation(
                f"out-of-order flit on {channel.full_name} VC {vc}: "
                f"expected packet {packet.global_id} flit "
                f"{expected_index}, got {flit!r}"
            )
        if flit.tail:
            del self._streams[stream_key]
        else:
            self._streams[stream_key] = (packet, expected_index + 1)

    def finish(self) -> None:
        simulator = self.simulation.simulator
        if simulator.pending_events > 0:
            # Flits legitimately in flight; conservation is only checkable
            # at quiescence.
            return
        if self._streams:
            (channel_id, vc), (packet, index) = next(iter(self._streams.items()))
            channel = self._channels[channel_id]
            self.violation(
                f"queue is quiescent but packet {packet.global_id} is "
                f"mid-stream on {channel.full_name} VC {vc} (next flit "
                f"{index} never sent): a model dropped part of a packet"
            )
        if self._in_network:
            leaked = list(self._in_network.values())
            preview = ", ".join(repr(flit) for flit in leaked[:5])
            self.violation(
                f"queue is quiescent but {len(leaked)} injected flit(s) "
                f"were never ejected (first few: {preview}): a router "
                f"dropped or stranded them"
            )

    def report(self):
        return {
            "checks": self.checks,
            "flits_tracked": self.flits_tracked,
            "in_flight": len(self._in_network),
        }

"""Proxy channel endpoints and cross-shard object reconstruction.

The sharded PDES runtime (:mod:`repro.partition.runtime`) gives every
worker the *full* network object graph but only executes the components
of its own shard.  Channels cut by the partition get asymmetric
treatment:

* On the **egress** side (the worker owning the channel's source
  device) the channel instance is retargeted to a proxy subclass whose
  ``send_flit`` / ``send_credit`` replicate the real channel's pacing
  state *exactly* -- routers consult ``can_send()`` /
  ``next_send_tick()`` / ``_next_free_tick`` when scheduling, so the
  proxy must leave the same fingerprints -- but serialize the send as a
  plain-tuple record instead of delivering locally.
* On the **ingress** side (the worker owning the sink device) records
  are landed between synchronization windows as one injected event per
  record, each calling the channel's ``_deliver_item`` -- the per-item
  hook both normal delivery paths funnel through -- at
  ``(due_tick, EPS_DELIVER)``.  Sanitizer shims and DetSan's delivery
  digest therefore observe a sharded delivery exactly as they observe a
  single-process one.

Flits reference packets reference messages, and none of those objects
exist on the sink side of a cut, so the head-flit record carries a full
snapshot of the message- and packet-level state and the
:class:`ShardRegistry` rebuilds real :class:`~repro.net.message.Message`
/ :class:`~repro.net.packet.Packet` objects around slab-backed flit
views.  Reconstruction goes through ``__new__`` -- the id counters were
already advanced by the phantom-terminal replay (see
:func:`make_phantom_interface`), so consuming them again would desync
every subsequent id.  Wormhole routing guarantees the head flit crosses
a cut before the packet's body flits, so body/tail records bind by
``global_id`` lookup alone.

Record wire format (plain tuples; picklable for process workers):

* flit:   ``(0, cut_index, due, vc, send_tick, gid, index, head|None)``
* credit: ``(1, cut_index, due, vc)``

where the last slot is ``None`` on body flits, the packet's current
``hop_count`` (an int) on tail flits -- routers bump it as the tail
leaves them, after the head already crossed -- and on head flits::

    (msg_id, app_id, source, destination, msg_flits, txn_id, sampled,
     created_tick, num_packets, packet_id, pkt_flits, injection_tick,
     hop_count, non_minimal, intermediate, routing_state)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.net.channel import Channel, ChannelError, CreditChannel
from repro.net.credit import Credit
from repro.net.flit import FLIT_SLAB, Flit
from repro.net.interface import Interface
from repro.net.message import Message
from repro.net.packet import Packet

#: record[0] discriminator values.
FLIT_RECORD = 0
CREDIT_RECORD = 1

Record = Tuple[Any, ...]


class ProxyError(RuntimeError):
    """Raised on cross-shard reconstruction inconsistencies."""


# -- egress ------------------------------------------------------------------


class _ProxyFlitChannel(Channel):
    """Egress side of a cut flit channel.

    Replicates :meth:`Channel.send_flit`'s observable state transitions
    (sink check, overdrive check, ``_next_free_tick`` pacing,
    ``flits_carried``) and appends a record to the worker's outbox
    instead of scheduling a local delivery.  The in-flight FIFO stays
    empty: the wire is modeled by the record stream.
    """

    def send_flit(self, flit: Flit) -> None:
        if self._sink is None:
            raise ChannelError(f"{self.full_name}: no sink connected")
        now = self.simulator.tick
        if now < self._next_free_tick:
            raise ChannelError(
                f"{self.full_name}: overdriven -- busy until "
                f"{self._next_free_tick}, send attempted at {now}"
            )
        self._next_free_tick = now + self.period
        self.flits_carried += 1
        due = now + self.latency
        handle = flit._handle
        packet = flit.packet
        head: Any = None
        if flit._flags[handle] & 1:  # head: snapshot message+packet state
            self._shard_registry.note_egress(packet)
            message = packet.message
            head = (
                message.id,
                message.application_id,
                message.source,
                message.destination,
                message.num_flits,
                message.transaction_id,
                message.sampled,
                message.created_tick,
                message.num_packets,
                packet.id,
                packet.num_flits,
                packet.injection_tick,
                packet.hop_count,
                packet.non_minimal,
                packet.intermediate,
                dict(packet.routing_state),
            )
        elif flit._flags[handle] & 2:
            # Tail: routers bump ``hop_count`` as the tail leaves them,
            # i.e. *after* the head (and its snapshot) already crossed,
            # so the tail carries the post-increment count for the
            # sink-side copy to converge with the shared single-process
            # object.  Nothing else moves between head and tail egress
            # -- routing decisions (and their ``routing_state`` /
            # ``non_minimal`` mutations) all happen at head time -- and
            # the sink applies the count at materialization, always
            # before any sink-side router sees this tail.
            head = packet.hop_count
        self._shard_outbox.append((
            FLIT_RECORD,
            self._cut_index,
            due,
            flit._vc[handle],
            flit._send[handle],
            packet.global_id,
            flit.index,
            head,
        ))


class _ProxyCreditChannel(CreditChannel):
    """Egress side of a cut credit channel (no pacing to replicate)."""

    def send_credit(self, credit: Credit) -> None:
        if self._sink is None:
            raise ChannelError(f"{self.full_name}: no sink connected")
        self.credits_carried += 1
        due = self.simulator.tick + self.latency
        self._shard_outbox.append((
            CREDIT_RECORD,
            self._cut_index,
            due,
            credit.vc,
        ))


def make_egress(
    channel, cut_index: int, outbox: List[Record], registry: "ShardRegistry"
) -> None:
    """Retarget ``channel`` (in place) to its egress proxy subclass."""
    if isinstance(channel, Channel):
        channel.__class__ = _ProxyFlitChannel
    elif isinstance(channel, CreditChannel):
        channel.__class__ = _ProxyCreditChannel
    else:
        raise ProxyError(f"cannot proxy {channel!r}: not a channel")
    channel._cut_index = cut_index
    channel._shard_outbox = outbox
    channel._shard_registry = registry


# -- cross-shard object registry ---------------------------------------------


class ShardRegistry:
    """Per-worker map of messages/packets that crossed a shard cut.

    Entries come from two sides: :meth:`note_egress` registers locally
    created objects whose head flit left the shard (they may re-enter
    later, and their slab handles must be released once the message is
    delivered elsewhere), and :meth:`materialize_flit` registers
    reconstructions of remotely created objects.  Either way the maps
    are the single source of truth: a flit re-entering the shard binds
    to the same objects it left.

    The coordinator broadcasts delivered message ids at every barrier;
    :meth:`release_delivered` frees the slab handles of any registered
    message that was *not* delivered by a local interface (local
    deliveries release through the interface's normal path).
    """

    def __init__(self) -> None:
        self.messages: Dict[int, Message] = {}
        self.packets: Dict[int, Packet] = {}
        self.locally_delivered: Set[int] = set()

    # -- egress side -------------------------------------------------------

    def note_egress(self, packet: Packet) -> None:
        message = packet.message
        self.messages.setdefault(message.id, message)
        self.packets.setdefault(packet.global_id, packet)

    # -- ingress side ------------------------------------------------------

    def materialize_flit(self, record: Record) -> Flit:
        """Rebuild (or re-find) the flit a cut-channel record describes."""
        _, _, _, vc, send_tick, gid, index, head = record
        packet = self.packets.get(gid)
        if packet is None:
            if not isinstance(head, tuple) or index != 0:
                raise ProxyError(
                    f"non-head flit of unknown packet g{gid} crossed the "
                    f"cut before its head (wormhole order violated)"
                )
            packet = self._materialize_packet(gid, head)
        elif isinstance(head, tuple):
            # Head re-entry: the packet was routed through other shards
            # since it left; refresh the head-driven state it
            # accumulated there (routing decisions happen at head
            # time).  ``hop_count`` is deliberately NOT taken from a
            # head snapshot: it is tail-driven, so the local copy can
            # be *ahead* of the remote one while the tail still trails
            # through local routers; the authoritative count rides the
            # tail records, which follow the head through every cut.
            (_, _, _, _, _, _, _, _, _, _, _, injection_tick,
             _, non_minimal, intermediate, routing_state) = head
            packet.injection_tick = injection_tick
            packet.non_minimal = non_minimal
            packet.intermediate = intermediate
            packet.routing_state = dict(routing_state)
        elif head is not None:
            # Tail: apply the egress side's post-increment hop count
            # (see the proxy's ``send_flit``); sink-side increments for
            # this packet can only happen after this tail lands.
            packet.hop_count = head
        flit = packet.flits[index]
        handle = flit._handle
        flit._vc[handle] = vc
        flit._send[handle] = send_tick
        return flit

    def _materialize_packet(self, gid: int, head: Tuple[Any, ...]) -> Packet:
        (msg_id, app_id, source, destination, msg_flits, txn_id, sampled,
         created_tick, num_packets, packet_id, pkt_flits, injection_tick,
         hop_count, non_minimal, intermediate, routing_state) = head
        message = self.messages.get(msg_id)
        if message is None:
            # Remotely created message: rebuild without consuming the
            # message id counter (phantom replay already advanced it).
            message = Message.__new__(Message)
            message.id = msg_id
            message.application_id = app_id
            message.source = source
            message.destination = destination
            message.num_flits = msg_flits
            message.transaction_id = txn_id
            message.sampled = sampled
            message.created_tick = created_tick
            message.delivered_tick = None
            # Pre-sized so Message.num_packets (and the interface's
            # packets-remaining accounting) is correct before every
            # packet has crossed.
            message.packets = [None] * num_packets
            message.opaque = None
            self.messages[msg_id] = message
        existing = message.packets[packet_id]
        if existing is not None:
            # Locally created message whose packet re-enters without a
            # prior egress note cannot happen; this is the same real
            # packet, registered under its gid for future lookups.
            self.packets[gid] = existing
            return existing
        packet = Packet.__new__(Packet)
        packet.message = message
        packet.id = packet_id
        packet.global_id = gid
        acquire = FLIT_SLAB.acquire
        last = pkt_flits - 1
        packet.flits = [
            acquire(packet, i, i == 0, i == last) for i in range(pkt_flits)
        ]
        packet.injection_tick = injection_tick
        packet.hop_count = hop_count
        packet.non_minimal = non_minimal
        packet.intermediate = intermediate
        packet.routing_state = dict(routing_state)
        message.packets[packet_id] = packet
        self.packets[gid] = packet
        return packet

    # -- lifecycle ---------------------------------------------------------

    def note_local_delivery(self, message: Message) -> None:
        self.locally_delivered.add(message.id)

    def release_delivered(self, message_ids) -> None:
        """Free registered state for messages delivered network-wide.

        Messages delivered by a *local* interface already had every slab
        handle released by the interface's delivery path; for those only
        the map entries are dropped.
        """
        for msg_id in message_ids:
            message = self.messages.pop(msg_id, None)
            if message is None:
                self.locally_delivered.discard(msg_id)
                continue
            release_handles = msg_id not in self.locally_delivered
            self.locally_delivered.discard(msg_id)
            for packet in message.packets:
                if packet is None:
                    continue
                self.packets.pop(packet.global_id, None)
                if release_handles:
                    FLIT_SLAB.release_packet(packet)

    @property
    def outstanding(self) -> int:
        """Registered messages not yet released (leak check input)."""
        return len(self.messages)


# -- phantom terminals -------------------------------------------------------


def make_phantom_interface(interface: Interface) -> None:
    """Replace ``interface.send_message`` with an id-consuming no-op.

    Every worker runs *all* terminals -- including those of foreign
    shards -- so the shared per-application RNG streams (traffic
    destination, message size) and the global message/packet id counters
    advance in exactly the creation order of the single-process run.
    Terminals attached to foreign interfaces must therefore packetize
    (consuming packet ids and slab handles, immediately returned) but
    must not enqueue, wake the injection pipeline, or touch the local
    network.
    """

    def phantom_send_message(message: Message) -> None:
        if message.created_tick is None:
            message.created_tick = interface.simulator.tick
        interface.messages_sent += 1
        injection_vcs = interface.injection_vcs
        for packet in message.packetize(interface.max_packet_size):
            vc = injection_vcs[interface._next_vc_choice % len(injection_vcs)]
            interface._next_vc_choice += 1
            packet.routing_state["injection_vc"] = vc
            FLIT_SLAB.release_packet(packet)

    interface.send_message = phantom_send_message
    interface.shard_phantom = True

"""The component graph the partition planner operates on.

Nodes are the *simulatable* components of a constructed network --
routers and interfaces -- and edges are the directed channels between
them (flit and credit, four per bidirectional link).  Channels are the
only legal coupling between shards: they carry latency, and that
latency is exactly the synchronization slack a conservative parallel
runtime can exploit (SplitSim's decomposition; ROADMAP item 2).

The graph is extracted from a network built by the lint layer's
no-simulate constructor (:class:`repro.lint.graph.GraphAnalysis`), so
planning a partition never fires a single event.  Channel latencies
come from :class:`~repro.lint.graph.ChannelRecord`, i.e. off the live
channel objects (post-override), not schema defaults.

Node weights approximate per-component simulation cost: a router costs
roughly its radix (ports drive arbitration and buffer work), an
interface a constant 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple

from repro.lint.graph import ChannelRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.graph import GraphAnalysis
    from repro.net.network import Network


class ComponentInfo(NamedTuple):
    name: str   # component full name (stable across runs)
    kind: str   # "router" | "interface"
    weight: int  # relative simulation cost (router radix, interface 1)
    index: int  # extraction order, the planner's deterministic tiebreak


class ComponentGraph:
    """Components plus the channels connecting them.

    ``components`` preserves extraction order (routers by id, then
    interfaces by id), which every planner loop uses as its
    deterministic iteration order.  ``adjacency`` collapses the directed
    channel multigraph into an undirected neighbor map:
    ``adjacency[a][b]`` is the list of indices into ``channels`` of
    every channel between ``a`` and ``b`` (either direction).
    """

    def __init__(self) -> None:
        self.components: Dict[str, ComponentInfo] = {}
        self.channels: List[ChannelRecord] = []
        self.adjacency: Dict[str, Dict[str, List[int]]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_network(cls, network: "Network") -> "ComponentGraph":
        """Extract the graph from an already-constructed network."""
        from repro.lint.graph import scan_channels

        return cls._build(network, scan_channels(network))

    @classmethod
    def from_analysis(cls, analysis: "GraphAnalysis") -> "ComponentGraph":
        """Extract the graph from a lint-layer network analysis."""
        if analysis.network is None:
            raise ValueError(
                "cannot extract a component graph: network construction "
                f"failed ({analysis.construction_error})"
            )
        return cls._build(analysis.network, analysis.channels)

    @classmethod
    def _build(
        cls, network: "Network", channels: List[ChannelRecord]
    ) -> "ComponentGraph":
        graph = cls()
        index = 0
        for router in network.routers:
            graph.components[router.full_name] = ComponentInfo(
                router.full_name, "router", max(1, router.num_ports), index
            )
            index += 1
        for interface in network.interfaces:
            graph.components[interface.full_name] = ComponentInfo(
                interface.full_name, "interface", 1, index
            )
            index += 1
        for record in channels:
            channel_index = len(graph.channels)
            graph.channels.append(record)
            for a, b in ((record.source, record.sink),
                         (record.sink, record.source)):
                graph.adjacency.setdefault(a, {}).setdefault(b, [])
            graph.adjacency[record.source][record.sink].append(channel_index)
            graph.adjacency[record.sink][record.source].append(channel_index)
        return graph

    # -- queries -------------------------------------------------------------

    @property
    def total_weight(self) -> int:
        return sum(info.weight for info in self.components.values())

    def neighbors(self, name: str) -> List[str]:
        """Neighbor names in deterministic (extraction) order."""
        around = self.adjacency.get(name, {})
        return sorted(around, key=lambda n: self.components[n].index)

    def channels_between(self, a: str, b: str) -> List[ChannelRecord]:
        return [
            self.channels[i] for i in self.adjacency.get(a, {}).get(b, [])
        ]

    def cut_channels(self, assignment: Dict[str, int]) -> List[ChannelRecord]:
        """Channels whose endpoints land in different shards, in
        extraction order."""
        return [
            record
            for record in self.channels
            if assignment.get(record.source) != assignment.get(record.sink)
        ]

"""The partition manifest: the contract between planner and runtime.

A manifest is a plain JSON document describing one k-way partition of
one network: which components live in which shard, which channels are
cut by the partition (with their latencies), and the conservative
lookahead each shard may advance on without hearing from its peers.
The future PDES runtime consumes the manifest verbatim; the P-rules
(:mod:`repro.lint.partition_rules`) verify any manifest -- planned or
hand-written -- against the network the config actually constructs.

Lookahead semantics: a shard's ``lookahead`` is the minimum latency
over its *inbound* cut channels -- no peer can affect the shard sooner
than one full channel flight, so simulating ``lookahead`` ticks beyond
the last synchronization point is causally safe.  ``lookahead.global``
is the minimum over every cut channel (the safe step for a barrier
synchronization scheme).  A shard with no inbound cut channels is
unconstrained and carries ``null``.

Serialization is canonical (sorted keys, fixed indentation, trailing
newline) so the same config and seed always produce a byte-identical
file -- the determinism property the test suite pins down.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.partition.graph import ComponentGraph

MANIFEST_VERSION = 1

#: Channel kinds a cut crossing may legally be (P002).
CUT_KINDS = ("flit", "credit")


class ManifestError(ValueError):
    """Raised for files that are not partition manifests at all."""


def config_fingerprint(config: Dict[str, Any]) -> str:
    """Stable content hash of a resolved config dict."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


def build_manifest(
    graph: ComponentGraph,
    assignment: Dict[str, int],
    k: int,
    topology: str = "",
    fingerprint: str = "",
) -> Dict[str, Any]:
    """Assemble the manifest document for ``assignment`` over ``graph``."""
    order = graph.components
    shards: List[Dict[str, Any]] = []
    for shard in range(k):
        members = sorted(
            (name for name, s in assignment.items() if s == shard),
            key=lambda n: order[n].index,
        )
        shards.append({
            "id": shard,
            "components": members,
            "weight": sum(order[n].weight for n in members),
        })
    cut: List[Dict[str, Any]] = []
    for record in graph.cut_channels(assignment):
        cut.append({
            "name": record.name,
            "kind": record.kind,
            "source": record.source,
            "source_shard": assignment[record.source],
            "sink": record.sink,
            "sink_shard": assignment[record.sink],
            "latency": record.latency,
        })
    per_shard: Dict[str, Optional[int]] = {}
    for shard in range(k):
        inbound = [c["latency"] for c in cut if c["sink_shard"] == shard]
        per_shard[str(shard)] = min(inbound) if inbound else None
    return {
        "version": MANIFEST_VERSION,
        "topology": topology,
        "config_fingerprint": fingerprint,
        "k": k,
        "num_components": len(assignment),
        "shards": shards,
        "cut_channels": cut,
        "lookahead": {
            "global": min((c["latency"] for c in cut), default=None),
            "per_shard": per_shard,
        },
    }


def to_canonical_json(manifest: Dict[str, Any]) -> str:
    """Byte-stable rendering (same manifest -> same bytes, always)."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_canonical_json(manifest))


def load_manifest(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "shards" not in data:
        raise ManifestError(
            f"{path} is not a partition manifest (expected a JSON object "
            "with a 'shards' list)"
        )
    return data


def structural_errors(manifest: Any) -> List[str]:
    """Shape problems that make a manifest unverifiable.

    These are reported (as P005 errors) before any semantic rule runs:
    a manifest whose shards are not even a list of component lists
    cannot meaningfully be checked for zero-latency cuts.
    """
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        problems.append(
            f"unsupported manifest version {version!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    k = manifest.get("k")
    if not isinstance(k, int) or k < 1:
        problems.append(f"'k' must be a positive integer, got {k!r}")
    shards = manifest.get("shards")
    if not isinstance(shards, list):
        problems.append("'shards' must be a list")
    else:
        for position, shard in enumerate(shards):
            if not isinstance(shard, dict):
                problems.append(f"shards[{position}] is not an object")
                continue
            if not isinstance(shard.get("id"), int):
                problems.append(f"shards[{position}] has no integer 'id'")
            members = shard.get("components")
            if not isinstance(members, list) or not all(
                isinstance(m, str) for m in members
            ):
                problems.append(
                    f"shards[{position}].components must be a list of "
                    f"component names"
                )
    cut = manifest.get("cut_channels")
    if not isinstance(cut, list):
        problems.append("'cut_channels' must be a list")
    else:
        for position, entry in enumerate(cut):
            if not isinstance(entry, dict) or not isinstance(
                entry.get("name"), str
            ):
                problems.append(
                    f"cut_channels[{position}] must be an object with a "
                    f"'name'"
                )
    lookahead = manifest.get("lookahead")
    if not isinstance(lookahead, dict) or "global" not in lookahead:
        problems.append("'lookahead' must be an object with a 'global' key")
    return problems

"""Deterministic k-way partitioning of the component graph.

The planner assigns every component (router or interface) to one of
``k`` shards, minimizing the number of *cut channels* -- channels whose
endpoints land in different shards -- while keeping the shards
weight-balanced.  Cut channels are what a parallel runtime pays for:
every crossing becomes an inter-process flit/credit exchange, and the
smallest cut-channel latency bounds the conservative lookahead.

Two phases, both free of randomness so the same graph always yields
the same plan (byte-identical manifests; the `sssweep` determinism
contract extends to planning):

1. **Greedy region growth.**  Shards are grown one at a time by BFS
   from the first unassigned component in extraction order, absorbing
   neighbors (again in extraction order) until the shard reaches the
   ideal weight ``total/k``.  On mesh-like topologies this yields
   contiguous blocks, the same partition-by-node-range scheme as
   fpgagraphlib's multi-FPGA SimTop.

2. **Kernighan-Lin style boundary refinement.**  Boundary components
   are repeatedly offered to adjacent shards; a move is taken when it
   strictly reduces the cut-channel count without pushing the target
   shard past ``tolerance * ideal`` weight or emptying the source
   shard.  Passes repeat until a fixed point (bounded by
   ``max_passes``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.partition.graph import ComponentGraph

#: A shard may exceed the ideal weight by this factor before P004
#: warns about the manifest.
DEFAULT_TOLERANCE = 1.5

#: The refinement phase keeps shards inside this much tighter envelope:
#: a cut-reducing move is refused when it would push the target shard
#: past ``_REFINE_BALANCE * ideal``.  Without the tighter bound,
#: hill-climbing on cut count alone steadily erodes one shard into its
#: neighbor until the reporting tolerance is exhausted.
_REFINE_BALANCE = 1.1

_MAX_REFINE_PASSES = 8


class PartitionError(ValueError):
    """Raised for unplannable requests (bad k, empty graph)."""


def plan(
    graph: ComponentGraph,
    k: int,
    tolerance: float = DEFAULT_TOLERANCE,
    max_passes: int = _MAX_REFINE_PASSES,
) -> Dict[str, int]:
    """Assign every component to a shard; returns {name: shard id}.

    Deterministic: iteration orders are fixed by extraction order and
    no randomness is consulted, so the same constructed network always
    produces the same assignment.
    """
    if k < 1:
        raise PartitionError(f"shard count must be >= 1, got {k}")
    if not graph.components:
        raise PartitionError("cannot partition an empty component graph")
    if tolerance < 1.0:
        raise PartitionError(
            f"balance tolerance must be >= 1.0, got {tolerance}"
        )
    names = list(graph.components)  # extraction order
    if k == 1:
        return {name: 0 for name in names}
    if k >= len(names):
        # Degenerate: one component per shard (extras stay empty).
        return {name: i for i, name in enumerate(names)}

    assignment = _grow_regions(graph, k, names)
    _refine(graph, k, assignment, tolerance, max_passes)
    return assignment


# -- phase 1: greedy region growth ------------------------------------------


def _grow_regions(
    graph: ComponentGraph, k: int, names: List[str]
) -> Dict[str, int]:
    ideal = graph.total_weight / k
    assignment: Dict[str, int] = {}
    unassigned = dict.fromkeys(names)  # ordered set
    for shard in range(k):
        if not unassigned:
            break
        last_shard = shard == k - 1
        weight = 0
        # BFS frontier ordered by extraction index for determinism.
        frontier: List[str] = [next(iter(unassigned))]
        while frontier or (last_shard and unassigned):
            if not frontier:
                # Disconnected remainder: restart from the next
                # unassigned component (last shard absorbs everything).
                frontier.append(next(iter(unassigned)))
            name = frontier.pop(0)
            if name not in unassigned:
                continue
            info = graph.components[name]
            if not last_shard and weight and weight + info.weight > ideal:
                continue  # would overshoot; try a lighter neighbor
            del unassigned[name]
            assignment[name] = shard
            weight += info.weight
            if not last_shard and weight >= ideal:
                break
            for neighbor in graph.neighbors(name):
                if neighbor in unassigned:
                    frontier.append(neighbor)
    # Anything left (k-1 shards filled early) joins the lightest shard.
    if unassigned:
        weights = _shard_weights(graph, assignment, k)
        for name in list(unassigned):
            lightest = min(range(k), key=lambda s: (weights[s], s))
            assignment[name] = lightest
            weights[lightest] += graph.components[name].weight
    return assignment


# -- phase 2: KL-style boundary refinement -----------------------------------


def _refine(
    graph: ComponentGraph,
    k: int,
    assignment: Dict[str, int],
    tolerance: float,
    max_passes: int,
) -> None:
    ideal = graph.total_weight / k
    limit = min(tolerance, _REFINE_BALANCE) * ideal
    weights = _shard_weights(graph, assignment, k)
    counts = _shard_counts(assignment, k)
    names = list(graph.components)
    for _ in range(max_passes):
        improved = False
        for name in names:
            source = assignment[name]
            move = _best_move(graph, assignment, name, source)
            if move is None:
                continue
            target, gain = move
            weight = graph.components[name].weight
            if weights[target] + weight > limit:
                continue  # would unbalance the target shard
            if counts[source] <= 1:
                continue  # never empty a shard
            assignment[name] = target
            weights[source] -= weight
            weights[target] += weight
            counts[source] -= 1
            counts[target] += 1
            improved = True
        if not improved:
            break


def _best_move(
    graph: ComponentGraph,
    assignment: Dict[str, int],
    name: str,
    source: int,
) -> Optional[tuple]:
    """The adjacent shard whose adoption of ``name`` cuts the most
    channels, as ``(shard, gain)`` with ``gain > 0``; None otherwise."""
    around = graph.adjacency.get(name, {})
    # Channels to each shard from this component.
    per_shard: Dict[int, int] = {}
    for neighbor, channel_indices in around.items():
        shard = assignment[neighbor]
        per_shard[shard] = per_shard.get(shard, 0) + len(channel_indices)
    home = per_shard.get(source, 0)
    best: Optional[tuple] = None
    for shard in sorted(per_shard):
        if shard == source:
            continue
        gain = per_shard[shard] - home
        if gain <= 0:
            continue
        if best is None or gain > best[1]:
            best = (shard, gain)
    return best


# -- helpers -----------------------------------------------------------------


def _shard_weights(
    graph: ComponentGraph, assignment: Dict[str, int], k: int
) -> List[int]:
    weights = [0] * k
    for name, shard in assignment.items():
        weights[shard] += graph.components[name].weight
    return weights


def _shard_counts(assignment: Dict[str, int], k: int) -> List[int]:
    counts = [0] * k
    for shard in assignment.values():
        counts[shard] += 1
    return counts

"""repro.partition: static partition planning for parallel simulation.

The road to PDES (ROADMAP item 2) starts before any worker process
exists: given a config, compute a good k-way shard assignment of the
network's components and *prove it safe* -- every shard crossing is a
latency-bearing channel, so conservative lookahead synchronization
works.  This package owns planning and execution:

* :mod:`repro.partition.graph` -- the component graph (routers,
  interfaces, channels with post-override latencies), extracted from
  the lint layer's no-simulate network constructor.
* :mod:`repro.partition.planner` -- deterministic greedy + KL-refined
  k-way partitioning, weighted by router radix, minimizing cut
  channels.
* :mod:`repro.partition.manifest` -- the JSON partition manifest the
  runtime consumes verbatim (shard membership, cut channels, per-shard
  conservative lookahead).
* :mod:`repro.partition.runtime` -- the sharded executor itself:
  conservative barrier windows of ``lookahead`` ticks, proxy channel
  endpoints serializing cut traffic as record streams
  (:mod:`repro.partition.proxy`), in-process or spawned workers, and
  merged results that are digest-equal to the single-process run.
  Imported lazily (``from repro.partition.runtime import run_sharded``)
  so planning stays dependency-free.

Verifying manifests, planned or hand-written, is the P-rule lint
layer in :mod:`repro.lint.partition_rules`.  Entry points: ``sslint
--partition K``, ``supersim --partition-plan K`` (plan only),
``supersim --partition K [--shard-workers N]`` (execute), and
``sssweep --partition K``.  See docs/PARTITIONING.md.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.partition.graph import ComponentGraph, ComponentInfo
from repro.partition.manifest import (
    CUT_KINDS,
    MANIFEST_VERSION,
    ManifestError,
    build_manifest,
    config_fingerprint,
    load_manifest,
    structural_errors,
    to_canonical_json,
    write_manifest,
)
from repro.partition.planner import DEFAULT_TOLERANCE, PartitionError, plan

__all__ = [
    "CUT_KINDS",
    "DEFAULT_TOLERANCE",
    "MANIFEST_VERSION",
    "ComponentGraph",
    "ComponentInfo",
    "ManifestError",
    "PartitionError",
    "build_manifest",
    "config_fingerprint",
    "load_manifest",
    "plan",
    "plan_partition",
    "structural_errors",
    "to_canonical_json",
    "write_manifest",
]


def plan_partition(
    settings,
    k: int,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Construct the network for ``settings`` and plan a k-way manifest.

    Convenience wrapper over the full pipeline (network construction ->
    component graph -> planner -> manifest).  Raises
    :class:`PartitionError` when the network cannot be built; use the
    lint entry points for diagnostics instead of exceptions.
    """
    from repro.lint.graph import GraphAnalysis

    analysis = GraphAnalysis(settings, max_pairs=0)
    if analysis.network is None:
        raise PartitionError(
            f"network construction failed: {analysis.construction_error}"
        )
    graph = ComponentGraph.from_analysis(analysis)
    assignment = plan(graph, k, tolerance=tolerance)
    topology = ""
    try:
        topology = settings.child("network").get_str("topology")
    except Exception:  # settings may be partial in tests
        pass
    return build_manifest(
        graph,
        assignment,
        k,
        topology=topology,
        fingerprint=config_fingerprint(settings.raw()),
    )

"""Sharded conservative-PDES executor driven by partition manifests.

:func:`run_sharded` executes one simulation configuration as ``k``
communicating sub-simulations, one per shard of a PR-5 partition
manifest (:mod:`repro.partition.manifest`).  Each worker builds the
*full* component graph -- names, wiring, RNG label registration and id
sequences must match the single-process run bit-for-bit -- but only its
own shard's routers are finalized and driven.  Channels crossing the
cut are replaced by proxy endpoints (:mod:`repro.partition.proxy`) that
serialize sends into plain-tuple records; the coordinator routes the
records to the sink shards between windows, where they are injected
through the channels' ordinary ``_deliver_item`` surface.

Synchronization is conservative (no rollback).  The lookahead ``L`` is
the manifest's global minimum cut-channel latency: a record produced in
window ``[C0, C)`` has ``due >= C0 + L >= C`` (windows never exceed
``L``), so exchanging records only at window barriers can never deliver
one late.  Termination mirrors the single-process Workload handshake:

* Ready/Start/Complete/Stop are *time-driven* for every admitted
  application -- :func:`validate_sharded_scope` derives the admission
  from shard-purity verdicts (:mod:`repro.lint.shard_rules`) plus each
  class's :meth:`Application.shard_schedule`, not from a name list --
  so every worker reaches them at identical ticks and no coordination
  is needed; the coordinator computes the stop tick statically from
  the configuration and caps pre-stop windows at it.
* Done/Kill are *delivery-driven*, so workers' local ``done`` signals
  are muted and the coordinator replays the decision globally: after
  Stop every application's delivery target (its class's
  ``shard_delivery_target``: sampled messages created for blast, all
  messages created otherwise -- identical in every worker, asserted)
  is compared against the merged delivery stream.  While
  ``R`` relevant deliveries are still missing, windows shrink to
  ``min(L, ceil(R / num_terminals))`` ticks: at most one message can
  complete per interface per tick, so the kill tick is provably at
  least that far away and no worker ever executes past it.  When ``R``
  reaches zero the executed bound sits exactly on the kill tick (a
  checked invariant) and the Kill command is applied between windows --
  equivalent to the single-process kill, which executes after the
  tick's generate events but only cancels events at strictly later
  ticks.
* After Kill, drain windows of ``L`` run until every worker's event
  queue is empty and no records remain in flight.

Correctness is anchored by DetSan: a worker attaches its sanitizers
with ``DetSan(retain_buckets=True)``, and the merged per-shard delivery
digests (:func:`repro.sanitize.det_san.merge_delivery_digests`) must
equal the single-process delivery digest for the same seed.

Two executors share all of the above:

* ``shard_workers=0`` hosts every worker in the calling process and
  round-robins the windows -- no IPC, deterministic, the mode the
  digest-equality goldens run in.  Global id counters are virtualized
  per worker (:class:`_IdScope`) so each worker sees the counters start
  from zero exactly as a fresh process would.
* ``shard_workers=k`` spawns one OS process per shard
  (``multiprocessing`` spawn context) and exchanges commands over
  pipes.  A worker crash is detected via the process sentinel and
  surfaces as a :class:`PartitionRuntimeError` naming the shard -- the
  coordinator never hangs on a dead worker.
"""

from __future__ import annotations

import itertools
import traceback
from multiprocessing import connection as _mp_connection
from multiprocessing import get_context as _mp_get_context
from typing import Any, Dict, List, Optional, Tuple

import repro.net.message as _message_mod
import repro.net.packet as _packet_mod
from repro.config.settings import Settings
from repro.net.credit import Credit
from repro.net.flit import FLIT_SLAB
from repro.net.network import shard_build_scope
from repro.net.phases import EPS_DELIVER
from repro.partition.manifest import config_fingerprint
from repro.partition.proxy import (
    FLIT_RECORD,
    Record,
    ShardRegistry,
    make_egress,
    make_phantom_interface,
)
from repro.sim import Simulation
from repro.stats.latency import LatencyDistribution
from repro.stats.records import MessageRecord
from repro.workload.workload import Phase


class PartitionRuntimeError(RuntimeError):
    """Raised for sharded-execution failures (always names the shard)."""


#: drain windows after Kill before declaring the run wedged.
MAX_DRAIN_ROUNDS = 10_000


# -- scope validation --------------------------------------------------------


def validate_sharded_scope(config: dict, sanitize: str = "") -> None:
    """Reject configurations the sharded runtime cannot replay exactly.

    The phantom-terminal replay requires every workload control
    transition to be time-driven and every worker to consume the shared
    RNG streams in the same order.  There is no list of blessed model
    names here: the scope is *derived*, per registered class, by the
    shard-purity analyzer (:mod:`repro.lint.shard_rules`).  A model is
    admitted when the interprocedural S-rules find no hazard applicable
    to this configuration AND (for applications) the class derives a
    static Ready/Complete schedule from the config alone
    (:meth:`Application.shard_schedule`).  Rejections carry the
    analyzer's evidence chain, so a custom model's author sees exactly
    which method path reads shard-divergent state.
    """
    from repro import factory
    from repro.factory import FactoryError
    from repro.lint.shard_rules import UNKNOWN, analyze_class
    from repro.models import load_all
    from repro.routing.base import RoutingAlgorithm
    from repro.workload.application import Application

    load_all()
    problems = []

    def vet(cls, kind: str, block: dict, subject: str) -> bool:
        """Analyzer verdict for one model; True when clean here."""
        verdict = analyze_class(cls, kind)
        if verdict.classification == UNKNOWN:
            problems.append(
                f"{subject}: source of {cls.__name__} is unavailable, so "
                f"its shard purity cannot be established statically"
            )
            return False
        hazards = verdict.applicable_hazards(block)
        problems.extend(f"{subject}: {h.render()}" for h in hazards)
        return not hazards

    workload = config.get("workload", {})
    for index, app in enumerate(workload.get("applications", ())):
        kind = app.get("type")
        subject = f"application {index} ({kind})"
        try:
            cls = factory.lookup(Application, kind)
        except FactoryError:
            problems.append(
                f"application {index} has unregistered type {kind!r}; "
                f"sharded execution needs a registered, statically "
                f"analyzable time-driven application"
            )
            continue
        clean = vet(cls, "application", app, subject)
        if clean and cls.shard_schedule(app) is None:
            problems.append(
                f"{subject}: shard_schedule() derives no static "
                f"Ready/Complete schedule from this configuration; the "
                f"sharded runtime needs a time-driven handshake"
            )
    network = config.get("network", {})
    algorithm = network.get("routing", {}).get("algorithm", "")
    try:
        routing_cls = factory.lookup(RoutingAlgorithm, algorithm)
    except FactoryError:
        routing_cls = None  # the settings layer reports unknown names
    if routing_cls is not None:
        vet(
            routing_cls,
            "routing",
            network.get("routing", {}),
            f"routing algorithm {algorithm!r}",
        )
    from repro.net.interface import Interface
    from repro.router.base import Router

    for base, lint_kind, block, label in (
        (Router, "router", network.get("router", {}), "architecture"),
        (Interface, "interface", network.get("interface", {}), "type"),
    ):
        name = block.get(label, "standard" if base is Interface else "")
        try:
            cls = factory.lookup(base, name)
        except FactoryError:
            continue  # the settings layer reports unknown names
        vet(cls, lint_kind, block, f"{lint_kind} {name!r}")
    monitor = config.get("simulator", {}).get("monitor", {})
    if monitor.get("period", 0) > 0:
        problems.append(
            "simulator.monitor.period > 0: the progress monitor samples "
            "whole-network state a shard does not have; disable it"
        )
    if sanitize:
        from repro.sanitize.base import _parse_spec

        if "flit" in _parse_spec(sanitize):
            problems.append(
                "sanitizer 'flit' tracks flit custody across the whole "
                "network and cannot see cut crossings; run it on a "
                "single-process simulation instead"
            )
    if problems:
        raise PartitionRuntimeError(
            "configuration outside the sharded-runtime scope:\n  - "
            + "\n  - ".join(problems)
        )


def _static_stop_schedule(config: dict) -> Tuple[int, int]:
    """(start_tick, stop_tick) of the workload, computed without running.

    Valid exactly for the applications :func:`validate_sharded_scope`
    admits, whose :meth:`Application.shard_schedule` derives Ready and
    Complete as pure functions of the configuration; every worker's
    reported ticks are asserted against this schedule.
    """
    from repro import factory
    from repro.models import load_all
    from repro.workload.application import Application

    load_all()
    schedules = []
    for app in config["workload"]["applications"]:
        cls = factory.lookup(Application, app["type"])
        schedule = cls.shard_schedule(app)
        if schedule is None:  # validate_sharded_scope already vetoes this
            raise PartitionRuntimeError(
                f"application type {app['type']!r} has no static schedule"
            )
        schedules.append(schedule)
    t_start = max(ready for ready, _offset in schedules)
    return t_start, max(
        t_start + offset for _ready, offset in schedules
    )


# -- shard worker ------------------------------------------------------------


def _land(event) -> None:
    """Injected ingress event: deliver one materialized item.

    Calls ``_deliver_item`` through the channel's class so sanitizer
    method patches (DetSan's delivery digest, CreditSan) observe the
    landing exactly as they observe a single-process delivery.
    """
    channel, item = event.data
    channel._deliver_item(item)


def _muted_done() -> None:
    """Replaces ``app.done`` in workers: the coordinator decides Kill."""


class ShardWorker:
    """One shard's sub-simulation (used by both executors).

    Drives the full network build (restricted finalize), phantom
    patching of foreign interfaces, proxy installation, and the
    windowed run protocol.  ``crash_mode`` is test-only fault
    injection: ``"raise"`` raises and ``"exit"`` hard-exits the process
    on the second window, exercising the coordinator's crash handling.
    """

    def __init__(
        self,
        config: dict,
        manifest: dict,
        shard_id: int,
        sanitize: str = "",
        crash_mode: Optional[str] = None,
        check_slab: bool = True,
    ):
        validate_sharded_scope(config, sanitize)
        fingerprint = config_fingerprint(config)
        if fingerprint != manifest["config_fingerprint"]:
            raise PartitionRuntimeError(
                f"shard {shard_id}: manifest fingerprint "
                f"{manifest['config_fingerprint']} does not match the "
                f"configuration ({fingerprint}); re-plan the partition"
            )
        self.shard_id = shard_id
        self._crash_mode = crash_mode
        self._check_slab = check_slab
        self._slab_baseline = FLIT_SLAB.live
        self.local_names = frozenset(
            manifest["shards"][shard_id]["components"]
        )
        with shard_build_scope(self.local_names):
            self.simulation = Simulation(Settings(config))
        self.simulator = self.simulation.simulator
        network = self.simulation.network

        self.local_interfaces = []
        for interface in network.interfaces:
            if interface.full_name in self.local_names:
                self.local_interfaces.append(interface)
            else:
                make_phantom_interface(interface)

        self.registry = ShardRegistry()
        self.outbox: List[Record] = []
        self._ingress: Dict[int, Any] = {}
        self._egress_flit_cuts = []
        for index, entry in enumerate(manifest["cut_channels"]):
            channel = self.simulator.find_component(entry["name"])
            if channel is None:
                raise PartitionRuntimeError(
                    f"shard {shard_id}: cut channel {entry['name']!r} not "
                    f"found in the built network; manifest/config mismatch"
                )
            # Flag both endpoints' instances in every worker so link
            # checkers (CreditSan) skip half-visible links.
            channel.shard_proxy = True
            if entry["source_shard"] == shard_id:
                make_egress(channel, index, self.outbox, self.registry)
                if entry["kind"] == "flit":
                    self._egress_flit_cuts.append((entry, channel))
            if entry["sink_shard"] == shard_id:
                self._ingress[index] = channel

        for app in self.simulation.workload.applications:
            app.done = _muted_done

        self.suite = None
        self._det = None
        if sanitize:
            from repro import factory
            from repro.sanitize import base as sanitize_base
            from repro.sanitize.det_san import DetSan

            sanitizers = []
            for name in sanitize_base._parse_spec(sanitize):
                if name == "det":
                    # Retain buckets so per-shard digests can be merged.
                    sanitizer = DetSan(retain_buckets=True)
                    self._det = sanitizer
                else:
                    sanitizer = factory.create(
                        sanitize_base.Sanitizer, name
                    )
                sanitizers.append(sanitizer)
            self.suite = sanitize_base.SanitizerSuite(sanitizers).attach(
                self.simulation
            )

        self._delivered: List[Tuple[int, int, int, bool]] = []
        for interface in self.local_interfaces:
            interface.message_delivered_listeners.append(self._on_delivered)
        self._ingress_counts: Dict[int, int] = {}
        self.windows_run = 0

    # -- delivery capture --------------------------------------------------

    def _on_delivered(self, message) -> None:
        self.registry.note_local_delivery(message)
        self._delivered.append((
            message.id,
            message.application_id,
            message.delivered_tick,
            message.sampled,
        ))

    # -- protocol ----------------------------------------------------------

    def hello(self) -> dict:
        network = self.simulation.network
        return {
            "num_terminals": network.num_terminals,
            "channel_period": network.channel_period,
            "local_interfaces": len(self.local_interfaces),
        }

    def run_window(
        self,
        end: int,
        records: List[Record],
        delivered_ids: List[int],
        kill_tick: Optional[int],
    ) -> dict:
        if self._crash_mode is not None and self.windows_run >= 1:
            if self._crash_mode == "exit":
                import os

                os._exit(13)
            raise RuntimeError(
                f"injected crash in shard {self.shard_id} worker"
            )
        self.registry.release_delivered(delivered_ids)
        if kill_tick is not None:
            self._apply_kill(kill_tick)
        inject = self.simulator.inject
        counts = self._ingress_counts
        for record in records:
            index = record[1]
            channel = self._ingress.get(index)
            if channel is None:
                raise PartitionRuntimeError(
                    f"shard {self.shard_id}: received a record for cut "
                    f"{index}, whose sink is not in this shard"
                )
            counts[index] = counts.get(index, 0) + 1
            if record[0] == FLIT_RECORD:
                item = self.registry.materialize_flit(record)
            else:
                item = Credit.of(record[3])
            inject(record[2], _land, data=(channel, item), epsilon=EPS_DELIVER)
        executed = self.simulator.run_until(end)
        self.windows_run += 1

        out = list(self.outbox)
        self.outbox.clear()
        delivered = self._delivered
        self._delivered = []
        workload = self.simulation.workload
        response = {
            "records": out,
            "delivered": delivered,
            "pending": self.simulator.pending_events,
            "executed": executed,
            "tick": self.simulator.tick,
            "start_tick": workload.start_tick,
            "stop_tick": workload.stop_tick,
        }
        if workload.stop_tick is not None:
            response["targets"] = self._targets()
        return response

    def _targets(self) -> Dict[int, Tuple[str, int]]:
        """Per-application delivery targets, fixed once Stop has passed.

        Creation counters are global (every worker replays every
        terminal), so all workers report identical targets -- the
        coordinator asserts it.
        """
        targets = {}
        for app in self.simulation.workload.applications:
            if app.shard_delivery_target == "sampled":
                targets[app.application_id] = ("sampled", app.sampled_created)
            else:
                targets[app.application_id] = ("all", app.messages_created)
        return targets

    def _apply_kill(self, kill_tick: int) -> None:
        """Replay the Workload's Kill broadcast between windows.

        Equivalent to the single-process ``_all_done``: the kill event
        there runs at ``(kill_tick, eps >= EPS_CONTROL)``, after the
        tick's generate events (``EPS_GENERATE``), and only cancels
        pending generates at strictly later ticks (injection gaps are
        >= 1 tick) -- exactly the set cancelled here after the window
        executed through ``kill_tick``.
        """
        workload = self.simulation.workload
        if workload.phase is Phase.DRAINING:
            return
        if workload.phase is not Phase.FINISHING:
            raise PartitionRuntimeError(
                f"shard {self.shard_id}: kill at tick {kill_tick} but the "
                f"workload is still {workload.phase.value}; the coordinator "
                f"and the static stop schedule disagree"
            )
        workload.phase = Phase.DRAINING
        workload.kill_tick = kill_tick
        for app in workload.applications:
            workload._done[app.application_id] = True
            app.shard_force_done()
            app.on_kill()

    def finish(self, delivered_ids: List[int], strict: bool = True) -> dict:
        """Final quiescence checks and the shard's merged report.

        ``strict=False`` (a run truncated by ``max_time``, mirroring a
        single-process run that hit its safety limit) skips the
        drained-network invariants -- traffic is legitimately still in
        flight.
        """
        self.registry.release_delivered(delivered_ids)
        errors = []
        if strict and self.outbox:
            errors.append(f"{len(self.outbox)} unrouted egress records")
        pending = self.simulator.pending_events
        if strict and pending:
            errors.append(f"{pending} events still pending at finish")
        if strict and self.registry.outstanding:
            errors.append(
                f"{self.registry.outstanding} cross-shard messages never "
                f"reported delivered (leak)"
            )
        # Quiescent-drain credit check for egress cuts: CreditSan skips
        # proxied links, so verify here that every credit the upstream
        # device spent on a cut channel came home.
        if strict:
            for entry, channel in self._egress_flit_cuts:
                device = self.simulator.find_component(entry["source"])
                port = device._flit_out.index(channel)
                tracker = device._output_credits[port]
                for vc in range(tracker.num_vcs):
                    occupancy = tracker.occupancy(vc)
                    if occupancy:
                        errors.append(
                            f"cut {entry['name']}: {occupancy} credits for "
                            f"VC {vc} still outstanding at quiescence"
                        )
        reports = {}
        if self.suite is not None:
            self.suite.finish()
            reports = self.suite.report()
        if strict and self._check_slab \
                and FLIT_SLAB.live != self._slab_baseline:
            errors.append(
                f"flit slab leak: {FLIT_SLAB.live - self._slab_baseline} "
                f"live handles above the pre-build baseline"
            )
        if errors:
            raise PartitionRuntimeError(
                f"shard {self.shard_id} failed finish checks:\n  - "
                + "\n  - ".join(errors)
            )
        workload = self.simulation.workload
        counters = {}
        for app in workload.applications:
            counters[app.application_id] = {
                "messages_created": app.messages_created,
                "messages_delivered": app.messages_delivered,
                "sampled_created": app.sampled_created,
                "sampled_delivered": app.sampled_delivered,
                "flits_created": app.flits_created,
                "sampled_flits_created": app.sampled_flits_created,
            }
        report = {
            "shard": self.shard_id,
            "records": [r.to_dict() for r in self.simulation.message_log.records],
            "counters": counters,
            "events_executed": self.simulator.executed_events,
            "end_tick": self.simulator.tick,
            "windows": self.windows_run,
            "ingress_counts": self._ingress_counts,
            "drained": workload.drained,
            "start_tick": workload.start_tick,
            "stop_tick": workload.stop_tick,
            "kill_tick": workload.kill_tick,
            "sanitizers": reports,
        }
        if self._det is not None:
            report["delivery_buckets"] = list(self._det.delivery_buckets)
        return report


# -- in-process executor -----------------------------------------------------


class _IdScope:
    """Virtualizes the global message/packet id counters per worker.

    In-process workers share one interpreter, but each must observe the
    id sequences a fresh process would: starting at zero and advancing
    only with its own (identical) replay.  Entering the scope installs
    the worker's private counters; leaving records their position and
    restores whatever was installed before, so the surrounding session
    (and the other workers) are unaffected.
    """

    def __init__(self) -> None:
        self._message_next = 0
        self._packet_next = 0
        self._saved_message = None
        self._saved_packet = None

    def __enter__(self) -> "_IdScope":
        self._saved_message = _message_mod._global_message_ids
        self._saved_packet = _packet_mod._global_packet_ids
        _message_mod._global_message_ids = itertools.count(self._message_next)
        _packet_mod._global_packet_ids = itertools.count(self._packet_next)
        return self

    def __exit__(self, *exc_info) -> None:
        self._message_next = next(_message_mod._global_message_ids)
        self._packet_next = next(_packet_mod._global_packet_ids)
        _message_mod._global_message_ids = self._saved_message
        _packet_mod._global_packet_ids = self._saved_packet


class _InProcessHandle:
    """Hosts one ShardWorker in the coordinating process."""

    mode = "in-process"

    def __init__(self, config, manifest, shard_id, sanitize, crash):
        self.shard_id = shard_id
        self._scope = _IdScope()
        with self._scope:
            self.worker = ShardWorker(
                config,
                manifest,
                shard_id,
                sanitize=sanitize,
                crash_mode="raise" if crash else None,
                check_slab=False,  # slab is shared; coordinator checks it
            )
        self.hello = self.worker.hello()

    def window(self, end, records, delivered_ids, kill_tick):
        try:
            with self._scope:
                return self.worker.run_window(
                    end, records, delivered_ids, kill_tick
                )
        except PartitionRuntimeError:
            raise
        except Exception as exc:
            raise PartitionRuntimeError(
                f"shard {self.shard_id} worker failed: {exc}"
            ) from exc

    def finish(self, delivered_ids, strict=True):
        with self._scope:
            return self.worker.finish(delivered_ids, strict)

    @property
    def suite(self):
        return self.worker.suite

    def close(self) -> None:
        pass


# -- process executor --------------------------------------------------------


def _worker_main(conn, payload) -> None:
    """Spawned-process entry: build one ShardWorker, serve commands."""
    try:
        worker = ShardWorker(
            payload["config"],
            payload["manifest"],
            payload["shard"],
            sanitize=payload["sanitize"],
            crash_mode="exit" if payload["crash"] else None,
            check_slab=True,
        )
        conn.send(("ok", worker.hello()))
    except Exception:
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            command = conn.recv()
        except EOFError:
            return
        try:
            op = command[0]
            if op == "window":
                _, end, records, delivered_ids, kill_tick = command
                reply = worker.run_window(end, records, delivered_ids, kill_tick)
            elif op == "finish":
                reply = worker.finish(command[1], command[2])
            elif op == "close":
                return
            else:
                raise PartitionRuntimeError(f"unknown command {op!r}")
            conn.send(("ok", reply))
        except Exception:
            conn.send(("error", traceback.format_exc()))


class _ProcessHandle:
    """One spawned worker process plus its command pipe.

    Every receive waits on the pipe *and* the process sentinel, so a
    worker that dies without a reply (crash, ``os._exit``) produces an
    immediate :class:`PartitionRuntimeError` naming the shard instead
    of a hang.
    """

    mode = "spawn"
    suite = None  # sanitizers live (and detach) inside the process

    def __init__(self, ctx, config, manifest, shard_id, sanitize, crash):
        self.shard_id = shard_id
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                {
                    "config": config,
                    "manifest": manifest,
                    "shard": shard_id,
                    "sanitize": sanitize,
                    "crash": crash,
                },
            ),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self.hello = self._receive()

    def _receive(self):
        ready = _mp_connection.wait([self._conn, self._proc.sentinel])
        if self._conn in ready:
            try:
                status, value = self._conn.recv()
            except EOFError:
                self._died()
            if status == "error":
                raise PartitionRuntimeError(
                    f"shard {self.shard_id} worker failed:\n{value}"
                )
            return value
        self._died()

    def _died(self):
        self._proc.join(timeout=5)
        raise PartitionRuntimeError(
            f"shard {self.shard_id} worker process died (exit code "
            f"{self._proc.exitcode}) without reporting an error"
        )

    def window(self, end, records, delivered_ids, kill_tick):
        self._conn.send(("window", end, records, delivered_ids, kill_tick))
        return self._receive()

    def finish(self, delivered_ids, strict=True):
        self._conn.send(("finish", delivered_ids, strict))
        return self._receive()

    def close(self) -> None:
        try:
            self._conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5)
        self._conn.close()


# -- coordinator -------------------------------------------------------------


def run_sharded(
    config: dict,
    k: Optional[int] = None,
    *,
    shard_workers: int = 0,
    manifest: Optional[dict] = None,
    sanitize: str = "",
    _crash_shard: Optional[int] = None,
) -> "ShardedResults":
    """Run ``config`` sharded ``k`` ways; returns merged results.

    ``shard_workers=0`` executes all shards in this process (windows
    round-robin); ``shard_workers=k`` spawns one process per shard.
    ``manifest`` skips re-planning when the caller already has one.
    ``_crash_shard`` is test-only fault injection.
    """
    validate_sharded_scope(config, sanitize)
    if manifest is None:
        if k is None:
            raise PartitionRuntimeError("run_sharded needs k or a manifest")
        from repro.partition import plan_partition

        manifest = plan_partition(Settings(config), k)
    k = manifest["k"]
    if shard_workers not in (0, k):
        raise PartitionRuntimeError(
            f"shard_workers must be 0 (in-process) or k={k}, "
            f"got {shard_workers}"
        )
    lookahead = manifest["lookahead"]["global"]
    if lookahead < 1:
        raise PartitionRuntimeError(
            f"manifest lookahead {lookahead} < 1; cannot window"
        )
    cut_sinks = [entry["sink_shard"] for entry in manifest["cut_channels"]]
    t_start, t_stop = _static_stop_schedule(config)
    max_time = config.get("simulator", {}).get("max_time")
    from repro import factory as _factory
    from repro.models import load_all as _load_all
    from repro.workload.application import Application as _Application

    _load_all()
    app_target_kinds = [
        _factory.lookup(_Application, app["type"]).shard_delivery_target
        for app in config["workload"]["applications"]
    ]
    slab_baseline = FLIT_SLAB.live

    handles: List[Any] = []
    reports = None
    try:
        if shard_workers:
            ctx = _mp_get_context("spawn")
            for shard_id in range(k):
                handles.append(_ProcessHandle(
                    ctx, config, manifest, shard_id, sanitize,
                    shard_id == _crash_shard,
                ))
        else:
            for shard_id in range(k):
                handles.append(_InProcessHandle(
                    config, manifest, shard_id, sanitize,
                    shard_id == _crash_shard,
                ))
        num_terminals = handles[0].hello["num_terminals"]
        channel_period = handles[0].hello["channel_period"]
        for handle in handles:
            if handle.hello["num_terminals"] != num_terminals:
                raise PartitionRuntimeError(
                    f"shard {handle.shard_id} built a different network "
                    f"({handle.hello['num_terminals']} terminals, expected "
                    f"{num_terminals})"
                )

        inboxes: List[List[Record]] = [[] for _ in range(k)]
        delivered_broadcast: List[int] = []
        # Per-application relevant-delivery ticks, counting whatever the
        # class's shard_delivery_target declares (sampled messages for
        # blast, all for pulse) -- mirroring each app's Done test.
        app_ticks: Dict[int, List[int]] = {
            app_id: [] for app_id in range(len(app_target_kinds))
        }
        targets: Optional[Dict[int, Tuple[str, int]]] = None
        kill_tick: Optional[int] = None
        kill_sent = False
        truncated = False
        executed_bound = 0  # ticks < executed_bound fully executed
        windows = 0
        records_exchanged = 0
        drain_rounds = 0
        produced_counts: Dict[int, int] = {}

        while True:
            kill_arg = None
            if kill_sent:
                end = executed_bound + lookahead
                drain_rounds += 1
                if drain_rounds > MAX_DRAIN_ROUNDS:
                    raise PartitionRuntimeError(
                        f"network failed to drain within {MAX_DRAIN_ROUNDS} "
                        f"post-kill windows; records or events are stuck"
                    )
            elif targets is None:
                if max_time is not None and executed_bound > max_time:
                    truncated = True
                    break
                end = min(executed_bound + lookahead, t_stop + 1)
                if end <= executed_bound:
                    raise PartitionRuntimeError(
                        "stop tick passed without workers reporting "
                        "targets; static schedule mismatch"
                    )
            else:
                remaining = 0
                for app_id, (_, target) in targets.items():
                    remaining += max(0, target - len(app_ticks[app_id]))
                if remaining == 0:
                    kill_tick = t_stop
                    for app_id, (_, target) in targets.items():
                        if target > 0:
                            ticks = sorted(app_ticks[app_id])
                            kill_tick = max(kill_tick, ticks[target - 1])
                    if kill_tick != executed_bound - 1:
                        raise PartitionRuntimeError(
                            f"kill-tick invariant violated: executed through "
                            f"{executed_bound - 1} but the merged deliveries "
                            f"put the kill at {kill_tick}; windowing math or "
                            f"delivery merging is wrong"
                        )
                    kill_arg = kill_tick
                    kill_sent = True
                    end = executed_bound + lookahead
                else:
                    if max_time is not None and executed_bound > max_time:
                        truncated = True
                        break
                    window = min(
                        lookahead,
                        max(1, -(-remaining // num_terminals)),
                    )
                    end = executed_bound + window

            responses = []
            for shard_id, handle in enumerate(handles):
                responses.append(handle.window(
                    end, inboxes[shard_id], delivered_broadcast, kill_arg
                ))
            windows += 1
            executed_bound = end
            inboxes = [[] for _ in range(k)]
            delivered_broadcast = []
            produced = 0
            for response in responses:
                for record in response["records"]:
                    index = record[1]
                    produced_counts[index] = produced_counts.get(index, 0) + 1
                    inboxes[cut_sinks[index]].append(record)
                    produced += 1
                for msg_id, app_id, tick, sampled in response["delivered"]:
                    delivered_broadcast.append(msg_id)
                    if app_target_kinds[app_id] != "sampled" or sampled:
                        app_ticks[app_id].append(tick)
                if response["start_tick"] is not None \
                        and response["start_tick"] != t_start:
                    raise PartitionRuntimeError(
                        f"worker reported start tick "
                        f"{response['start_tick']}, static schedule says "
                        f"{t_start}"
                    )
                if response["stop_tick"] is not None \
                        and response["stop_tick"] != t_stop:
                    raise PartitionRuntimeError(
                        f"worker reported stop tick {response['stop_tick']}, "
                        f"static schedule says {t_stop}"
                    )
                reported = response.get("targets")
                if reported is not None:
                    if targets is None:
                        targets = reported
                    elif targets != reported:
                        raise PartitionRuntimeError(
                            f"shards disagree on delivery targets: "
                            f"{targets} vs {reported}"
                        )
            records_exchanged += produced
            if kill_sent and produced == 0 \
                    and all(r["pending"] == 0 for r in responses):
                break

        reports = [
            handle.finish(delivered_broadcast, not truncated)
            for handle in handles
        ]

        # Cross-cut conservation: every record routed must have been
        # injected exactly once at its sink shard.
        injected_counts: Dict[int, int] = {}
        for report in reports:
            for index, count in report["ingress_counts"].items():
                index = int(index)
                injected_counts[index] = injected_counts.get(index, 0) + count
        # On truncation the final round's records were produced but
        # never routed, so the books legitimately differ.
        if not truncated and injected_counts != produced_counts:
            raise PartitionRuntimeError(
                f"cut-record conservation violated: produced "
                f"{produced_counts}, injected {injected_counts}"
            )
        if not shard_workers and not truncated \
                and FLIT_SLAB.live != slab_baseline:
            raise PartitionRuntimeError(
                f"flit slab leak across shards: "
                f"{FLIT_SLAB.live - slab_baseline} live handles above the "
                f"pre-run baseline"
            )
        return ShardedResults(
            manifest=manifest,
            mode="spawn" if shard_workers else "in-process",
            reports=reports,
            windows=windows,
            records_exchanged=records_exchanged,
            lookahead=lookahead,
            num_terminals=num_terminals,
            channel_period=channel_period,
            start_tick=t_start,
            stop_tick=t_stop,
            kill_tick=kill_tick,
            truncated=truncated,
        )
    finally:
        # In-process sanitizer suites stack method patches on shared
        # classes; detach strictly in reverse attach order.
        for handle in reversed(handles):
            if handle.suite is not None:
                handle.suite.detach()
        for handle in handles:
            handle.close()


# -- merged results ----------------------------------------------------------


class ShardedResults:
    """Merged statistics of a sharded run (mirrors SimulationResults)."""

    def __init__(
        self,
        manifest: dict,
        mode: str,
        reports: List[dict],
        windows: int,
        records_exchanged: int,
        lookahead: int,
        num_terminals: int,
        channel_period: int,
        start_tick: int,
        stop_tick: int,
        kill_tick: Optional[int],
        truncated: bool,
    ):
        self.manifest = manifest
        self.mode = mode
        self.reports = reports
        self.windows = windows
        self.records_exchanged = records_exchanged
        self.lookahead = lookahead
        self.num_terminals = num_terminals
        self.channel_period = channel_period
        self.start_tick = start_tick
        self.stop_tick = stop_tick
        self.kill_tick = kill_tick
        self.truncated = truncated
        merged = []
        for report in reports:
            merged.extend(
                MessageRecord.from_dict(item) for item in report["records"]
            )
        merged.sort(key=lambda r: (r.delivered_tick, r.message_id))
        self.records = merged

    @property
    def drained(self) -> bool:
        return all(report["drained"] for report in self.reports)

    @property
    def end_tick(self) -> int:
        return max(report["end_tick"] for report in self.reports)

    @property
    def events_executed(self) -> int:
        """Sum of per-shard executed events.

        Includes the phantom-terminal replay every worker runs, so this
        exceeds the single-process count by roughly (k-1) x the
        generate-event population; compare per-shard rates, not totals.
        """
        return sum(report["events_executed"] for report in self.reports)

    @property
    def delivery_digest(self) -> Optional[str]:
        """Merged DetSan delivery digest (needs ``sanitize="det"``)."""
        if any("delivery_buckets" not in r for r in self.reports):
            return None
        from repro.sanitize.det_san import merge_delivery_digests

        return merge_delivery_digests(
            [report["delivery_buckets"] for report in self.reports]
        )

    # -- merged statistics -------------------------------------------------

    def sampled_records(self) -> List[MessageRecord]:
        return [record for record in self.records if record.sampled]

    def latency(self, kind: str = "message") -> LatencyDistribution:
        return LatencyDistribution.from_records(self.sampled_records(), kind)

    def _window(self) -> int:
        return self.stop_tick - self.start_tick

    def offered_load(self) -> float:
        window = self._window()
        if not window:
            return float("nan")
        # Creation counters are global in every worker; read shard 0.
        flits = sum(
            counters["sampled_flits_created"]
            for counters in self.reports[0]["counters"].values()
        )
        cycles = window / self.channel_period
        return flits / (self.num_terminals * cycles)

    def accepted_load(self) -> float:
        window = self._window()
        if not window:
            return float("nan")
        flits = sum(
            record.num_flits
            for record in self.records
            if self.start_tick <= record.delivered_tick < self.stop_tick
        )
        cycles = window / self.channel_period
        return flits / (self.num_terminals * cycles)

    def delivered_fraction(self) -> float:
        created = sum(
            counters["sampled_created"]
            for counters in self.reports[0]["counters"].values()
        )
        # Delivery counters are local per shard; sum them.
        delivered = sum(
            counters["sampled_delivered"]
            for report in self.reports
            for counters in report["counters"].values()
        )
        return delivered / created if created else float("nan")

    def summary(self) -> Dict[str, object]:
        latency = self.latency()
        return {
            "drained": self.drained,
            "end_tick": self.end_tick,
            "window": [self.start_tick, self.stop_tick],
            "offered_load": self.offered_load(),
            "accepted_load": self.accepted_load(),
            "delivered_fraction": self.delivered_fraction(),
            "latency": latency.summary() if not latency.empty else None,
            "events_executed": self.events_executed,
            "partition": {
                "k": self.manifest["k"],
                "mode": self.mode,
                "workers": len(self.reports),
                "windows": self.windows,
                "lookahead": self.lookahead,
                "records_exchanged": self.records_exchanged,
                "kill_tick": self.kill_tick,
                "shards": [
                    {
                        "shard": report["shard"],
                        "events_executed": report["events_executed"],
                        "messages_delivered": len(report["records"]),
                    }
                    for report in self.reports
                ],
            },
        }

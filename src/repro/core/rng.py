"""Deterministic random number generation.

Every source of randomness in a simulation flows from a single root seed
declared in the configuration.  Sub-generators are derived by hashing the
root seed with a stable string label, so adding a new randomized
component never perturbs the random streams of existing components --
a property the original SuperSim also relies on for reproducible sweeps.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomManager:
    """Factory of named, deterministic ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def derive_seed(self, label: str) -> int:
        """Derive a 63-bit seed from the root seed and a string label."""
        digest = hashlib.sha256(
            f"{self.root_seed}:{label}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF

    def generator(self, label: str) -> np.random.Generator:
        """Return a fresh generator for ``label``.

        Calling twice with the same label yields two generators producing
        the same stream; callers should create one per component and keep it.
        """
        return np.random.default_rng(self.derive_seed(label))

    def __repr__(self):
        return f"RandomManager(root_seed={self.root_seed})"

"""Clock domains (paper §III-B, Fig. 2b).

SuperSim allows multiple clock frequencies in one design.  A clock is
specified by its cycle time in ticks: Clock A with a 3-tick period and
Clock B with a 2-tick period tick at 0,3,6,... and 0,2,4,...
respectively.  This is most commonly used to model switch frequency
speedup where the router core runs faster than its links.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator


class Clock:
    """A clock domain defined by a period (in ticks) and a phase offset.

    Edges occur at ticks ``phase + k * period`` for ``k = 0, 1, 2, ...``.
    """

    __slots__ = ("simulator", "period", "phase")

    def __init__(self, simulator: "Simulator", period: int, phase: int = 0):
        if period < 1:
            raise ValueError(f"clock period must be >= 1 tick, got {period}")
        if not 0 <= phase < period:
            raise ValueError(f"clock phase must be in [0, {period}), got {phase}")
        self.simulator = simulator
        self.period = period
        self.phase = phase

    def is_edge(self, tick: int) -> bool:
        """True when ``tick`` lies exactly on a clock edge."""
        return tick >= self.phase and (tick - self.phase) % self.period == 0

    def next_edge(self, tick: int) -> int:
        """The first edge tick strictly *at or after* ``tick``."""
        if tick <= self.phase:
            return self.phase
        offset = (tick - self.phase) % self.period
        if offset == 0:
            return tick
        return tick + (self.period - offset)

    def following_edge(self, tick: int) -> int:
        """The first edge tick strictly *after* ``tick``."""
        edge = self.next_edge(tick)
        if edge == tick:
            edge += self.period
        return edge

    def cycles_to_ticks(self, cycles: int) -> int:
        """Convert a cycle count in this domain to ticks."""
        if cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {cycles}")
        return cycles * self.period

    def frequency_ratio(self, other: "Clock") -> float:
        """How many times faster this clock is than ``other``."""
        return other.period / self.period

    def __repr__(self):
        return f"Clock(period={self.period}, phase={self.phase})"

"""Discrete event simulation core (paper §III).

Public names::

    Simulator   -- global event queue + executer
    Component   -- base class for everything in a simulation
    Event       -- a scheduled callback
    TimeStep    -- (tick, epsilon) simulated time value
    Clock       -- a clock domain (period in ticks)
    RandomManager -- deterministic named RNG streams
"""

from repro.core.clock import Clock
from repro.core.component import Component
from repro.core.event import Event
from repro.core.rng import RandomManager
from repro.core.simtime import MAX_EPSILON, ZERO, TimeStep, as_timestep
from repro.core.simulator import SimulationError, Simulator

__all__ = [
    "Clock",
    "Component",
    "Event",
    "MAX_EPSILON",
    "RandomManager",
    "SimulationError",
    "Simulator",
    "TimeStep",
    "ZERO",
    "as_timestep",
]

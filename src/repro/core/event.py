"""Events for the discrete event simulation core.

An event (paper Fig. 1) is a small object with:

* a time at which it executes (``tick`` + ``epsilon``),
* the component that will perform the execution (its handler), and
* optional component-specific data.

Events are created by components and pushed into the simulator's global
priority queue.  The executer pops them in time order and calls
``handler(event)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.simtime import TimeStep


class Event:
    """A scheduled callback with optional payload.

    Attributes:
        handler: callable invoked as ``handler(event)`` when the event
            fires.  Usually a bound method of a :class:`Component`.
        time: the :class:`TimeStep` at which the event fires.  Set by the
            simulator when the event is scheduled.
        data: arbitrary component-specific payload.
        cancelled: if set before the event fires, the executer drops it.
    """

    __slots__ = ("handler", "tick", "epsilon", "data", "cancelled")

    def __init__(self, handler: Callable[["Event"], None], data: Any = None):
        self.handler = handler
        self.tick: Optional[int] = None
        self.epsilon: int = 0
        self.data = data
        self.cancelled = False

    @property
    def time(self) -> Optional[TimeStep]:
        """The scheduled (tick, epsilon), or None before scheduling."""
        if self.tick is None:
            return None
        return TimeStep(self.tick, self.epsilon)

    def cancel(self) -> None:
        """Mark this event so the executer skips it.

        Cancellation is O(1): the event stays in the queue but its handler
        is not invoked.  This mirrors the common DES lazy-delete idiom.
        """
        self.cancelled = True

    def __repr__(self):
        name = getattr(self.handler, "__qualname__", repr(self.handler))
        return f"Event({name} @ {self.time}, data={self.data!r})"

"""Events for the discrete event simulation core.

An event (paper Fig. 1) is a small object with:

* a time at which it executes (``tick`` + ``epsilon``),
* the component that will perform the execution (its handler), and
* optional component-specific data.

Events are created by components and pushed into the simulator's global
priority queue.  The executer pops them in time order and calls
``handler(event)``.

Performance note -- recycling and generations: the simulator keeps a
freelist of fired events (see ``docs/PERFORMANCE.md``) so the hot path
does not allocate one object per event.  An event is only recycled when
the executer holds the *sole* reference to it, so no live handle can
alias a reused event.  ``generation`` counts how many times the object
has been handed out; it increments on every reuse, letting tests and
tools detect recycling, and ``cancel()`` refuses to act once the event
has fired, so a stale cancel of an already-executed handle is a no-op
instead of a landmine.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.simtime import TimeStep


class Event:
    """A scheduled callback with optional payload.

    Attributes:
        handler: callable invoked as ``handler(event)`` when the event
            fires.  Usually a bound method of a :class:`Component`.
        time: the :class:`TimeStep` at which the event fires.  Set by the
            simulator when the event is scheduled.
        data: arbitrary component-specific payload.
        cancelled: if set before the event fires, the executer drops it.
        generation: incremented each time the simulator reuses this
            object from its freelist; a handle whose generation changed
            refers to a different logical event.
    """

    __slots__ = (
        "handler",
        "tick",
        "epsilon",
        "data",
        "cancelled",
        "generation",
        "fired",
        "_sim",
    )

    def __init__(self, handler: Callable[["Event"], None], data: Any = None):
        self.handler = handler
        self.tick: Optional[int] = None
        self.epsilon: int = 0
        self.data = data
        self.cancelled = False
        self.generation = 0
        self.fired = False
        self._sim = None

    @property
    def time(self) -> Optional[TimeStep]:
        """The scheduled (tick, epsilon), or None before scheduling."""
        if self.tick is None:
            return None
        return TimeStep(self.tick, self.epsilon)

    def cancel(self) -> None:
        """Mark this event so the executer skips it.

        Cancellation is O(1): the event stays in the queue but its handler
        is not invoked.  This mirrors the common DES lazy-delete idiom.

        Cancelling an event that already fired is a no-op: once the
        handler ran there is nothing left to stop, and the object may
        since have been recycled for an unrelated scheduling (see the
        ``generation`` counter).  The simulator tracks how many pending
        queue entries are cancelled and compacts the heap when the dead
        fraction grows too large.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __repr__(self):
        name = getattr(self.handler, "__qualname__", repr(self.handler))
        return f"Event({name} @ {self.time}, data={self.data!r})"

"""Hierarchical simulation time: ticks and epsilons.

SuperSim represents time as a pair ``(tick, epsilon)`` (paper §III-B,
Fig. 2a).  Ticks are real time -- the user decides what one tick means
(1 ns, 457 ps, one clock period, ...).  Epsilons order operations that
happen "at the same time"; they never represent real time.  Event
priority compares ticks first and uses epsilons only to break ties.

This module provides the :class:`TimeStep` value type plus a couple of
constants.  ``TimeStep`` is an immutable, totally ordered value so it
can be used directly as a priority-queue key.
"""

from __future__ import annotations

import functools
from typing import Union

#: Largest epsilon value allowed within a single tick.  Purely a sanity
#: bound -- designs needing more than a million intra-tick orderings are
#: almost certainly buggy.
MAX_EPSILON = 1_000_000


@functools.total_ordering
class TimeStep:
    """An immutable point in simulated time: ``(tick, epsilon)``.

    ``tick`` is the real-time component, ``epsilon`` the intra-tick
    ordering component.  Comparison is lexicographic: a lower tick always
    wins regardless of epsilon (paper §III-B).

    >>> TimeStep(5, 0) < TimeStep(5, 3) < TimeStep(6, 0)
    True
    """

    __slots__ = ("tick", "epsilon")

    def __init__(self, tick: int, epsilon: int = 0):
        if tick < 0:
            raise ValueError(f"tick must be non-negative, got {tick}")
        if not 0 <= epsilon <= MAX_EPSILON:
            raise ValueError(f"epsilon out of range [0, {MAX_EPSILON}]: {epsilon}")
        object.__setattr__(self, "tick", tick)
        object.__setattr__(self, "epsilon", epsilon)

    def __setattr__(self, name, value):
        raise AttributeError("TimeStep is immutable")

    # -- ordering ---------------------------------------------------------

    def _key(self):
        return (self.tick, self.epsilon)

    def __eq__(self, other):
        if not isinstance(other, TimeStep):
            return NotImplemented
        return self.tick == other.tick and self.epsilon == other.epsilon

    def __lt__(self, other):
        if not isinstance(other, TimeStep):
            return NotImplemented
        if self.tick != other.tick:
            return self.tick < other.tick
        return self.epsilon < other.epsilon

    def __hash__(self):
        return hash((self.tick, self.epsilon))

    # -- arithmetic -------------------------------------------------------

    def plus_ticks(self, ticks: int) -> "TimeStep":
        """Return a new TimeStep ``ticks`` later, with epsilon reset to 0.

        Advancing real time always starts a fresh epsilon sequence: the
        epsilons of one tick are unrelated to those of any other tick.
        """
        if ticks < 0:
            raise ValueError(f"cannot move time backwards by {ticks} ticks")
        return TimeStep(self.tick + ticks, 0)

    def plus_epsilon(self, count: int = 1) -> "TimeStep":
        """Return a new TimeStep ``count`` epsilons later in the same tick."""
        return TimeStep(self.tick, self.epsilon + count)

    def __repr__(self):
        return f"TimeStep({self.tick}, {self.epsilon})"

    def __str__(self):
        return f"{self.tick}e{self.epsilon}"


#: The beginning of simulated time.
ZERO = TimeStep(0, 0)

TimeLike = Union[TimeStep, int]


def as_timestep(value: TimeLike) -> TimeStep:
    """Coerce an ``int`` tick count or a TimeStep into a TimeStep."""
    if isinstance(value, TimeStep):
        return value
    return TimeStep(int(value), 0)

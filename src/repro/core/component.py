"""Component base class.

Everything that exists inside a simulation -- routers, channels,
interfaces, terminals, applications -- is a :class:`Component`.
Components form a naming hierarchy (``network.router_3.input_2``) used
for debug output and component lookup, and every component holds a link
to the global :class:`~repro.core.simulator.Simulator` through which it
schedules events (paper Fig. 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator


class Component:
    """A named node in the simulation hierarchy that can schedule events."""

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional["Component"] = None,
    ):
        if not name:
            raise ValueError("component name must be non-empty")
        if "." in name:
            raise ValueError(f"component name may not contain '.': {name!r}")
        self.simulator = simulator
        self.name = name
        self.parent = parent
        if parent is None:
            self.full_name = name
        else:
            self.full_name = f"{parent.full_name}.{name}"
        simulator.register_component(self)
        self._debug = False

    # -- scheduling helpers ---------------------------------------------------

    def schedule(
        self,
        handler: Callable[[Event], None],
        delay_ticks: int,
        epsilon: int = 0,
        data: Any = None,
    ) -> Event:
        """Schedule ``handler`` to run ``delay_ticks`` from now.

        With ``delay_ticks == 0`` the event runs later in the current tick
        and ``epsilon`` must place it after the current event.
        """
        simulator = self.simulator
        if delay_ticks == 0:
            tick = simulator.tick
            epsilon = max(epsilon, simulator.epsilon + 1)
        else:
            tick = simulator.tick + delay_ticks
        return simulator.call_at(tick, handler, data, epsilon)

    def schedule_at(
        self,
        handler: Callable[[Event], None],
        tick: int,
        epsilon: int = 0,
        data: Any = None,
    ) -> Event:
        """Schedule ``handler`` at an absolute ``(tick, epsilon)``."""
        return self.simulator.call_at(tick, handler, data, epsilon)

    # -- debug ------------------------------------------------------------------

    def set_debug(self, flag: bool) -> None:
        self._debug = flag

    def dbg(self, message: str) -> None:
        """Print a debug line when debugging is enabled for this component."""
        if self._debug:
            print(f"[{self.simulator.now}] {self.full_name}: {message}")

    def __repr__(self):
        return f"{type(self).__name__}({self.full_name!r})"

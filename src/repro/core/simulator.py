"""The discrete event simulation (DES) engine (paper §III-A, Fig. 1).

A simulation is built of :class:`~repro.core.component.Component` objects
which create :class:`~repro.core.event.Event` objects.  Each component
links to the global :class:`Simulator` and pushes its events into the
simulator's priority queue.  The executer sequentially pulls events from
the queue, ordered by ``(tick, epsilon)``, and executes them.  The
simulation is over when the event queue runs empty.

Performance notes (see ``docs/PERFORMANCE.md`` for the full story):

* Time is carried as a single packed integer key through the hot path:
  ``key = (tick << 20) | epsilon``.  One machine comparison orders two
  timestamps, heap entries are 3-tuples, and the causality check is a
  single ``<=``.  Epsilon is therefore bounded at ``2**20 - 1``, far
  above the single-digit epsilons the component conventions use
  (:mod:`repro.net.phases`); every scheduling entry point guards the
  bound and raises :class:`SimulationError` at ``epsilon >= 2**20``
  instead of silently corrupting the key (the adjacent tick would
  absorb the overflowing epsilon).  *Tick overflow bounds:* Python
  integers never wrap, so packed keys are **correct for any tick**.
  They are *fast* while the key fits a machine word: up to
  ``tick < 2**(63 - EPSILON_BITS) = 2**43`` ticks (~2.4 hours of
  simulated time at 1 tick = 1 ns) keys stay single-digit CPython
  ints; beyond that comparisons fall onto the big-int path and merely
  slow down.  See ``tests/core/test_packed_key_bounds.py`` for the
  boundary regression tests.
* ``tick`` and ``epsilon`` are plain attributes (not properties):
  handlers read them millions of times per run.  Treat them as
  read-only.
* Fired :class:`Event` objects are recycled through a freelist instead
  of being reallocated millions of times per run.  Recycling is gated
  on the executer holding the sole reference (checked via the CPython
  reference count), so an event the caller kept a handle to is never
  reused and external handles are never aliased.
* The executer batch-drains runs of events that share one timestamp:
  the clock and the executed-event counter are written once per run of
  equal-time events instead of once per event.
* ``run()`` dispatches to specialized inner loops so the common cases
  (no limits at all, or only ``max_time``) pay no per-event limit
  bookkeeping.
* Lazy-deleted (cancelled) queue entries are counted, and the heap is
  compacted in place when the dead fraction crosses a threshold, so
  cancellation-heavy workloads cannot grow the queue unboundedly.
* ``Simulator`` declares ``__slots__``: attribute access shows up on
  every scheduled event, and slot access is measurably faster than a
  dict lookup.
"""

from __future__ import annotations

import gc as _gc
import heapq
import time as _wallclock
from heapq import heappush as _heappush
from itertools import count as _count
from sys import getrefcount as _getrefcount
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.event import Event
from repro.core.simtime import MAX_EPSILON, TimeStep

TimeLike = Union[TimeStep, int]

#: bits reserved for epsilon inside a packed time key.
EPSILON_BITS = 20
#: exclusive upper bound for epsilon values.
EPSILON_LIMIT = 1 << EPSILON_BITS
_EPS_MASK = EPSILON_LIMIT - 1
#: ticks up to (exclusive) this bound pack into a 63-bit key, keeping
#: heap comparisons on CPython's fast machine-word path.  Larger ticks
#: stay *correct* (Python ints never wrap) but compare slower.
TICK_FAST_LIMIT = 1 << (63 - EPSILON_BITS)


class SimulationError(RuntimeError):
    """Raised for fatal inconsistencies detected during simulation."""


class Simulator:
    """Global event queue, executer, and component registry.

    The queue holds ``(key, seq, event)`` tuples where ``key`` packs
    ``(tick, epsilon)`` into one integer and ``seq`` is a monotonically
    increasing sequence number, making execution order fully
    deterministic for events scheduled at identical times: ties break in
    scheduling order.

    Attributes:
        tick: the tick component of the current simulation time.
            Read-only by convention (plain attribute for speed).
        epsilon: the epsilon component of the current simulation time.
            Read-only by convention (plain attribute for speed).

    Args:
        event_pool_size: maximum number of fired events kept for reuse
            across runs.  ``0`` disables the freelist entirely and
            routes execution through the general (unspecialized) loop --
            the pre-optimization behaviour, mainly useful for
            benchmarking the optimizations themselves.
    """

    __slots__ = (
        "_queue",
        "_seq",
        "tick",
        "epsilon",
        "_now_key",
        "_running",
        "_executed_events",
        "_cancelled_pending",
        "_compactions",
        "_event_pool",
        "_event_pool_size",
        "_components",
        "_observers",
        "_sanitizer",
    )

    #: compaction threshold: compact when at least this many entries are
    #: cancelled AND they make up more than half of the queue.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, event_pool_size: int = 8192):
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq = _count()
        self.tick = 0
        self.epsilon = 0
        self._now_key = 0
        self._running = False
        self._executed_events = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._event_pool: List[Event] = []
        self._event_pool_size = event_pool_size
        self._components: Dict[str, "Component"] = {}
        self._observers: List[Callable[["Simulator"], None]] = []
        # Runtime sanitizer suite (repro.sanitize).  None in normal runs:
        # the only cost of the hook is one attribute test per run() call,
        # never per event.  When set, run() routes through the
        # instrumented executer so the suite sees every event.
        self._sanitizer = None

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> TimeStep:
        """The current simulation time."""
        return TimeStep(self.tick, self.epsilon)

    @property
    def executed_events(self) -> int:
        """Total number of events executed so far.

        Exact between runs and at every ``(tick, epsilon)`` boundary;
        within a batch-drained run of equal-time events the counter is
        updated once for the whole run, not per event.
        """
        return self._executed_events

    @property
    def compactions(self) -> int:
        """Number of times the event queue was compacted (stats)."""
        return self._compactions

    @property
    def recycled_events(self) -> int:
        """Number of Event objects currently parked in the freelist."""
        return len(self._event_pool)

    # -- component registry --------------------------------------------------

    def register_component(self, component: "Component") -> None:
        """Register a component under its full hierarchical name.

        Names must be unique; a duplicate indicates two components were
        constructed with the same parent and name, which is always a bug.
        """
        name = component.full_name
        if name in self._components:
            raise SimulationError(f"duplicate component name: {name!r}")
        self._components[name] = component

    def find_component(self, full_name: str) -> Optional["Component"]:
        """Look up a registered component by full hierarchical name."""
        return self._components.get(full_name)

    @property
    def num_components(self) -> int:
        return len(self._components)

    # -- scheduling -----------------------------------------------------------

    def _bad_time(self, tick: int, epsilon: int) -> SimulationError:
        if epsilon >= EPSILON_LIMIT:
            return SimulationError(
                f"epsilon {epsilon} exceeds the packed-time limit "
                f"({EPSILON_LIMIT - 1}); epsilons are meant to order "
                "phases within a tick, not to carry time"
            )
        if tick < 0 or epsilon < 0:
            return SimulationError(f"bad event time ({tick}, {epsilon})")
        return SimulationError(
            f"event scheduled at ({tick}, {epsilon}), not after the "
            f"current time ({self.tick}, {self.epsilon}); "
            "use a greater tick or epsilon"
        )

    def add_event(self, event: Event, time: TimeLike, epsilon: int = 0) -> Event:
        """Schedule ``event`` at the given absolute time.

        ``time`` may be a :class:`TimeStep` (in which case ``epsilon`` is
        ignored) or an integer tick.  Scheduling at or before the current
        time while running is a fatal error: it would silently corrupt
        causality.  Same-tick scheduling needs a strictly greater epsilon.
        """
        if type(time) is int:
            tick = time
        elif isinstance(time, TimeStep):
            tick, epsilon = time.tick, time.epsilon
        else:
            tick = int(time)
        if tick < 0 or epsilon < 0 or epsilon >= EPSILON_LIMIT:
            raise self._bad_time(tick, epsilon)
        key = (tick << EPSILON_BITS) | epsilon
        if self._running and key <= self._now_key:
            raise self._bad_time(tick, epsilon)
        event.tick = tick
        event.epsilon = epsilon
        event.fired = False
        event._sim = self
        _heappush(self._queue, (key, next(self._seq), event))
        if event.cancelled:
            # Scheduling an already-cancelled event still occupies a
            # queue slot; account for it so pending_events stays honest.
            self._cancelled_pending += 1
        return event

    def call_at(
        self,
        time: TimeLike,
        handler: Callable[[Event], None],
        data: Any = None,
        epsilon: int = 0,
    ) -> Event:
        """Convenience: create and schedule an event in one call.

        This is the hot scheduling path: the event object comes from the
        freelist when one is available (its ``generation`` increments on
        reuse) and a fresh allocation otherwise.
        """
        if type(time) is int:
            tick = time
        elif isinstance(time, TimeStep):
            tick, epsilon = time.tick, time.epsilon
        else:
            tick = int(time)
        # Checks are inlined and packed-key based: one comparison covers
        # the whole causality test.
        if tick < 0 or epsilon < 0 or epsilon >= EPSILON_LIMIT:
            raise self._bad_time(tick, epsilon)
        key = (tick << EPSILON_BITS) | epsilon
        if self._running and key <= self._now_key:
            raise self._bad_time(tick, epsilon)
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.handler = handler
            event.data = data
            event.fired = False
            event.generation += 1
        else:
            event = Event(handler, data)
            event._sim = self
        event.tick = tick
        event.epsilon = epsilon
        _heappush(self._queue, (key, next(self._seq), event))
        return event

    @property
    def queue_size(self) -> int:
        """Raw queue length, *including* lazily-cancelled entries.

        Cancelled events stay in the heap until popped or compacted, so
        this over-reports the true backlog; use :attr:`pending_events`
        for the number of events that will actually execute.
        """
        return len(self._queue)

    @property
    def pending_events(self) -> int:
        """Number of queued events that are not cancelled."""
        return len(self._queue) - self._cancelled_pending

    # -- cancellation accounting / compaction -----------------------------------

    def _note_cancel(self) -> None:
        """Called by Event.cancel(); counts dead entries, compacts the heap.

        Compaction runs when at least ``COMPACT_MIN_CANCELLED`` entries
        are dead and they outnumber the live ones, bounding the memory a
        cancel-heavy workload can waste at ~2x the live queue.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled entries from the queue; returns how many.

        Mutates the heap list in place (the executer holds a reference
        to it across a run), then re-heapifies.  Heap order among the
        survivors is rebuilt from the same (key, seq) entries, so
        execution order is unaffected.
        """
        queue = self._queue
        before = len(queue)
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        dropped = before - len(queue)
        if dropped:
            heapq.heapify(queue)
            self._compactions += 1
        self._cancelled_pending = 0
        return dropped

    # -- execution --------------------------------------------------------------

    def run(
        self,
        max_time: Optional[TimeLike] = None,
        max_events: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> TimeStep:
        """Run the executer until the event queue is empty.

        Optional safety limits stop a runaway simulation:

        * ``max_time``: stop before executing any event past this tick.
        * ``max_events``: stop after executing this many events *in this
          call* (resumed runs get a fresh budget).
        * ``max_seconds``: stop after this much wall-clock time, counted
          from this call.

        Returns the final simulation time.
        """
        if max_time is None:
            limit_tick, limit_epsilon = None, 0
        elif isinstance(max_time, TimeStep):
            limit_tick, limit_epsilon = max_time.tick, max_time.epsilon
        else:
            limit_tick, limit_epsilon = int(max_time), 0
        deadline = (
            _wallclock.monotonic() + max_seconds if max_seconds is not None else None
        )
        self._running = True
        # Pause the cyclic garbage collector for the duration of the run:
        # the hot path churns tuples/lists that never form cycles, and
        # generation-0 scans alone cost several percent of wall time.
        # Reference counting still frees everything promptly.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            if self._sanitizer is not None:
                self._run_sanitized(limit_tick, limit_epsilon, max_events, deadline)
            elif (
                max_events is None
                and deadline is None
                and self._event_pool_size > 0
            ):
                if limit_tick is None:
                    self._run_unbounded()
                else:
                    self._run_time_limited(limit_tick, limit_epsilon)
            else:
                self._run_general(limit_tick, limit_epsilon, max_events, deadline)
        finally:
            self._running = False
            if gc_was_enabled:
                _gc.enable()
        for observer in self._observers:
            observer(self)
        return self.now

    def run_until(self, end_tick: int) -> int:
        """Execute every pending event strictly before tick ``end_tick``.

        The windowed run primitive for conservative PDES
        (:mod:`repro.partition.runtime`): every epsilon of tick
        ``end_tick - 1`` executes (up to the ``MAX_EPSILON`` sanity
        bound), nothing at or past ``end_tick`` does, and the queue
        state is left resumable -- the next ``run_until`` (or ``run``)
        picks up exactly where this one stopped.  Returns the number of
        events executed by this call.
        """
        if end_tick < 1:
            raise SimulationError(
                f"run_until needs a positive window end, got {end_tick}"
            )
        before = self._executed_events
        self.run(max_time=TimeStep(end_tick - 1, MAX_EPSILON))
        return self._executed_events - before

    def inject(
        self,
        tick: int,
        handler: Callable[["Event"], None],
        data: Any = None,
        epsilon: int = 0,
    ) -> Event:
        """Schedule an event from *outside* the event loop.

        External injection surface for cross-shard traffic: a PDES
        ingress proxy materializes records between windows and lands
        them here.  Unlike ``call_at`` (whose causality check only
        guards the running loop), this refuses to schedule at or before
        the last executed timestamp even while the simulator is paused
        -- a record due inside an already-executed window is a lookahead
        violation, not a scheduling convenience.
        """
        if self._running:
            raise SimulationError(
                "inject() is for paused simulators; use call_at/schedule "
                "from inside event handlers"
            )
        if tick < 0 or epsilon < 0 or epsilon >= EPSILON_LIMIT:
            raise self._bad_time(tick, epsilon)
        key = (tick << EPSILON_BITS) | epsilon
        if self._executed_events and key <= self._now_key:
            raise SimulationError(
                f"inject at ({tick}, {epsilon}) is causally illegal: "
                f"events through ({self.tick}, {self.epsilon}) already "
                "executed"
            )
        return self.call_at(tick, handler, data, epsilon)

    def _run_unbounded(self) -> None:
        """Drain the queue with no limit checks (the common case).

        The loop terminates through ``heappop`` raising ``IndexError``
        on the empty queue, which saves an emptiness test per event; an
        ``IndexError`` escaping a *handler* is told apart by its
        traceback (the handler adds a frame) and re-raised.
        """
        queue = self._queue
        pop = heapq.heappop
        pool = self._event_pool
        refs = _getrefcount
        executed = self._executed_events
        key = -1
        try:
            while True:
                entry_key, _seq, event = pop(queue)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    if refs(event) == 2:
                        event.cancelled = False
                        pool.append(event)
                    continue
                if entry_key != key:
                    # New (tick, epsilon) batch: write the clock and the
                    # event counter once for the whole run of equal-time
                    # events.  Causality forbids scheduling *into* the
                    # current timestamp, so a batch only shrinks.
                    key = entry_key
                    self.tick = key >> EPSILON_BITS
                    self.epsilon = key & _EPS_MASK
                    self._now_key = key
                    self._executed_events = executed
                event.fired = True
                event.handler(event)
                executed += 1
                if refs(event) == 2:
                    pool.append(event)
        except IndexError:
            if queue or _raised_from_handler():
                raise
        finally:
            self._executed_events = executed
            del pool[self._event_pool_size :]

    def _run_time_limited(self, limit_tick: int, limit_epsilon: int) -> None:
        """Drain up to (limit_tick, limit_epsilon); no event/clock limits.

        One packed-key comparison per event implements the whole limit
        test.
        """
        queue = self._queue
        pop = heapq.heappop
        pool = self._event_pool
        refs = _getrefcount
        executed = self._executed_events
        limit_key = (limit_tick << EPSILON_BITS) | limit_epsilon
        key = -1
        try:
            while True:
                entry_key, _seq, event = pop(queue)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    if refs(event) == 2:
                        event.cancelled = False
                        pool.append(event)
                    continue
                if entry_key > limit_key:
                    # Put it back; the caller may resume later.
                    heapq.heappush(queue, (entry_key, _seq, event))
                    break
                if entry_key != key:
                    key = entry_key
                    self.tick = key >> EPSILON_BITS
                    self.epsilon = key & _EPS_MASK
                    self._now_key = key
                    self._executed_events = executed
                event.fired = True
                event.handler(event)
                executed += 1
                if refs(event) == 2:
                    pool.append(event)
        except IndexError:
            if queue or _raised_from_handler():
                raise
        finally:
            self._executed_events = executed
            del pool[self._event_pool_size :]

    def _run_general(
        self,
        limit_tick: Optional[int],
        limit_epsilon: int,
        max_events: Optional[int],
        deadline: Optional[float],
    ) -> None:
        """Full-featured loop: any combination of time/event/clock limits.

        Both the ``max_events`` budget and the wall-clock check cadence
        are based on the number of events executed *in this call*, so a
        resumed run gets a fresh budget and checks the clock on a steady
        1024-event cadence regardless of history.
        """
        queue = self._queue
        pop = heapq.heappop
        pool = self._event_pool
        pool_max = self._event_pool_size
        refs = _getrefcount
        executed_this_run = 0
        check_mask = 0x3FF  # test wall clock every 1024 events
        limit_key = (
            None
            if limit_tick is None
            else (limit_tick << EPSILON_BITS) | limit_epsilon
        )
        while queue:
            entry_key, _seq, event = pop(queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                if refs(event) == 2 and len(pool) < pool_max:
                    event.cancelled = False
                    pool.append(event)
                continue
            if limit_key is not None and entry_key > limit_key:
                # Put it back; the caller may resume later.
                heapq.heappush(queue, (entry_key, _seq, event))
                break
            self.tick = entry_key >> EPSILON_BITS
            self.epsilon = entry_key & _EPS_MASK
            self._now_key = entry_key
            event.fired = True
            event.handler(event)
            self._executed_events += 1
            executed_this_run += 1
            if refs(event) == 2 and len(pool) < pool_max:
                pool.append(event)
            if max_events is not None and executed_this_run >= max_events:
                break
            if (
                deadline is not None
                and (executed_this_run & check_mask) == 0
                and _wallclock.monotonic() > deadline
            ):
                break

    def _run_sanitized(
        self,
        limit_tick: Optional[int],
        limit_epsilon: int,
        max_events: Optional[int],
        deadline: Optional[float],
    ) -> None:
        """The instrumented executer used when a sanitizer suite is
        attached (see :mod:`repro.sanitize`).

        Semantically identical to :meth:`_run_general` -- same limits,
        same recycling discipline, same execution order -- but invokes
        the suite's hooks: ``pre_event_hooks`` right before each handler
        runs (with the clock already advanced) and ``recycle_hooks``
        right before an event object is parked in the freelist (so
        :class:`~repro.sanitize.EventSan` can poison it).  The ordinary
        loops never pay for any of this: ``run()`` only dispatches here
        while ``_sanitizer`` is set.
        """
        suite = self._sanitizer
        pre_hooks = tuple(suite.pre_event_hooks)
        recycle_hooks = tuple(suite.recycle_hooks)
        queue = self._queue
        pop = heapq.heappop
        pool = self._event_pool
        pool_max = self._event_pool_size
        refs = _getrefcount
        executed_this_run = 0
        check_mask = 0x3FF  # test wall clock every 1024 events
        limit_key = (
            None
            if limit_tick is None
            else (limit_tick << EPSILON_BITS) | limit_epsilon
        )
        while queue:
            entry_key, _seq, event = pop(queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                if refs(event) == 2 and len(pool) < pool_max:
                    event.cancelled = False
                    for hook in recycle_hooks:
                        hook(event)
                    pool.append(event)
                continue
            if limit_key is not None and entry_key > limit_key:
                # Put it back; the caller may resume later.
                heapq.heappush(queue, (entry_key, _seq, event))
                break
            self.tick = entry_key >> EPSILON_BITS
            self.epsilon = entry_key & _EPS_MASK
            self._now_key = entry_key
            for hook in pre_hooks:
                hook(entry_key, event)
            event.fired = True
            event.handler(event)
            self._executed_events += 1
            executed_this_run += 1
            if refs(event) == 2 and len(pool) < pool_max:
                for hook in recycle_hooks:
                    hook(event)
                pool.append(event)
            if max_events is not None and executed_this_run >= max_events:
                break
            if (
                deadline is not None
                and (executed_this_run & check_mask) == 0
                and _wallclock.monotonic() > deadline
            ):
                break

    def add_run_observer(self, observer: Callable[["Simulator"], None]) -> None:
        """Register a callable invoked after each :meth:`run` completes."""
        self._observers.append(observer)

    def __repr__(self):
        return (
            f"Simulator(now={self.now}, queued={len(self._queue)}, "
            f"executed={self._executed_events})"
        )


def _raised_from_handler() -> bool:
    """Was the in-flight IndexError raised inside a handler frame?

    ``heappop`` is a C function: an IndexError it raises on an empty
    queue carries only the executer's own frame.  An IndexError from a
    handler carries at least one more Python frame below the executer.
    """
    import sys

    exc = sys.exc_info()[1]
    tb = exc.__traceback__
    return tb is not None and tb.tb_next is not None


# Imported at the bottom to avoid a cycle: Component type is only needed
# for annotations above.
from repro.core.component import Component  # noqa: E402  (cycle guard)

"""The discrete event simulation (DES) engine (paper §III-A, Fig. 1).

A simulation is built of :class:`~repro.core.component.Component` objects
which create :class:`~repro.core.event.Event` objects.  Each component
links to the global :class:`Simulator` and pushes its events into the
simulator's priority queue.  The executer sequentially pulls events from
the queue, ordered by ``(tick, epsilon)``, and executes them.  The
simulation is over when the event queue runs empty.

Performance note: time is carried as two plain ints through the hot
path (scheduling + executing millions of events per simulated
millisecond); the :class:`~repro.core.simtime.TimeStep` value type is
only materialized at API boundaries (``now``, ``Event.time``).
"""

from __future__ import annotations

import heapq
import time as _wallclock
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.event import Event
from repro.core.simtime import TimeStep

TimeLike = Union[TimeStep, int]


class SimulationError(RuntimeError):
    """Raised for fatal inconsistencies detected during simulation."""


class Simulator:
    """Global event queue, executer, and component registry.

    The queue holds ``(tick, epsilon, seq, event)`` tuples.  ``seq`` is a
    monotonically increasing sequence number, making execution order fully
    deterministic for events scheduled at identical times: ties break in
    scheduling order.
    """

    def __init__(self):
        self._queue: List[Tuple[int, int, int, Event]] = []
        self._seq = 0
        self._now_tick = 0
        self._now_epsilon = 0
        self._running = False
        self._executed_events = 0
        self._components: Dict[str, "Component"] = {}
        self._observers: List[Callable[["Simulator"], None]] = []

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> TimeStep:
        """The current simulation time."""
        return TimeStep(self._now_tick, self._now_epsilon)

    @property
    def tick(self) -> int:
        """The tick component of the current simulation time."""
        return self._now_tick

    @property
    def epsilon(self) -> int:
        """The epsilon component of the current simulation time."""
        return self._now_epsilon

    @property
    def executed_events(self) -> int:
        """Total number of events executed so far."""
        return self._executed_events

    # -- component registry --------------------------------------------------

    def register_component(self, component: "Component") -> None:
        """Register a component under its full hierarchical name.

        Names must be unique; a duplicate indicates two components were
        constructed with the same parent and name, which is always a bug.
        """
        name = component.full_name
        if name in self._components:
            raise SimulationError(f"duplicate component name: {name!r}")
        self._components[name] = component

    def find_component(self, full_name: str) -> Optional["Component"]:
        """Look up a registered component by full hierarchical name."""
        return self._components.get(full_name)

    @property
    def num_components(self) -> int:
        return len(self._components)

    # -- scheduling -----------------------------------------------------------

    def add_event(self, event: Event, time: TimeLike, epsilon: int = 0) -> Event:
        """Schedule ``event`` at the given absolute time.

        ``time`` may be a :class:`TimeStep` (in which case ``epsilon`` is
        ignored) or an integer tick.  Scheduling at or before the current
        time while running is a fatal error: it would silently corrupt
        causality.  Same-tick scheduling needs a strictly greater epsilon.
        """
        if type(time) is int:
            tick = time
        elif isinstance(time, TimeStep):
            tick, epsilon = time.tick, time.epsilon
        else:
            tick = int(time)
        if tick < 0 or epsilon < 0:
            raise SimulationError(f"bad event time ({tick}, {epsilon})")
        if self._running and (
            tick < self._now_tick
            or (tick == self._now_tick and epsilon <= self._now_epsilon)
        ):
            raise SimulationError(
                f"event scheduled at ({tick}, {epsilon}), not after the "
                f"current time ({self._now_tick}, {self._now_epsilon}); "
                "use a greater tick or epsilon"
            )
        event.tick = tick
        event.epsilon = epsilon
        heapq.heappush(self._queue, (tick, epsilon, self._seq, event))
        self._seq += 1
        return event

    def call_at(
        self,
        time: TimeLike,
        handler: Callable[[Event], None],
        data: Any = None,
        epsilon: int = 0,
    ) -> Event:
        """Convenience: create and schedule an event in one call."""
        return self.add_event(Event(handler, data), time, epsilon)

    @property
    def queue_size(self) -> int:
        """Number of events pending in the queue (including cancelled)."""
        return len(self._queue)

    # -- execution --------------------------------------------------------------

    def run(
        self,
        max_time: Optional[TimeLike] = None,
        max_events: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> TimeStep:
        """Run the executer until the event queue is empty.

        Optional safety limits stop a runaway simulation:

        * ``max_time``: stop before executing any event past this tick.
        * ``max_events``: stop after executing this many events.
        * ``max_seconds``: stop after this much wall-clock time.

        Returns the final simulation time.
        """
        if max_time is None:
            limit_tick, limit_epsilon = None, 0
        elif isinstance(max_time, TimeStep):
            limit_tick, limit_epsilon = max_time.tick, max_time.epsilon
        else:
            limit_tick, limit_epsilon = int(max_time), 0
        deadline = (
            _wallclock.monotonic() + max_seconds if max_seconds is not None else None
        )
        executed_at_entry = self._executed_events
        check_mask = 0x3FF  # test wall clock every 1024 events
        queue = self._queue
        pop = heapq.heappop
        self._running = True
        try:
            while queue:
                tick, epsilon, _seq, event = pop(queue)
                if event.cancelled:
                    continue
                if limit_tick is not None and (
                    tick > limit_tick
                    or (tick == limit_tick and epsilon > limit_epsilon)
                ):
                    # Put it back; the caller may resume later.
                    heapq.heappush(queue, (tick, epsilon, _seq, event))
                    break
                self._now_tick = tick
                self._now_epsilon = epsilon
                event.handler(event)
                self._executed_events += 1
                if max_events is not None and (
                    self._executed_events - executed_at_entry >= max_events
                ):
                    break
                if (
                    deadline is not None
                    and (self._executed_events & check_mask) == 0
                    and _wallclock.monotonic() > deadline
                ):
                    break
        finally:
            self._running = False
        for observer in self._observers:
            observer(self)
        return self.now

    def add_run_observer(self, observer: Callable[["Simulator"], None]) -> None:
        """Register a callable invoked after each :meth:`run` completes."""
        self._observers.append(observer)

    def __repr__(self):
        return (
            f"Simulator(now={self.now}, queued={len(self._queue)}, "
            f"executed={self._executed_events})"
        )


# Imported at the bottom to avoid a cycle: Component type is only needed
# for annotations above.
from repro.core.component import Component  # noqa: E402  (cycle guard)

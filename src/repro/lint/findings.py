"""Lint findings: severities, a single finding, and the report.

Every check in :mod:`repro.lint` reports its results as
:class:`Finding` objects carrying a stable rule id (``C00x`` config
layer, ``G00x`` graph layer, ``D00x`` determinism layer), a severity,
a human-readable message, and a location -- either a dotted config path
or a ``file:line`` source location.  :class:`LintReport` aggregates
findings and renders them as text or machine-readable JSON (the CI
format).
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings mean the experiment is broken (it will crash, hang,
    or silently compute the wrong thing); WARNING findings are likely
    mistakes; INFO findings are observations worth knowing (e.g. a
    topology with intentionally unused ports).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


class Finding:
    """One diagnostic produced by a lint rule."""

    __slots__ = ("rule_id", "severity", "message", "config_path", "location",
                 "suggestion")

    def __init__(
        self,
        rule_id: str,
        severity: Severity,
        message: str,
        config_path: Optional[str] = None,
        location: Optional[str] = None,
        suggestion: Optional[str] = None,
    ):
        self.rule_id = rule_id
        self.severity = severity
        self.message = message
        self.config_path = config_path
        self.location = location
        self.suggestion = suggestion

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.config_path is not None:
            data["config_path"] = self.config_path
        if self.location is not None:
            data["location"] = self.location
        if self.suggestion is not None:
            data["suggestion"] = self.suggestion
        return data

    def render(self) -> str:
        where = self.location or self.config_path
        prefix = f"{where}: " if where else ""
        tail = f" ({self.suggestion})" if self.suggestion else ""
        return (
            f"{self.severity.value}[{self.rule_id}] {prefix}{self.message}{tail}"
        )

    def __repr__(self):
        return f"Finding({self.rule_id}, {self.severity.value}, {self.message!r})"


class LintReport:
    """An ordered collection of findings with render/export helpers."""

    def __init__(self, subject: Optional[str] = None):
        self.subject = subject
        self.findings: List[Finding] = []

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def sorted_findings(self) -> List[Finding]:
        """Findings ordered worst-first, stable within a severity."""
        return sorted(
            self.findings,
            key=lambda f: (f.severity.rank, f.rule_id),
        )

    def counts(self) -> Dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    def to_json(self, indent: int = 2) -> str:
        payload: Dict[str, Any] = {
            "subject": self.subject,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def render_text(self) -> str:
        lines: List[str] = []
        if self.subject:
            lines.append(f"== {self.subject} ==")
        for finding in self.sorted_findings():
            lines.append(finding.render())
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        return "\n".join(lines)

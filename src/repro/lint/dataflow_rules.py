"""Dataflow-layer lint (E001..E006): model-contract checks over source.

The runtime sanitizers (:mod:`repro.sanitize`) catch contract
violations *while they corrupt a run*; the E-rules catch the same
hazard patterns in model source before anything runs.  They are pure
AST checks -- the scanned code is never imported or executed -- and
deliberately heuristic: names like ``schedule``/``call_at`` and
``_credits`` are matched structurally, trading a small false-positive
surface (warnings, not errors, wherever the pattern has legitimate
uses) for zero-setup coverage of user model code.

The contracts, and who enforces them at runtime:

* **Event handles** (E001/E002, warning) -- an :class:`Event` returned
  by a scheduling call is only meaningful until it fires; afterwards
  the object may be recycled for an unrelated event (its ``generation``
  changes).  Storing the handle on ``self`` or in a container is the
  use-after-reuse setup EventSan flags at runtime.  Legitimate
  retain-to-cancel code must clear the handle inside the handler (see
  ``repro/workload/application.py``).
* **Epsilon discipline** (E003 warning, E004 error) -- scheduling at
  the current tick requires a strictly increasing epsilon, and epsilon
  must stay below 2**20 (it packs into the heap key;
  ``core/simulator.py``).  E003 flags ``*.tick``-based same-tick
  scheduling with a default/zero epsilon; E004 flags constants outside
  the packed range, which raise :class:`SimulationError` at runtime.
* **Credit API** (E005, error) -- credit counts may only move through
  ``CreditTracker.take``/``give``; poking ``_credits``/``_capacity``
  from outside the tracker is exactly the silent accounting gap
  CreditSan exists to catch.
* **Event engine fields** (E006, error) -- ``fired``, ``cancelled``,
  and ``generation`` belong to the engine; models writing them corrupt
  the freelist lifecycle EventSan polices.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro import factory
from repro.lint.findings import Finding, Severity
from repro.lint.rules import DATAFLOW_LAYER, LintContext, LintRule

#: methods whose return value is a live Event handle.
SCHED_METHODS = {"call_at", "schedule", "schedule_at", "add_event"}
#: positional index of the absolute-time argument (``schedule`` takes a
#: relative delay and auto-bumps epsilon at delay 0, so it is exempt
#: from the same-tick check).
_TIME_ARG_POS = {"call_at": 0, "schedule_at": 1, "add_event": 1}
_TIME_ARG_KEYWORDS = {"time", "tick"}
#: positional index of the epsilon argument per scheduling method.
_EPSILON_ARG_POS = {"call_at": 3, "schedule": 1, "schedule_at": 2,
                    "add_event": 2}

_EPSILON_LIMIT = 1 << 20  # mirrors core/simulator.py EPSILON_BITS

#: CreditTracker internals (E005) and Event engine fields (E006).
_CREDIT_INTERNALS = {"_credits", "_capacity"}
_EVENT_ENGINE_FIELDS = {"fired", "cancelled", "generation"}


def _sched_method(node: ast.expr) -> Optional[str]:
    """The scheduling-method name when ``node`` is ``<expr>.sched(...)``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in SCHED_METHODS:
            return node.func.attr
    return None


def _argument(call: ast.Call, position: int, keywords: set) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg in keywords:
            return keyword.value
    if position < len(call.args):
        return call.args[position]
    return None


def _const_int(node: Optional[ast.expr]) -> Optional[int]:
    """Fold the tiny constant-expression grammar epsilons are written in:
    plain ints, unary +/-, and the arithmetic/shift operators (so
    ``epsilon=1 << 20`` and ``epsilon=-1`` are still seen as constants).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return node.value
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        value = _const_int(node.operand)
        if value is None:
            return None
        return -value if isinstance(node.op, ast.USub) else value
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left)
        right = _const_int(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.Pow):
                return left**right
        except (OverflowError, ValueError):
            return None
    return None


def _unparse(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is best-effort context
        return "<expr>"


class DataflowScan:
    """One parsed source file plus its categorized dataflow hazards."""

    def __init__(self, path: str):
        self.path = path
        self.parse_error: Optional[str] = None
        #: (line, target, method) sched result assigned to a self attribute.
        self.handle_on_self: List[Tuple[int, str, str]] = []
        #: (line, description) sched result pushed into a container.
        self.handle_in_container: List[Tuple[int, str]] = []
        #: (line, method, time expression) same-tick scheduling with
        #: default/zero epsilon.
        self.same_tick_zero_eps: List[Tuple[int, str, str]] = []
        #: (line, method, epsilon value) epsilon outside [0, 2**20).
        self.bad_epsilon: List[Tuple[int, str, int]] = []
        #: (line, target) writes to CreditTracker internals.
        self.credit_mutations: List[Tuple[int, str]] = []
        #: (line, target) writes to Event engine-owned fields.
        self.event_field_writes: List[Tuple[int, str]] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            self.parse_error = str(exc)
            return
        self._scan(tree)

    # -- scanning ------------------------------------------------------------

    def _scan(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                self._scan_assign(node.targets, node.value, node.lineno)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
                value = node.value
                self._scan_assign(targets, value, node.lineno)
            elif isinstance(node, ast.Call):
                self._scan_call(node)

    def _scan_assign(
        self,
        targets: List[ast.expr],
        value: Optional[ast.expr],
        line: int,
    ) -> None:
        method = _sched_method(value) if value is not None else None
        for target in targets:
            if method is not None:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.handle_on_self.append(
                        (line, _unparse(target), method)
                    )
                elif isinstance(target, ast.Subscript):
                    self.handle_in_container.append(
                        (line, f"{method}() result stored into "
                               f"{_unparse(target)}")
                    )
            self._scan_protected_write(target, line)

    def _scan_protected_write(self, target: ast.expr, line: int) -> None:
        """E005/E006: the written location reaches a protected field."""
        # `tracker._credits[vc] = x` writes through a Subscript whose
        # value is the protected Attribute; unwrap to find it.
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return
        base_is_self = (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        )
        if base_is_self:
            # The owning class maintaining its own fields is the API.
            return
        if node.attr in _CREDIT_INTERNALS:
            self.credit_mutations.append((line, _unparse(target)))
        elif node.attr in _EVENT_ENGINE_FIELDS:
            self.event_field_writes.append((line, _unparse(target)))

    def _scan_call(self, call: ast.Call) -> None:
        # Containers: list.append(self.schedule(...)) and friends.
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "append",
            "appendleft",
            "add",
            "insert",
        ):
            for arg in call.args:
                method = _sched_method(arg)
                if method is not None:
                    self.handle_in_container.append(
                        (call.lineno,
                         f"{method}() result passed to "
                         f"{_unparse(call.func)}()")
                    )
        method = _sched_method(call)
        if method is None:
            return
        epsilon = _argument(
            call, _EPSILON_ARG_POS[method], {"epsilon"}
        )
        epsilon_value = _const_int(epsilon)
        if epsilon_value is not None and not (
            0 <= epsilon_value < _EPSILON_LIMIT
        ):
            self.bad_epsilon.append((call.lineno, method, epsilon_value))
        if method in _TIME_ARG_POS:
            time_arg = _argument(
                call, _TIME_ARG_POS[method], _TIME_ARG_KEYWORDS
            )
            if (
                isinstance(time_arg, ast.Attribute)
                and time_arg.attr == "tick"
                and (epsilon is None or epsilon_value == 0)
            ):
                self.same_tick_zero_eps.append(
                    (call.lineno, method, _unparse(time_arg))
                )


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class _DataflowRule(LintRule):
    layer = DATAFLOW_LAYER

    def _clean_scans(self, ctx: LintContext):
        return [
            scan for scan in ctx.dataflow_scans() if scan.parse_error is None
        ]


@factory.register(LintRule, "E001")
class HandleOnSelfRule(_DataflowRule):
    rule_id = "E001"
    description = ("Event handle stored on `self`: stale after the event "
                   "fires (the object is recycled); clear it in the handler "
                   "or don't retain it")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        findings = []
        for scan in ctx.dataflow_scans():
            if scan.parse_error is not None:
                findings.append(
                    Finding(
                        "E001",
                        Severity.WARNING,
                        f"could not parse source file (skipped): "
                        f"{scan.parse_error}",
                        location=scan.path,
                    )
                )
                continue
            for line, target, method in scan.handle_on_self:
                findings.append(
                    Finding(
                        "E001",
                        Severity.WARNING,
                        f"{method}() handle stored on `{target}`; after the "
                        f"event fires the object may be recycled for an "
                        f"unrelated event (generation changes), so the "
                        f"handle must be cleared inside the handler before "
                        f"any later cancel()",
                        location=f"{scan.path}:{line}",
                    )
                )
        return findings


@factory.register(LintRule, "E002")
class HandleInContainerRule(_DataflowRule):
    rule_id = "E002"
    description = ("Event handle stored in a container: entries outlive "
                   "their firing and alias recycled events")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "E002",
                Severity.WARNING,
                f"{description}; container entries are not cleared when the "
                f"event fires, so they go stale and may alias a recycled "
                f"event object",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, description in scan.handle_in_container
        ]


@factory.register(LintRule, "E003")
class SameTickEpsilonRule(_DataflowRule):
    rule_id = "E003"
    description = ("Same-tick scheduling with default/zero epsilon raises "
                   "at runtime; pass a phase epsilon or use "
                   "Component.schedule(delay=0, ...)")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "E003",
                Severity.WARNING,
                f"{method}({time_expr}, ...) schedules at the current tick "
                f"without increasing epsilon; inside a handler this raises "
                f"SimulationError (causality), so pass an explicit phase "
                f"epsilon (repro.net.phases) or Component.schedule() with "
                f"delay 0, which auto-bumps epsilon",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, method, time_expr in scan.same_tick_zero_eps
        ]


@factory.register(LintRule, "E004")
class EpsilonRangeRule(_DataflowRule):
    rule_id = "E004"
    description = ("Epsilon outside [0, 2**20): overflows the packed heap "
                   "key bound enforced by the simulator")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "E004",
                Severity.ERROR,
                f"{method}(..., epsilon={value}) is outside the packed-key "
                f"range [0, 2**20); the simulator raises SimulationError on "
                f"this at runtime (epsilons order phases within a tick, "
                f"they do not carry time)",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, method, value in scan.bad_epsilon
        ]


@factory.register(LintRule, "E005")
class CreditInternalsRule(_DataflowRule):
    rule_id = "E005"
    description = ("Credit counts mutated outside the repro.net.credit API; "
                   "use CreditTracker.take()/give()")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "E005",
                Severity.ERROR,
                f"write to `{target}` bypasses CreditTracker.take()/give(); "
                f"direct mutation of credit internals skips the "
                f"underflow/overflow checks and silently breaks per-link "
                f"credit conservation (the CreditSan invariant)",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, target in scan.credit_mutations
        ]


@factory.register(LintRule, "E006")
class EventEngineFieldsRule(_DataflowRule):
    rule_id = "E006"
    description = ("Event engine-owned field (fired/cancelled/generation) "
                   "written by model code; use Event.cancel() and fresh "
                   "schedules")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "E006",
                Severity.ERROR,
                f"write to `{target}` corrupts the event lifecycle the "
                f"engine's freelist depends on; cancel with Event.cancel() "
                f"and schedule a new event instead of resurrecting this one",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, target in scan.event_field_writes
        ]

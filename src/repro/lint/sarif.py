"""SARIF 2.1.0 export and fingerprint baselines for lint reports.

Two CI-oriented facilities on top of :class:`~repro.lint.LintReport`:

* :func:`to_sarif` converts reports into one SARIF run consumable by
  code-review tooling (GitHub code scanning, VS Code SARIF viewers).
* Fingerprint baselines let a gate fail only on *new* findings: each
  finding gets a stable content fingerprint (:func:`fingerprint`) that
  survives unrelated line-number drift; ``sslint --write-baseline``
  records the current set and ``sslint --baseline`` suppresses every
  finding already recorded, so a legacy codebase can adopt a new rule
  without first fixing (or annotating) every historical hit.

The fingerprint deliberately drops the line number from source
locations: inserting a docstring above an offending call must not make
the finding "new".  It keeps the message, which for config rules
carries the offending value -- changing a value to a different broken
value is a new finding, which is the desired behavior.

Findings from the graph and partition layers that carry no source
location are fingerprinted differently (v2): their material is just
``rule_id|subject|config_path``, dropping the message.  Those messages
quote quantities derived from the whole constructed network or manifest
(cut counts, shard weights, lookahead values) that legitimately drift
as the planner or topology parameters evolve; a baseline should pin
"this config has a P003 at partition.lookahead", not the exact numbers
of one planner version.

Shard-layer (S-rule) and perf-layer (H-rule) findings always
fingerprint as ``rule_id|subject|config_path`` -- even though they
carry a source location -- because their ``config_path`` holds the
evidence chain (``Class:entry->...->method`` plus, for H-rules, a
per-hazard token).  That triple is the identity of the hazard;
messages, heat weights, measured-time ranks, and line numbers evolve
with the analyzer, and a baseline must survive that evolution.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional

from repro.lint.findings import Finding, LintReport, Severity
from repro.lint.rules import rule_catalog

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)
FINGERPRINT_KEY = "sslintFingerprint/v2"
BASELINE_VERSION = 1

#: Layers whose location-less findings fingerprint without the message
#: (their messages quote network-derived quantities that drift).
_CONTENT_FREE_LAYERS = {"graph", "partition"}

#: SARIF result levels for our severities (INFO maps to "note").
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _split_location(location: Optional[str]):
    """Split ``file.py:12`` into (uri, line); line is None otherwise."""
    if not location:
        return None, None
    uri, _, tail = location.rpartition(":")
    if uri and tail.isdigit():
        return uri, int(tail)
    return location, None


_layer_cache: dict = {}


def _rule_layer(rule_id: str) -> str:
    """The layer of ``rule_id`` (memoized; '' for unknown rules)."""
    if not _layer_cache:
        for known, info in rule_catalog().items():
            _layer_cache[known] = info["layer"]
    return _layer_cache.get(rule_id, "")


def fingerprint(finding: Finding, subject: Optional[str] = None) -> str:
    """A stable content hash of a finding, insensitive to line drift.

    Location-less graph/partition findings hash without the message so
    the fingerprint survives planner/topology evolution; shard- and
    perf-layer findings hash rule|subject|evidence-chain regardless of
    location (see module docstring).
    """
    layer = _rule_layer(finding.rule_id)
    uri, _line = _split_location(finding.location)
    if layer in ("shard", "perf") or (
            uri is None and layer in _CONTENT_FREE_LAYERS):
        material = "|".join([
            finding.rule_id,
            subject or "",
            finding.config_path or "",
        ])
    else:
        material = "|".join([
            finding.rule_id,
            subject or "",
            finding.config_path or "",
            uri or "",
            finding.message,
        ])
    return hashlib.sha1(material.encode("utf-8")).hexdigest()


def to_sarif(reports: Iterable[LintReport]) -> Dict[str, Any]:
    """Render lint reports as a single-run SARIF 2.1.0 log."""
    catalog = rule_catalog()
    results: List[Dict[str, Any]] = []
    used_rules: List[str] = []
    for report in reports:
        for finding in report.sorted_findings():
            if finding.rule_id not in used_rules:
                used_rules.append(finding.rule_id)
            result: Dict[str, Any] = {
                "ruleId": finding.rule_id,
                "level": _LEVELS[finding.severity],
                "message": {"text": finding.message},
                "partialFingerprints": {
                    FINGERPRINT_KEY: fingerprint(finding, report.subject),
                },
            }
            uri, line = _split_location(finding.location)
            if uri is not None:
                physical: Dict[str, Any] = {
                    "artifactLocation": {"uri": uri},
                }
                if line is not None:
                    physical["region"] = {"startLine": line}
                result["locations"] = [{"physicalLocation": physical}]
            elif finding.config_path is not None:
                result["locations"] = [{
                    "logicalLocations": [{
                        "fullyQualifiedName": finding.config_path,
                        "kind": "member",
                    }],
                }]
            properties: Dict[str, Any] = {}
            if report.subject:
                properties["subject"] = report.subject
            if finding.suggestion:
                properties["suggestion"] = finding.suggestion
            if properties:
                result["properties"] = properties
            results.append(result)
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": catalog[rule_id]["description"],
            },
            "properties": {"layer": catalog[rule_id]["layer"]},
        }
        for rule_id in sorted(used_rules)
        if rule_id in catalog
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "sslint",
                    "informationUri": "docs/LINTING.md",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def write_baseline(path: str, reports: Iterable[LintReport]) -> int:
    """Record every current finding's fingerprint; returns the count."""
    prints = sorted({
        fingerprint(finding, report.subject)
        for report in reports
        for finding in report.findings
    })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"version": BASELINE_VERSION, "fingerprints": prints},
            handle,
            indent=2,
        )
        handle.write("\n")
    return len(prints)


def load_baseline(path: str) -> frozenset:
    """Load a baseline file written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(
            f"{path} is not an sslint baseline (expected a JSON object "
            "with a 'fingerprints' list)"
        )
    return frozenset(data["fingerprints"])


def apply_baseline(
    reports: Iterable[LintReport], baseline: frozenset
) -> List[LintReport]:
    """Drop findings whose fingerprint appears in the baseline.

    Returns new reports (the inputs are untouched) carrying only the
    findings a CI gate should still care about.
    """
    filtered: List[LintReport] = []
    for report in reports:
        kept = LintReport(subject=report.subject)
        kept.extend(
            finding
            for finding in report.findings
            if fingerprint(finding, report.subject) not in baseline
        )
        filtered.append(kept)
    return filtered

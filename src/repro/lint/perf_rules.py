"""Hot-path performance lint: interprocedural H-rules over model classes.

ROADMAP item 1's residual cost is *diffuse*: per-grant model semantics
spread across many small methods, each individually too cheap to show
up in a code review but collectively the gap between the bare engine
(~1.4M events/s) and the full simulator (docs/PERFORMANCE.md "Model
layer").  A profiler samples that cost; this layer *predicts* it from
source, so every model -- including user-registered ones -- gets an
automatic hot-path audit instead of a manual profiling session.

The analysis reuses the interprocedural call-graph engine built for
shard purity (:mod:`repro.lint.callgraph`): starting from the known
per-event entry points (router ``_step``/``receive_flit``, channel
delivery, interface injection, congestion-sensor records), a *heat*
weight scaled by the measured ~4-events-per-flit-hop census propagates
through each class's call graph (:func:`~repro.lint.callgraph
.propagate_heat`).  Hazards are flagged **only on provably hot
methods**, each with a ``Class.entry -> helper -> method`` evidence
chain:

* **H001** container allocation that escapes the call (list/dict/set/
  tuple displays, comprehensions, constructor calls stored on ``self``,
  returned, or passed onward) -- one garbage object per event.
* **H002** closure or lambda defined per call -- a fresh function
  object (and cell vars) per event.
* **H003** the same attribute chain loaded repeatedly inside a loop
  body -- bind it to a local before the loop (the classic CPython
  dict-lookup tax; see the IQ ``_step`` drain for the fixed idiom).
* **H004** unguarded string formatting (f-string, ``%``, ``.format``,
  ``print``/logging) on the hot path -- formatting runs even when
  nobody reads the result.  Formatting inside ``raise``/``assert`` or
  under a conditional is exempt.
* **H005** a class instantiated on the hot path lacks ``__slots__``
  somewhere in its MRO, so every instance drags a dict.
* **H006** ``try``/``except`` inside a hot loop body or ``global``
  declared in a hot method (exception-handler setup and global-scope
  writes per iteration).
* **H007** ``isinstance``/``hasattr`` dispatch on a hot path; when the
  factory registry proves the call site monomorphic for the current
  configuration (exactly one registered/selected implementation), the
  branch can be hoisted to construction time.
* **H008** the same pure subexpression (subscript/arithmetic over
  attribute loads) recomputed three or more times inside one hot
  method.

**Profile correlation.**  ``sslint --layer perf --profile out.pstats``
consumes a cProfile dump (``scripts/profile_sim.py`` writes one by
default; ``supersim --pstats-out`` too) and re-ranks findings by
measured cumulative time: statically-hot-but-measured-cold findings
demote to INFO, so the layer reports *ranked, evidenced optimization
targets*, not style noise.

Fingerprints (docs/LINTING.md "Baselines") hash the evidence chain
plus a per-hazard token, never the message or line number, so a
committed baseline survives analyzer evolution and measured-time
drift.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import factory
from repro.lint.callgraph import (
    ClassGraph,
    Heat,
    MethodScan,
    propagate_heat,
)
from repro.lint.findings import Finding, Severity
from repro.lint.rules import PERF_LAYER, LintContext, LintRule

#: Per-event entry points per model kind, weighted by the measured
#: event census (docs/PERFORMANCE.md: ~4 events per flit-hop on the
#: benchmark workload).  Weights are relative execution frequencies in
#: "events per flit-hop" units -- they rank, they don't time.
HEAT_ENTRIES: Dict[str, Dict[str, float]] = {
    "router": {
        "_step": 4.0,           # drain + route + allocate + crossbar
        "receive_flit": 1.0,    # one per flit-hop
        "receive_credit": 1.0,  # one per returned credit
        "_core_arrival": 1.0,   # flit lands in output staging
        "send_flit_out": 1.0,
        "send_credit": 1.0,
    },
    "interface": {
        "_inject_step": 2.0,    # packetization + VC selection per cycle
        "receive_flit": 1.0,    # ejection side
        "receive_credit": 1.0,
        "send_flit": 1.0,
        "send_message": 0.5,    # per message, amortized over flits
    },
    "channel": {
        "send_flit": 1.0,
        "send_credit": 1.0,
        "_deliver": 1.0,
        "_deliver_batch": 1.0,  # one per busy-tick per channel
        "_deliver_item": 1.0,   # per-item hook inside the batch
    },
    "sensor": {
        "record": 2.0,          # every credit take/give reports here
        "status": 1.0,          # adaptive routing fans over ports
    },
    "routing": {
        "route": 0.5,           # per packet head, not per flit
        "respond": 0.5,
    },
    "application": {
        "message_generated": 0.25,   # per message
        "_message_delivered": 0.25,
        "on_message_delivered": 0.25,
    },
}

#: Methods below this heat are not audited (construction-time helpers
#: never appear in the heat map at all; this threshold only matters if
#: entry weights below it are ever added).
HOT_THRESHOLD = 0.25

#: Measured cumulative-time fraction below which a statically-hot
#: finding demotes to INFO under ``--profile`` correlation.
COLD_FRACTION = 0.01

#: Constructor names whose calls allocate a container (H001).
_CONTAINER_CALLS = frozenset({
    "list", "dict", "set", "frozenset", "tuple", "deque", "defaultdict",
    "OrderedDict", "Counter", "bytearray",
})

#: Logging-ish call names treated as formatting sinks (H004).
_LOG_CALLS = frozenset({"print"})
_LOG_METHOD_CALLS = frozenset({
    "debug", "info", "warning", "error", "critical", "log",
})

#: AST node types allowed inside a "pure" expression (H008).
_PURE_NODES = (
    ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.Attribute,
    ast.Subscript, ast.Name, ast.Constant, ast.operator, ast.unaryop,
    ast.boolop, ast.cmpop, ast.expr_context, ast.Load,
)


def _render_chain(node: ast.AST) -> Optional[str]:
    """``self.simulator.tick`` for a Name-rooted attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse of exotic nodes
        return ast.dump(node)


class PerfSite:
    """One hazard occurrence inside a hot method."""

    __slots__ = ("node", "detail", "token")

    def __init__(self, node: ast.AST, detail: str, token: str):
        self.node = node
        self.detail = detail
        self.token = token

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


class PerfScan(ast.NodeVisitor):
    """Single pass over one hot method body collecting H-rule sites.

    Context is tracked structurally: loop depth (H003/H006), guard
    depth (an ``if``/``while``-guarded site is conditional, exempting
    it from H004), and whether the site sits inside a ``raise`` or
    ``assert`` (error paths are free).
    """

    def __init__(self, method_node: ast.AST, module_name: str):
        self.module_name = module_name
        self.sites: Dict[str, List[PerfSite]] = {
            "H001": [], "H002": [], "H003": [], "H004": [],
            "H005": [], "H006": [], "H007": [], "H008": [],
        }
        self._loop_depth = 0
        self._guard_depth = 0
        self._raise_depth = 0
        #: chains loaded per enclosing loop: list of per-loop Counters.
        self._loop_chain_stack: List[Dict[str, List[ast.AST]]] = []
        #: names (re)bound inside each enclosing loop.
        self._loop_bound_stack: List[Set[str]] = []
        #: maximal pure subexpressions (H008).
        self._pure_counts: Dict[str, List[ast.AST]] = {}
        self._in_pure = False
        #: escaping allocation node ids (assigned while walking parents)
        self._escapes: Dict[int, str] = {}
        body = getattr(method_node, "body", [])
        for stmt in body:
            self.visit(stmt)
        self._flush_h008()

    # -- statement context -------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._guard_depth -= 1

    def _visit_loop(self, node, iter_nodes, target: Optional[ast.AST]) -> None:
        for sub in iter_nodes:
            self.visit(sub)
        self._loop_depth += 1
        self._loop_chain_stack.append({})
        bound: Set[str] = set()
        if target is not None:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        self._loop_bound_stack.append(bound)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._loop_depth -= 1
        chains = self._loop_chain_stack.pop()
        bound = self._loop_bound_stack.pop()
        self._flush_h003(chains, bound)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node, [node.iter], node.target)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node, [node.iter], node.target)

    def visit_While(self, node: ast.While) -> None:
        # The test guards nothing permanently; treat body as looped.
        self._visit_loop(node, [node.test], None)

    def visit_Try(self, node: ast.Try) -> None:
        if self._loop_depth:
            self.sites["H006"].append(PerfSite(
                node,
                "sets up try/except inside a hot loop body; hoist the "
                "handler out of the loop (catching is costly, and the "
                "setup reruns every iteration)",
                "try-in-loop",
            ))
        for stmt in node.body:
            self.visit(stmt)
        self._guard_depth += 1  # handler bodies are error paths
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)
        self._guard_depth -= 1
        for stmt in node.orelse + node.finalbody:
            self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:
        self._raise_depth += 1
        self.generic_visit(node)
        self._raise_depth -= 1

    def visit_Assert(self, node: ast.Assert) -> None:
        self._raise_depth += 1
        self.generic_visit(node)
        self._raise_depth -= 1

    def visit_Global(self, node: ast.Global) -> None:
        self.sites["H006"].append(PerfSite(
            node,
            f"declares global {', '.join(node.names)} in a hot method; "
            f"global writes are dict operations on every event",
            "global",
        ))

    # -- assignments: note loop-bound names and escaping allocations -------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_binding(target)
            if self._is_self_store(target):
                self._mark_escape(node.value, "stored on self")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_binding(node.target)
        # An aug-assigned attribute chain is a load AND a store per
        # iteration -- count it toward H003 like a load.
        if isinstance(node.target, ast.Attribute):
            self._record_chain(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note_binding(node.target)
        if node.value is not None:
            if self._is_self_store(node.target):
                self._mark_escape(node.value, "stored on self")
            self.visit(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._mark_escape(node.value, "returned")
        self.generic_visit(node)

    def _note_binding(self, target: ast.AST) -> None:
        if self._loop_bound_stack:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    self._loop_bound_stack[-1].add(name_node.id)

    @staticmethod
    def _is_self_store(target: ast.AST) -> bool:
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    def _mark_escape(self, value: ast.AST, how: str) -> None:
        self._escapes[id(value)] = how

    # -- expressions -------------------------------------------------------

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.sites["H002"].append(PerfSite(
            node,
            "creates a lambda per call; the function object (and its "
            "closure cells) are allocated on every event",
            "lambda",
        ))
        # Don't descend: the body runs later, not on this path.

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.sites["H002"].append(PerfSite(
            node,
            f"defines nested function {node.name}() per call; the "
            f"function object (and its closure cells) are allocated on "
            f"every event",
            f"def:{node.name}",
        ))

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _alloc(self, node: ast.AST, kind: str) -> None:
        if self._raise_depth:
            return  # allocations feeding a raise are error-path
        escape = self._escapes.get(id(node))
        if escape is None:
            return
        self.sites["H001"].append(PerfSite(
            node,
            f"allocates a {kind} per call that escapes ({escape}); "
            f"hoist it to construction time or reuse a preallocated "
            f"object",
            f"alloc:{kind}:{escape.split()[0]}",
        ))

    def visit_List(self, node: ast.List) -> None:
        self._alloc(node, "list")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._alloc(node, "dict")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._alloc(node, "set")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # Arguments escape into the callee.
        for arg in node.args:
            self._mark_escape(arg, "passed to a call")
        for kw in node.keywords:
            self._mark_escape(kw.value, "passed to a call")
        if isinstance(func, ast.Name):
            name = func.id
            if name in _CONTAINER_CALLS:
                self._alloc(node, name)
            elif name in ("isinstance", "hasattr") and not self._raise_depth:
                target = ""
                if name == "isinstance" and len(node.args) == 2:
                    target = _render_chain(node.args[1]) or ""
                self.sites["H007"].append(PerfSite(
                    node,
                    f"{name}() dispatch on a hot path",
                    f"{name}:{target}",
                ))
            elif name in _LOG_CALLS and not self._raise_depth \
                    and not self._guard_depth:
                self.sites["H004"].append(PerfSite(
                    node,
                    f"unguarded {name}() on a hot path",
                    f"call:{name}",
                ))
            elif name[:1].isupper() and not self._raise_depth:
                # CamelCase constructor: resolved against the module
                # namespace by the analysis (H005).  Exception
                # constructors inside a raise are error-path.
                self.sites["H005"].append(PerfSite(
                    node, "", f"new:{name}",
                ))
        elif isinstance(func, ast.Attribute):
            if func.attr == "format" and not self._raise_depth \
                    and not self._guard_depth:
                self.sites["H004"].append(PerfSite(
                    node,
                    "unguarded str.format() on a hot path",
                    "format",
                ))
            elif func.attr in _LOG_METHOD_CALLS and not self._raise_depth \
                    and not self._guard_depth:
                chain = _render_chain(func) or func.attr
                root = chain.split(".")[0]
                if root in ("logging", "logger", "log") or ".log." in chain \
                        or chain.startswith("self.log"):
                    self.sites["H004"].append(PerfSite(
                        node,
                        f"unguarded logging call {chain}() on a hot path",
                        f"log:{func.attr}",
                    ))
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        if not self._raise_depth and not self._guard_depth and any(
            isinstance(part, ast.FormattedValue) for part in node.values
        ):
            self.sites["H004"].append(PerfSite(
                node,
                "unguarded f-string on a hot path; the formatting runs "
                "on every event even when nothing consumes it",
                "fstring",
            ))
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and not self._raise_depth and not self._guard_depth):
            self.sites["H004"].append(PerfSite(
                node,
                "unguarded %-format on a hot path",
                "percent",
            ))
        if not self._maybe_pure(node):
            self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if not self._maybe_pure(node):
            self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not self._maybe_pure(node):
            self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self._record_chain(node)
        self.generic_visit(node)

    # -- H003: attribute chains in loops -----------------------------------

    def _record_chain(self, node: ast.Attribute) -> None:
        if not self._loop_chain_stack:
            return
        chain = _render_chain(node)
        if chain is None:
            return
        # Record in the innermost loop only; outer loops see the inner
        # loop's flushed result through their own occurrences.
        self._loop_chain_stack[-1].setdefault(chain, []).append(node)

    def _flush_h003(
        self, chains: Dict[str, List[ast.AST]], bound: Set[str]
    ) -> None:
        for chain, nodes in chains.items():
            root, _, rest = chain.partition(".")
            if not rest:
                continue
            if root in bound:
                continue
            segments = rest.count(".") + 1
            count = len(nodes)
            if (segments >= 2 and count >= 2) or count >= 4:
                self.sites["H003"].append(PerfSite(
                    nodes[0],
                    f"loads {chain} {count}x inside a loop body; bind "
                    f"it to a local before the loop",
                    f"chain:{chain}",
                ))
        # Propagate surviving chains outward: a chain loaded once in an
        # inner loop still runs per outer-loop iteration.
        if self._loop_chain_stack:
            outer = self._loop_chain_stack[-1]
            for chain, nodes in chains.items():
                outer.setdefault(chain, []).extend(nodes)

    # -- H008: recomputed pure subexpressions ------------------------------

    def _maybe_pure(self, node: ast.AST) -> bool:
        """Record ``node`` if it is a maximal pure expression.

        Returns True when the subtree was walked here (the caller must
        then skip its own generic_visit, or every child -- H003 chain
        loads included -- would be counted twice).
        """
        if self._in_pure or self._raise_depth:
            return False
        for sub in ast.walk(node):
            if not isinstance(sub, _PURE_NODES):
                return False
        rendered = _unparse(node)
        self._pure_counts.setdefault(rendered, []).append(node)
        # Walk children exactly once: generic_visit still records H003
        # chains, while _in_pure keeps nested pure nodes from being
        # re-counted as separate maximal expressions.
        self._in_pure = True
        self.generic_visit(node)
        self._in_pure = False
        return True

    def _flush_h008(self) -> None:
        for rendered, nodes in self._pure_counts.items():
            if len(nodes) < 3:
                continue
            if not any(
                isinstance(sub, ast.Subscript)
                for node in nodes[:1]
                for sub in ast.walk(node)
            ) and not isinstance(nodes[0], (ast.BinOp, ast.Compare,
                                            ast.BoolOp)):
                continue
            self.sites["H008"].append(PerfSite(
                nodes[0],
                f"recomputes pure subexpression `{rendered}` "
                f"{len(nodes)}x in one call; compute it once into a "
                f"local",
                f"expr:{rendered}",
            ))


# -- analysis ----------------------------------------------------------------


class PerfHazard:
    """One H-rule hazard on a provably hot path."""

    __slots__ = ("rule_id", "class_name", "owner", "path", "location",
                 "detail", "token", "heat", "method", "filename",
                 "measured")

    def __init__(self, rule_id: str, class_name: str, owner: str,
                 heat: Heat, method: str, filename: str, site: PerfSite):
        self.rule_id = rule_id
        self.class_name = class_name
        #: the class that *defines* the flagged method (MRO owner) --
        #: the dedupe identity when many subclasses inherit it.
        self.owner = owner
        self.path = heat.path
        self.heat = heat.weight
        self.method = method
        self.filename = filename
        self.location = f"{filename}:{site.lineno}"
        self.detail = site.detail
        self.token = site.token
        #: measured cumulative-time fraction under --profile (None when
        #: no profile was given; 0.0 when absent from the profile).
        self.measured: Optional[float] = None

    @property
    def chain(self) -> str:
        return f"{self.class_name}." + " -> ".join(self.path)

    @property
    def fingerprint_path(self) -> str:
        """Evidence-chain identity: stable across lines and messages."""
        return (
            f"{self.class_name}:" + "->".join(self.path)
            + f":{self.token}"
        )

    def render(self, rank: int, total: int) -> str:
        text = (
            f"{self.rule_id} {self.chain}: {self.detail} "
            f"[heat {self.heat:g} ev/hop"
        )
        if self.measured is not None:
            text += f", measured {self.measured * 100:.1f}% cum"
        text += f", rank {rank}/{total}]"
        if self.location:
            text += f" ({self.location})"
        return text


def _resolve_name(module_name: str, name: str):
    module = sys.modules.get(module_name)
    if module is None:
        return None
    return getattr(module, name, None)


def _missing_slots(cls: type) -> bool:
    """True when instances of ``cls`` carry a ``__dict__``."""
    return any(
        "__slots__" not in klass.__dict__
        for klass in cls.__mro__
        if klass is not object
    )


def load_profile_times(path: str) -> Tuple[Dict[Tuple[str, str], float], float]:
    """cProfile dump -> ({(basename, funcname): cumtime}, total time).

    Keys use the file's basename so a profile recorded from an
    installed package still matches source checked out elsewhere.
    """
    import pstats

    stats = pstats.Stats(path)
    total = 0.0
    times: Dict[Tuple[str, str], float] = {}
    for (filename, _lineno, funcname), row in stats.stats.items():
        _cc, _nc, tt, ct, _callers = row
        total += tt
        key = (os.path.basename(filename), funcname)
        if ct > times.get(key, -1.0):
            times[key] = ct
    return times, total


class PerfTarget:
    """One model class the perf layer audits."""

    __slots__ = ("kind", "origin", "name", "cls")

    def __init__(self, kind: str, origin: str, name: str, cls: type):
        self.kind = kind
        self.origin = origin
        self.name = name
        self.cls = cls


def _model_bases() -> Dict[str, type]:
    from repro.net.interface import Interface
    from repro.router.base import Router
    from repro.router.congestion import CongestionSensor
    from repro.routing.base import RoutingAlgorithm
    from repro.workload.application import Application

    return {
        "application": Application,
        "routing": RoutingAlgorithm,
        "router": Router,
        "interface": Interface,
        "sensor": CongestionSensor,
    }


def _framework_classes() -> List[Tuple[str, type]]:
    from repro.net.channel import Channel, CreditChannel

    return [("channel", Channel), ("channel", CreditChannel)]


def analyze_class_perf(cls: type, kind: str) -> List[PerfHazard]:
    """All H-rule hazards of ``cls`` under ``kind``'s entry weights."""
    graph = ClassGraph(cls)
    if not graph.source_available:
        return []
    entries = HEAT_ENTRIES.get(kind, {})
    heat_map = propagate_heat(graph, entries)
    hazards: List[PerfHazard] = []
    seen: Set[Tuple[str, str, str]] = set()
    for method, heat in heat_map.items():
        if heat.weight < HOT_THRESHOLD:
            continue
        scan: MethodScan = graph.scans[method]
        perf = PerfScan(scan.node, scan.module)
        for rule_id, sites in perf.sites.items():
            for site in sites:
                if rule_id == "H005":
                    site = _resolve_h005(site, scan)
                    if site is None:
                        continue
                key = (rule_id, method, site.token)
                if key in seen:
                    continue
                seen.add(key)
                hazards.append(PerfHazard(
                    rule_id, graph.class_name, scan.class_name, heat,
                    method, scan.filename, site,
                ))
    return hazards


def _resolve_h005(site: PerfSite, scan: MethodScan) -> Optional[PerfSite]:
    """Keep an H005 site only if the constructed class lacks slots."""
    name = site.token.split(":", 1)[1]
    resolved = _resolve_name(scan.module, name)
    if not isinstance(resolved, type) or resolved is type:
        return None
    if not _missing_slots(resolved):
        return None
    return PerfSite(
        site.node,
        f"instantiates {name} per call, and {name} (or a base) has no "
        f"__slots__ -- every instance allocates an attribute dict",
        site.token,
    )


class PerfAnalysis:
    """Memoized hot-path audit for one lint run.

    With settings, the *configured* model classes are audited (plus the
    framework channel classes every simulation runs).  With source
    paths instead, every registered model class defined in one of the
    files is audited -- plus the framework classes when their defining
    file is among the paths.  ``ctx.profile_path`` switches on
    correlation mode.
    """

    def __init__(self, ctx: LintContext):
        self.targets: List[PerfTarget] = []
        self.profile_path = ctx.profile_path
        if ctx.settings is not None:
            self._from_config(ctx.raw)
        elif ctx.source_paths:
            self._from_sources(ctx.source_paths)
        self._hazards: Optional[List[Tuple[PerfTarget, PerfHazard]]] = None
        self._ranked: Optional[List[Tuple[PerfTarget, PerfHazard, int]]] = None

    # -- target discovery --------------------------------------------------

    def _lookup(self, kind: str, name: str) -> Optional[type]:
        import repro.models
        from repro.factory.registry import FactoryError

        repro.models.load_all()
        try:
            return factory.lookup(_model_bases()[kind], name)
        except FactoryError:
            return None  # unknown model names belong to the config layer

    def _from_config(self, raw: dict) -> None:
        workload = raw.get("workload", {})
        for index, app in enumerate(workload.get("applications", ())):
            kind = app.get("type")
            if isinstance(kind, str):
                cls = self._lookup("application", kind)
                if cls is not None:
                    self.targets.append(PerfTarget(
                        "application", f"workload.applications[{index}]",
                        kind, cls,
                    ))
        network = raw.get("network", {})
        selections = (
            ("routing", "network.routing.algorithm",
             network.get("routing", {}).get("algorithm")),
            ("router", "network.router.architecture",
             network.get("router", {}).get("architecture")),
            ("interface", "network.interface.type",
             network.get("interface", {}).get("type", "standard")),
            ("sensor", "network.router.congestion_sensor.type",
             network.get("router", {})
             .get("congestion_sensor", {}).get("type", "credit")),
        )
        for kind, origin, name in selections:
            if isinstance(name, str):
                cls = self._lookup(kind, name)
                if cls is not None:
                    self.targets.append(PerfTarget(kind, origin, name, cls))
        for kind, cls in _framework_classes():
            self.targets.append(PerfTarget(
                kind, "framework", cls.__name__, cls,
            ))

    def _from_sources(self, paths: Sequence[str]) -> None:
        import repro.models

        repro.models.load_all()
        wanted = {os.path.realpath(p) for p in paths}

        def defined_in_wanted(cls: type) -> bool:
            graph = ClassGraph(cls)
            files = {
                os.path.realpath(filename)
                for (_n, _m, filename, _o) in graph.methods.values()
            }
            module = sys.modules.get(cls.__module__)
            defining = getattr(module, "__file__", None)
            if defining is not None:
                files.add(os.path.realpath(defining))
            return bool(files & wanted)

        for kind, base in _model_bases().items():
            for name in factory.names(base):
                cls = factory.lookup(base, name)
                if defined_in_wanted(cls):
                    self.targets.append(PerfTarget(
                        kind, f"registered:{kind}", name, cls,
                    ))
        for kind, cls in _framework_classes():
            if defined_in_wanted(cls):
                self.targets.append(PerfTarget(
                    kind, "framework", cls.__name__, cls,
                ))

    # -- hazard collection + ranking ---------------------------------------

    def hazards(self) -> List[Tuple[PerfTarget, PerfHazard]]:
        if self._hazards is None:
            seen_classes: Set[Tuple[type, str]] = set()
            #: one finding per (rule, defining class, method, token) --
            #: a base-class method inherited by N registered subclasses
            #: is one hazard, attributed to the hottest/shortest chain.
            best: Dict[Tuple[str, str, str, str],
                       Tuple[PerfTarget, PerfHazard]] = {}
            for target in self.targets:
                cls_key = (target.cls, target.kind)
                if cls_key in seen_classes:
                    continue
                seen_classes.add(cls_key)
                for hazard in analyze_class_perf(target.cls, target.kind):
                    key = (hazard.rule_id, hazard.owner, hazard.method,
                           hazard.token)
                    held = best.get(key)
                    if held is None or hazard.heat > held[1].heat or (
                        hazard.heat == held[1].heat
                        and len(hazard.path) < len(held[1].path)
                    ):
                        best[key] = (target, hazard)
            collected = list(best.values())
            if self.profile_path:
                times, total = load_profile_times(self.profile_path)
                for _target, hazard in collected:
                    cum = times.get(
                        (os.path.basename(hazard.filename), hazard.method)
                    )
                    if cum is None or total <= 0.0:
                        hazard.measured = 0.0
                    else:
                        hazard.measured = min(cum / total, 1.0)
            self._hazards = collected
        return self._hazards

    def ranked(self) -> List[Tuple[PerfTarget, PerfHazard, int]]:
        """Hazards ordered hottest-first with their 1-based rank.

        Without a profile the static heat ranks; with one, measured
        cumulative time does (heat breaks ties).
        """
        if self._ranked is None:
            hazards = self.hazards()
            ordered = sorted(
                hazards,
                key=lambda pair: (
                    -(pair[1].measured if pair[1].measured is not None
                      else 0.0),
                    -pair[1].heat,
                    pair[1].rule_id,
                    pair[1].chain,
                    pair[1].token,
                ),
            )
            self._ranked = [
                (target, hazard, rank)
                for rank, (target, hazard) in enumerate(ordered, start=1)
            ]
        return self._ranked

    def findings(self, rule_id: str) -> List[Finding]:
        ranked = self.ranked()
        total = len(ranked)
        findings: List[Finding] = []
        for target, hazard, rank in ranked:
            if hazard.rule_id != rule_id:
                continue
            demoted = (
                hazard.measured is not None
                and hazard.measured < COLD_FRACTION
            )
            severity = Severity.INFO if demoted else Severity.WARNING
            prefix = "measured cold here: " if demoted else ""
            findings.append(Finding(
                rule_id, severity,
                f"[{target.origin}={target.name}] {prefix}"
                f"{hazard.render(rank, total)}",
                config_path=hazard.fingerprint_path,
                location=hazard.location,
            ))
        return findings


# -- lint-layer integration --------------------------------------------------


class _PerfRule(LintRule):
    layer = PERF_LAYER

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return ctx.perf().findings(self.rule_id)


@factory.register(LintRule, "H001")
class EscapingAllocationRule(_PerfRule):
    rule_id = "H001"
    description = (
        "container allocated per event escapes the call (stored, "
        "returned, or passed on) -- one garbage object per event"
    )


@factory.register(LintRule, "H002")
class PerEventClosureRule(_PerfRule):
    rule_id = "H002"
    description = (
        "closure or lambda created per call on a hot path (fresh "
        "function object per event)"
    )


@factory.register(LintRule, "H003")
class LoopAttributeChainRule(_PerfRule):
    rule_id = "H003"
    description = (
        "same attribute chain loaded repeatedly inside a hot loop "
        "body; bind it to a local before the loop"
    )


@factory.register(LintRule, "H004")
class UnguardedFormattingRule(_PerfRule):
    rule_id = "H004"
    description = (
        "unguarded f-string/%-format/.format()/logging on a hot path "
        "(raise/assert and conditional branches are exempt)"
    )


@factory.register(LintRule, "H005")
class MissingSlotsRule(_PerfRule):
    rule_id = "H005"
    description = (
        "class instantiated on a hot path lacks __slots__ in its MRO; "
        "every instance allocates an attribute dict"
    )


@factory.register(LintRule, "H006")
class HotLoopTryGlobalRule(_PerfRule):
    rule_id = "H006"
    description = (
        "try/except inside a hot loop body, or `global` in a hot "
        "method"
    )


@factory.register(LintRule, "H007")
class MonomorphicDispatchRule(_PerfRule):
    rule_id = "H007"
    description = (
        "isinstance()/hasattr() dispatch on a hot path; hoist the "
        "branch when the registry proves the site monomorphic"
    )


@factory.register(LintRule, "H008")
class RecomputedPureExprRule(_PerfRule):
    rule_id = "H008"
    description = (
        "same pure subexpression recomputed 3+ times in one hot "
        "method; compute it once into a local"
    )

"""repro.lint: static analysis of experiments before they run.

Three layers of checks, all runnable without simulating a single tick:

* **config** (C001..C009) -- validates the Settings tree against a
  declarative schema (types, ranges, unknown keys with did-you-mean)
  plus cross-field constraints (VC disciplines, credit/buffer-depth
  arithmetic).
* **graph** (G001..G006) -- constructs the network (construction is
  event-free), checks port wiring, and traces the channel dependency
  graph of the routing algorithm to detect deadlock-prone cycles.
* **determinism** (D001..D005) -- AST checks over workload/model
  source files (unseeded randomness, wall-clock reads, module-global
  mutation) plus a runtime pickling check of parallel-sweep payloads.
* **dataflow** (E001..E006) -- AST checks for model-contract
  violations: event handles retained past firing, epsilon-discipline
  breaches, credit counts mutated outside the ``repro.net.credit``
  API.  The static counterparts of the ``repro.sanitize`` runtime
  sanitizers.
* **partition** (P001..P008) -- shard-safety checks of a partition
  manifest (planned by :mod:`repro.partition` or hand-written) against
  the constructed network, plus AST scans for code that would break
  under partitioned simulation.  See docs/PARTITIONING.md.
* **shard** (S001..S005) -- interprocedural shard-purity analysis of
  the registered model classes a configuration selects (or of model
  classes defined in given source files): per-class call graphs from
  the framework entry points, classifying each model shard-safe /
  shard-unsafe / unknown with evidence chains.  Runs inside
  ``lint_partition`` (so ``sslint --partition``, ``supersim
  --partition-plan``, and ``sssweep --partition`` all gate on it) and
  on demand via ``--layer shard``; it is not part of the default
  source layers.
* **perf** (H001..H008) -- interprocedural hot-path audit of the model
  classes a configuration selects (or defined in given source files):
  heat weights propagated from the per-event entry points through each
  class's call graph, flagging per-event allocation, repeated
  attribute-chain loads in loops, unguarded formatting, missing
  ``__slots__``, try/except in hot loops, monomorphic-dispatchable
  ``isinstance``, and recomputed pure subexpressions -- only on
  provably hot paths, each with an evidence chain.  ``--profile
  out.pstats`` re-ranks by measured cumulative time.  Opt-in like
  shard (``--layer perf``).  See docs/LINTING.md and
  docs/PERFORMANCE.md "Static perf audit".

Entry points: ``sslint`` (CLI), ``supersim --lint`` /
``--partition-plan``, and ``sssweep``'s pre-fan-out gate.  See
docs/LINTING.md for the rule catalog.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.config.settings import Settings, SettingsError
from repro.lint.findings import Finding, LintReport, Severity
from repro.lint.rules import (
    CONFIG_LAYER,
    DATAFLOW_LAYER,
    DETERMINISM_LAYER,
    GRAPH_LAYER,
    PARTITION_LAYER,
    PERF_LAYER,
    SHARD_LAYER,
    LintContext,
    LintRule,
    all_rule_ids,
    rule_catalog,
    run_rules,
)

ALL_LAYERS = (
    CONFIG_LAYER,
    GRAPH_LAYER,
    DETERMINISM_LAYER,
    DATAFLOW_LAYER,
    PARTITION_LAYER,
    SHARD_LAYER,
    PERF_LAYER,
)

#: Layers that run over Python source files (vs. config trees).  The
#: shard layer can run over sources too, but only when explicitly
#: requested (``--layer shard``): it classifies *registered* model
#: classes, which requires the modules to be imported first.
SOURCE_LAYERS = (DETERMINISM_LAYER, DATAFLOW_LAYER, PARTITION_LAYER)

__all__ = [
    "ALL_LAYERS",
    "CONFIG_LAYER",
    "DATAFLOW_LAYER",
    "DETERMINISM_LAYER",
    "GRAPH_LAYER",
    "PARTITION_LAYER",
    "PERF_LAYER",
    "SHARD_LAYER",
    "SOURCE_LAYERS",
    "Finding",
    "LintContext",
    "LintReport",
    "LintRule",
    "Severity",
    "all_rule_ids",
    "lint_config_dict",
    "lint_partition",
    "lint_settings",
    "lint_sources",
    "lint_sweep",
    "rule_catalog",
    "run_rules",
]


def lint_settings(
    settings: Settings,
    graph: bool = True,
    max_pairs: int = 512,
    subject: Optional[str] = None,
    layers: Optional[Iterable[str]] = None,
    profile_path: Optional[str] = None,
) -> LintReport:
    """Lint a resolved Settings tree (config layer, optionally graph).

    The graph layer is skipped automatically when the config layer
    reports errors: constructing a network from a config that is
    already known-broken would only duplicate those errors as a G001.
    ``layers`` restricts the run to a subset of (config, graph); the
    config-errors-gate-graph rule still applies within the subset.
    """
    wanted = set(layers) if layers is not None else {CONFIG_LAYER, GRAPH_LAYER}
    ctx = LintContext(
        settings=settings, max_pairs=max_pairs, profile_path=profile_path
    )
    report = LintReport(subject=subject)
    if CONFIG_LAYER in wanted:
        report.merge(run_rules(ctx, [CONFIG_LAYER], subject=subject))
    if graph and GRAPH_LAYER in wanted and not report.has_errors():
        report.merge(run_rules(ctx, [GRAPH_LAYER], subject=subject))
    if SHARD_LAYER in wanted and not report.has_errors():
        report.merge(run_rules(ctx, [SHARD_LAYER], subject=subject))
    if PERF_LAYER in wanted and not report.has_errors():
        report.merge(run_rules(ctx, [PERF_LAYER], subject=subject))
    return report


def lint_partition(
    settings: Settings,
    k: Optional[int] = None,
    manifest: Optional[dict] = None,
    tolerance: Optional[float] = None,
    lookahead_threshold: int = 1,
    max_pairs: int = 512,
    subject: Optional[str] = None,
    shard: bool = True,
) -> Tuple[LintReport, Optional[dict]]:
    """Plan (``k``) or verify (``manifest``) a partition for ``settings``.

    Runs the config layer first (a broken config cannot be partitioned),
    then the graph + partition layers, then (unless ``shard=False``)
    the shard-purity S-rules over the model classes the configuration
    selects -- a partition of a model the sharded runtime would refuse
    to execute should fail its preflight here, with evidence chains.
    Returns ``(report, manifest)`` where the manifest is the planned
    document when planning was requested and succeeded, the caller's
    document when verifying, and ``None`` when the config/graph layers
    already failed.  S-findings never suppress the manifest: they are
    verdicts about model code, not about the shard assignment.
    """
    ctx = LintContext(
        settings=settings,
        max_pairs=max_pairs,
        partition_k=k,
        manifest=manifest,
        partition_tolerance=tolerance,
        lookahead_threshold=lookahead_threshold,
    )
    report = run_rules(ctx, [CONFIG_LAYER], subject=subject)
    if report.has_errors():
        return report, None
    layers = [GRAPH_LAYER, PARTITION_LAYER]
    if shard:
        layers.append(SHARD_LAYER)
    report.merge(run_rules(ctx, layers, subject=subject))
    return report, ctx.partition().manifest


def lint_config_dict(
    config: dict,
    overrides: Iterable[str] = (),
    graph: bool = True,
    max_pairs: int = 512,
    subject: Optional[str] = None,
) -> LintReport:
    """Lint an in-memory config dict (resolving overrides first)."""
    try:
        settings = Settings.from_dict(config, overrides=overrides)
    except SettingsError as exc:
        report = LintReport(subject=subject)
        report.add(
            Finding(
                "C002",
                Severity.ERROR,
                f"configuration does not resolve: {exc}",
            )
        )
        return report
    return lint_settings(
        settings, graph=graph, max_pairs=max_pairs, subject=subject
    )


def lint_sources(
    paths: Iterable[str],
    subject: Optional[str] = None,
    layers: Optional[Iterable[str]] = None,
    profile_path: Optional[str] = None,
) -> LintReport:
    """Run the source-file AST layers (determinism/dataflow/partition).

    ``layers`` restricts the run; non-source layers in it are ignored.
    The shard and perf layers join only on explicit request (``--layer
    shard`` / ``--layer perf``) -- they classify registered model
    classes defined in the files, so the caller must have imported
    them (``sslint --import``).  ``profile_path`` feeds the perf
    layer's measured-time correlation mode.
    """
    source_ok = SOURCE_LAYERS + (SHARD_LAYER, PERF_LAYER)
    wanted = (
        [layer for layer in source_ok if layer in set(layers)]
        if layers is not None
        else list(SOURCE_LAYERS)
    )
    ctx = LintContext(source_paths=list(paths), profile_path=profile_path)
    return run_rules(ctx, wanted, subject=subject)


def lint_sweep(
    sweep,
    graph: bool = False,
    subject: Optional[str] = None,
    max_jobs: int = 512,
) -> LintReport:
    """Lint a Sweep before fan-out: configs plus payload pickling.

    Called by ``sssweep`` before any worker process spawns, so payload
    problems surface with the sweep's name instead of as a worker-side
    traceback (or, worse, a silent inline fallback).  Beyond the base
    config, every job's *resolved* config is config-layer linted, so a
    swept value that breaks a constraint (say, an odd ``num_vcs`` under
    dateline routing) is reported with its sweep point id before any
    simulation starts.
    """
    subject = subject or f"sweep:{sweep.name}"
    report = lint_config_dict(
        sweep.base_config, graph=graph, subject=subject
    )
    seen = {(f.rule_id, f.config_path, f.message) for f in report.findings}
    jobs = sweep.jobs or sweep.generate_jobs()
    if len(jobs) > max_jobs:
        report.add(
            Finding(
                "D005",
                Severity.INFO,
                f"sweep has {len(jobs)} jobs; per-job config lint covers "
                f"only the first {max_jobs}",
            )
        )
    for job in jobs[:max_jobs]:
        job_report = lint_config_dict(
            sweep.base_config, overrides=job.overrides, graph=False
        )
        for finding in job_report.findings:
            key = (finding.rule_id, finding.config_path, finding.message)
            if key in seen:
                continue
            seen.add(key)
            finding.message = f"[{job.job_id}] {finding.message}"
            report.add(finding)
    ctx = LintContext(sweep=sweep)
    report.merge(run_rules(ctx, [DETERMINISM_LAYER], subject=subject))
    return report

"""The lint rule registry.

Rules are classes deriving from :class:`LintRule` and registered with
the process-global object factory under their rule id, exactly like
router architectures or traffic patterns (paper §III-D)::

    @factory.register(LintRule, "C001")
    class UnknownKeyRule(LintRule):
        rule_id = "C001"
        ...

so dropping a new rule module into the code base requires zero changes
to existing files, and ``sslint`` enumerates every rule through
``factory.names(LintRule)``.

Each rule belongs to one *layer*:

* ``config`` -- validates the ``Settings`` tree declaratively.
* ``graph`` -- inspects the constructed (never-run) network graph.
* ``determinism`` -- AST checks over workload/model source files.
* ``dataflow`` -- AST checks for model-contract violations (event
  handle lifetimes, epsilon discipline, credit-API bypasses) -- the
  static counterparts of the :mod:`repro.sanitize` runtime checks.
* ``partition`` -- shard-safety checks of a partition manifest
  (planned or hand-written) against the constructed network, plus AST
  scans for shard-isolation hazards in model code.
* ``shard`` -- interprocedural shard-purity analysis (S-rules) of the
  registered model classes a configuration selects: per-class call
  graphs from the framework entry points, attribute-reach dataflow,
  and a shard-safe/shard-unsafe/unknown verdict with evidence chains.
* ``perf`` -- interprocedural hot-path audit (H-rules): heat weights
  propagated from the per-event entry points through each model
  class's call graph, flagging per-event allocation, repeated
  attribute-chain loads, unguarded formatting, missing ``__slots__``
  and friends only on provably hot paths -- optionally re-ranked by a
  measured cProfile dump (``--profile``).

A :class:`LintContext` carries the inputs and memoizes the expensive
shared work (the schema walk, the network construction and channel
dependency trace, the parsed ASTs) so each layer pays its cost once no
matter how many rules consume it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro import factory
from repro.config.settings import Settings
from repro.lint.findings import Finding, LintReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.ast_rules import SourceScan
    from repro.lint.dataflow_rules import DataflowScan
    from repro.lint.graph import GraphAnalysis
    from repro.lint.partition_rules import PartitionAnalysis, PartitionScan
    from repro.lint.perf_rules import PerfAnalysis
    from repro.lint.shard_rules import ShardAnalysis

CONFIG_LAYER = "config"
GRAPH_LAYER = "graph"
DETERMINISM_LAYER = "determinism"
DATAFLOW_LAYER = "dataflow"
PARTITION_LAYER = "partition"
SHARD_LAYER = "shard"
PERF_LAYER = "perf"


class LintRule:
    """Base class for lint rules; subclasses register with the factory."""

    #: Stable identifier (``C00x``, ``G00x``, ``D00x``).
    rule_id: str = ""
    #: Which analysis layer feeds this rule.
    layer: str = CONFIG_LAYER
    #: One-line description (surfaced by ``sslint --list-rules`` and docs).
    description: str = ""

    def check(self, ctx: "LintContext") -> Iterable[Finding]:
        raise NotImplementedError


class LintContext:
    """Inputs plus memoized shared analyses for one lint run."""

    def __init__(
        self,
        settings: Optional[Settings] = None,
        source_paths: Optional[List[str]] = None,
        max_pairs: int = 512,
        sweep=None,
        partition_k: Optional[int] = None,
        manifest: Optional[dict] = None,
        partition_tolerance: Optional[float] = None,
        lookahead_threshold: int = 1,
        profile_path: Optional[str] = None,
    ):
        self.settings = settings
        self.source_paths = list(source_paths or [])
        self.max_pairs = max_pairs
        self.sweep = sweep
        #: Shard count to plan (P-rules then verify the planned
        #: manifest); ``manifest`` instead verifies a caller-provided
        #: document against the network this config constructs.
        self.partition_k = partition_k
        self.manifest = manifest
        self.partition_tolerance = partition_tolerance
        self.lookahead_threshold = lookahead_threshold
        #: Path to a cProfile ``.pstats`` dump; switches the perf layer
        #: into measured-time correlation mode.
        self.profile_path = profile_path
        self._schema_findings: Optional[List[Finding]] = None
        self._graph: Optional["GraphAnalysis"] = None
        self._scans: Optional[List["SourceScan"]] = None
        self._dataflow_scans: Optional[List["DataflowScan"]] = None
        self._partition: Optional["PartitionAnalysis"] = None
        self._partition_scans: Optional[List["PartitionScan"]] = None
        self._shard: Optional["ShardAnalysis"] = None
        self._perf: Optional["PerfAnalysis"] = None

    # -- memoized analyses ---------------------------------------------------

    @property
    def raw(self) -> dict:
        return self.settings.raw() if self.settings is not None else {}

    def schema_findings(self) -> List[Finding]:
        """Findings from the declarative schema walk (C001..C005)."""
        if self._schema_findings is None:
            from repro.lint.config_rules import walk_schema

            self._schema_findings = list(walk_schema(self.raw))
        return self._schema_findings

    def graph(self) -> "GraphAnalysis":
        """The constructed network graph and its dependency trace."""
        if self._graph is None:
            from repro.lint.graph import GraphAnalysis

            self._graph = GraphAnalysis(self.settings, max_pairs=self.max_pairs)
        return self._graph

    def source_scans(self) -> List["SourceScan"]:
        """Parsed-AST scans of every requested source file."""
        if self._scans is None:
            from repro.lint.ast_rules import SourceScan

            self._scans = [SourceScan(path) for path in self.source_paths]
        return self._scans

    def dataflow_scans(self) -> List["DataflowScan"]:
        """Dataflow-hazard AST scans of every requested source file."""
        if self._dataflow_scans is None:
            from repro.lint.dataflow_rules import DataflowScan

            self._dataflow_scans = [
                DataflowScan(path) for path in self.source_paths
            ]
        return self._dataflow_scans

    def partition(self) -> "PartitionAnalysis":
        """Component graph + manifest (planned or provided) + checks."""
        if self._partition is None:
            from repro.lint.partition_rules import PartitionAnalysis

            self._partition = PartitionAnalysis(self)
        return self._partition

    def partition_scans(self) -> List["PartitionScan"]:
        """Shard-isolation AST scans of every requested source file."""
        if self._partition_scans is None:
            from repro.lint.partition_rules import PartitionScan

            self._partition_scans = [
                PartitionScan(path) for path in self.source_paths
            ]
        return self._partition_scans

    def shard(self) -> "ShardAnalysis":
        """Shard-purity verdicts for the configured model classes."""
        if self._shard is None:
            from repro.lint.shard_rules import ShardAnalysis

            self._shard = ShardAnalysis(self)
        return self._shard

    def perf(self) -> "PerfAnalysis":
        """Hot-path hazard audit of the configured model classes."""
        if self._perf is None:
            from repro.lint.perf_rules import PerfAnalysis

            self._perf = PerfAnalysis(self)
        return self._perf


def all_rule_ids(layer: Optional[str] = None) -> List[str]:
    """Every registered rule id, optionally restricted to one layer."""
    import repro.lint.ast_rules  # noqa: F401 - registration side effects
    import repro.lint.config_rules  # noqa: F401
    import repro.lint.dataflow_rules  # noqa: F401
    import repro.lint.graph  # noqa: F401
    import repro.lint.partition_rules  # noqa: F401
    import repro.lint.perf_rules  # noqa: F401
    import repro.lint.shard_rules  # noqa: F401

    ids = factory.names(LintRule)
    if layer is None:
        return ids
    return [
        rule_id
        for rule_id in ids
        if factory.lookup(LintRule, rule_id).layer == layer
    ]


def run_rules(
    ctx: LintContext,
    layers: Iterable[str],
    subject: Optional[str] = None,
) -> LintReport:
    """Run every registered rule of ``layers`` against ``ctx``."""
    wanted = set(layers)
    report = LintReport(subject=subject)
    for rule_id in all_rule_ids():
        rule_cls = factory.lookup(LintRule, rule_id)
        if rule_cls.layer not in wanted:
            continue
        rule = factory.create(LintRule, rule_id)
        report.extend(rule.check(ctx))
    return report


def rule_catalog() -> Dict[str, Dict[str, str]]:
    """{rule id: {layer, description}} for docs and ``--list-rules``."""
    catalog: Dict[str, Dict[str, str]] = {}
    for rule_id in all_rule_ids():
        cls = factory.lookup(LintRule, rule_id)
        catalog[rule_id] = {
            "layer": cls.layer,
            "description": cls.description,
        }
    return catalog

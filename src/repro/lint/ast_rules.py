"""Determinism-layer lint (D001..D005).

SuperSim runs are meant to be bit-reproducible: every random decision
flows from ``RandomManager`` (one seeded generator per component label)
and simulated time comes from the event queue, never the wall clock.
User workload/model/example modules can silently break that contract
-- and, worse, break it *differently per worker* once ``sssweep`` fans
jobs out across spawned processes.

D001..D004 are AST checks over source files; they never import or
execute the code under scan.  D005 is the one runtime check: it
pickles the exact payload tuples a parallel sweep would ship to worker
processes, reporting failures *before* any worker spawns (the task
runner would otherwise fall back to inline execution, silently
serializing the whole sweep).
"""

from __future__ import annotations

import ast
import pickle
from typing import Dict, Iterable, List, Optional, Tuple

from repro import factory
from repro.lint.findings import Finding, Severity
from repro.lint.rules import DETERMINISM_LAYER, LintContext, LintRule

# Module-global RNG entry points (both stdlib and legacy numpy).  The
# seeded-construction entry points are deliberately excluded.
_RANDOM_SAFE = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
}

_TIME_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class SourceScan:
    """One parsed source file plus its categorized determinism hazards."""

    def __init__(self, path: str):
        self.path = path
        self.parse_error: Optional[str] = None
        #: (line, dotted name) calls into module-global RNG state.
        self.random_calls: List[Tuple[int, str]] = []
        #: (line, dotted name) wall-clock reads.
        self.time_calls: List[Tuple[int, str]] = []
        #: (line, variable names) ``global`` statements inside functions.
        self.global_stmts: List[Tuple[int, Tuple[str, ...]]] = []
        #: (line, description) lambda/local callables handed to a sweep.
        self.lambda_payloads: List[Tuple[int, str]] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            self.parse_error = str(exc)
            return
        self._scan(tree)

    # -- scanning ------------------------------------------------------------

    def _scan(self, tree: ast.AST) -> None:
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    aliases[item.asname or item.name.split(".")[0]] = item.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for item in node.names:
                    aliases[item.asname or item.name] = (
                        f"{node.module}.{item.name}"
                    )
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._scan_call(node, aliases)
            elif isinstance(node, ast.Global):
                self.global_stmts.append((node.lineno, tuple(node.names)))

    def _scan_call(self, node: ast.Call, aliases: Dict[str, str]) -> None:
        name = _resolve(node.func, aliases)
        if name is not None:
            if (
                name.startswith(("random.", "numpy.random."))
                and name not in _RANDOM_SAFE
            ):
                self.random_calls.append((node.lineno, name))
            elif name in _TIME_CALLS:
                self.time_calls.append((node.lineno, name))
        # Lambdas handed to a sweep: unpicklable, so a parallel run
        # cannot ship them to workers.
        simple = _last_component(node.func)
        for keyword in node.keywords:
            if keyword.arg == "collect" and isinstance(
                keyword.value, ast.Lambda
            ):
                self.lambda_payloads.append(
                    (keyword.value.lineno, "lambda passed as collect=")
                )
        if simple is not None and "sweep" in simple.lower():
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    self.lambda_payloads.append(
                        (arg.lineno, f"lambda passed to {simple}()")
                    )


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _resolve(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted call target with the first component expanded via imports."""
    name = _dotted(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def _last_component(node: ast.expr) -> Optional[str]:
    name = _dotted(node)
    return name.rsplit(".", 1)[-1] if name else None


# ---------------------------------------------------------------------------
# AST rules
# ---------------------------------------------------------------------------


class _AstRule(LintRule):
    layer = DETERMINISM_LAYER


@factory.register(LintRule, "D001")
class UnseededRandomRule(_AstRule):
    rule_id = "D001"
    description = ("Module-global RNG use (random.* / legacy numpy.random.*) "
                   "breaks seeded reproducibility; use RandomManager "
                   "generators")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        findings = []
        for scan in ctx.source_scans():
            if scan.parse_error is not None:
                findings.append(
                    Finding(
                        "D001",
                        Severity.WARNING,
                        f"could not parse source file (skipped): "
                        f"{scan.parse_error}",
                        location=scan.path,
                    )
                )
                continue
            for line, name in scan.random_calls:
                findings.append(
                    Finding(
                        "D001",
                        Severity.WARNING,
                        f"call to {name}() uses module-global RNG state; "
                        f"draw from a RandomManager generator instead",
                        location=f"{scan.path}:{line}",
                    )
                )
        return findings


@factory.register(LintRule, "D002")
class WallClockRule(_AstRule):
    rule_id = "D002"
    description = ("Wall-clock reads (time.time, datetime.now, ...) make "
                   "model behavior timing-dependent; use simulator ticks")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "D002",
                Severity.WARNING,
                f"call to {name}() reads the wall clock; simulation "
                f"behavior must depend only on simulator ticks",
                location=f"{scan.path}:{line}",
            )
            for scan in ctx.source_scans()
            if scan.parse_error is None
            for line, name in scan.time_calls
        ]


@factory.register(LintRule, "D003")
class GlobalMutationRule(_AstRule):
    rule_id = "D003"
    description = ("`global` statement mutates module state from a callback; "
                   "such state is silently per-process under parallel sweeps")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "D003",
                Severity.WARNING,
                f"`global {', '.join(names)}` mutates module-level state; "
                f"under a parallel sweep each worker process gets its own "
                f"copy and the mutations are lost",
                location=f"{scan.path}:{line}",
            )
            for scan in ctx.source_scans()
            if scan.parse_error is None
            for line, names in scan.global_stmts
        ]


@factory.register(LintRule, "D004")
class LambdaPayloadRule(_AstRule):
    rule_id = "D004"
    description = ("Lambda handed to a sweep cannot be pickled to worker "
                   "processes; use a module-level function")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "D004",
                Severity.WARNING,
                f"{description}: lambdas cannot be pickled to sweep worker "
                f"processes; define a module-level function instead",
                location=f"{scan.path}:{line}",
            )
            for scan in ctx.source_scans()
            if scan.parse_error is None
            for line, description in scan.lambda_payloads
        ]


# ---------------------------------------------------------------------------
# D005: runtime payload pickling
# ---------------------------------------------------------------------------


def _pickle_failure(label: str, value) -> Optional[str]:
    try:
        pickle.dumps(value)
        return None
    except Exception as exc:  # pickle raises a zoo of exception types
        return f"{label} is not picklable ({type(exc).__name__}: {exc})"


@factory.register(LintRule, "D005")
class SweepPayloadRule(_AstRule):
    rule_id = "D005"
    description = ("Parallel-sweep payload fails pickling: workers would "
                   "silently fall back to inline (serial) execution")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        sweep = ctx.sweep
        if sweep is None:
            return []
        findings = []
        parts = [
            ("sweep base_config", sweep.base_config),
            ("sweep collect function "
             f"{getattr(sweep.collect, '__qualname__', sweep.collect)!r}",
             sweep.collect),
            ("sweep max_time", sweep.max_time),
        ]
        jobs = sweep.jobs or sweep.generate_jobs()
        if jobs:
            parts.append((f"job {jobs[0].job_id!r} overrides",
                          jobs[0].overrides))
        for label, value in parts:
            failure = _pickle_failure(label, value)
            if failure is not None:
                findings.append(
                    Finding(
                        "D005",
                        Severity.ERROR,
                        f"{failure}; a parallel sweep cannot ship this to "
                        f"worker processes (the task runner would silently "
                        f"run every job inline)",
                        config_path=f"sweep:{sweep.name}",
                    )
                )
        return findings

"""Shard-purity analysis: interprocedural S-rules over model classes.

The sharded PDES runtime (:mod:`repro.partition.runtime`) replays every
terminal on every worker and exchanges only cut-channel records, so a
model class is *shard-safe* exactly when nothing it does from an
event/handler entry point depends on state another shard would have
mutated first.  This module derives that verdict from source instead of
from a name blocklist: :func:`analyze_class` builds the class's call
graph (:mod:`repro.lint.callgraph`), walks the methods reachable from
its framework entry points, and applies the S-rules:

* **S001** head-time read of tail-bumped packet state: VC/route
  selection reading ``packet.hop_count``, which routers bump as the
  *tail* leaves -- a sharded copy only learns of remote bumps at the
  next tail crossing (the dragonfly/hyperx divergence, now detected).
* **S002** control decision fed by locally observed deliveries: a
  delivery-handler path that signals Ready/Complete, schedules events,
  or injects traffic; or a Ready/Complete decision reading state
  written on the delivery path (the ``warmup_mode=auto`` class of
  bugs).  ``done()`` is exempt: the coordinator replays Done/Kill from
  the merged delivery stream.
* **S003** whole-network state read: iterating or indexing
  ``.routers``/``.interfaces`` from a handler path (monitor-style
  traversals a shard cannot satisfy; ``len(...)`` is static and
  allowed).
* **S004** module-global mutable state touched from a handler path:
  ``global`` statements, mutations of module-level containers, or
  ``next()`` on an unscoped module-level id counter.
* **S005** RNG draw ordered by local-only events: drawing from a
  random stream inside a delivery-handler path (shards observe
  different delivery interleavings, so shared-stream draw order
  diverges).

Each hazard carries an evidence chain (rule, ``Class.entry -> ... ->
method`` path, source location) and the guarding configuration
conditions, so a class can be *conditionally* unsafe: Blast is clean
under fixed warmup and S002-unsafe only ``[when warmup_mode ==
'auto']``.  :meth:`ClassVerdict.applicable_hazards` evaluates those
conditions against a concrete configuration block.

Consumers: ``validate_sharded_scope`` (runtime preflight), the
``shard`` lint layer (``sslint --layer shard``, ``lint_partition``,
``sssweep --partition``), and ``scripts/partition_gate.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import factory
from repro.lint.callgraph import (
    ClassGraph,
    Cond,
    MethodScan,
    Reach,
    merge_conds,
    module_state,
    reachable,
    render_conds,
)
from repro.lint.findings import Finding, Severity
from repro.lint.rules import SHARD_LAYER, LintContext, LintRule

SHARD_SAFE = "shard-safe"
SHARD_UNSAFE = "shard-unsafe"
CONDITIONAL = "conditional"
UNKNOWN = "unknown"

#: packet attributes bumped as the *tail* crosses a router, read at
#: head time by adaptive VC/route selection (S001).
TAIL_BUMPED_ATTRS = frozenset({"hop_count"})

#: ``self.<name>()`` calls that steer the workload handshake or inject
#: traffic; forbidden on delivery-handler paths (S002).  ``done`` is
#: exempt -- the coordinator replays it from merged deliveries.
CONTROL_CALLS = frozenset({
    "complete", "ready", "start_terminals", "stop_terminals",
})

#: calls that create or schedule new activity (any receiver).
ACTIVITY_CALLS = frozenset({"schedule", "send_message"})

#: whole-network registries a shard only partially owns (S003).
REGISTRY_ATTRS = frozenset({"routers", "interfaces"})

#: RNG draw method names (S005).
RNG_DRAWS = frozenset({
    "choice", "exponential", "integers", "normal", "permutation",
    "poisson", "randint", "random", "randrange", "sample", "shuffle",
    "standard_normal", "uniform",
})

#: construction-time methods, never driven by the event loop.
CONSTRUCTION_METHODS = frozenset({
    "__init__", "__post_init__", "_build", "_build_terminal",
    "_terminal_ids", "finalize", "setup",
})

#: framework entry points per model kind.
ENTRY_POINTS: Dict[str, Tuple[str, ...]] = {
    "application": (
        "on_init", "on_start", "on_stop", "on_kill",
        "message_generated", "_message_delivered",
    ),
    "routing": ("route", "respond"),
    "router": (),   # every non-construction method (computed)
    "interface": (),
}

#: entry points driven by a *local* delivery observation.
DELIVERY_ENTRIES = ("_message_delivered", "on_message_delivered")


class Hazard:
    """One S-rule violation with its evidence chain."""

    __slots__ = ("rule_id", "class_name", "path", "location", "detail",
                 "conditions")

    def __init__(
        self,
        rule_id: str,
        class_name: str,
        path: Tuple[str, ...],
        location: str,
        detail: str,
        conditions: Tuple[Cond, ...] = (),
    ):
        self.rule_id = rule_id
        self.class_name = class_name
        self.path = path
        self.location = location
        self.detail = detail
        self.conditions = conditions

    @property
    def chain(self) -> str:
        """``Class.entry -> helper -> method`` evidence path."""
        return f"{self.class_name}." + " -> ".join(self.path)

    def applicable(self, block: Optional[dict]) -> bool:
        """Whether the hazard applies under configuration ``block``.

        Undecidable conditions count as satisfied (the sound
        direction); only a condition the block provably falsifies
        makes the hazard dormant.
        """
        return all(c.evaluate(block) is not False for c in self.conditions)

    def render(self) -> str:
        text = f"{self.rule_id} {self.chain}: {self.detail}"
        when = render_conds(self.conditions)
        if when:
            text += f" {when}"
        if self.location:
            text += f" ({self.location})"
        return text


class ClassVerdict:
    """Shard-safety classification of one model class."""

    __slots__ = ("class_name", "kind", "classification", "hazards")

    def __init__(self, class_name: str, kind: str, classification: str,
                 hazards: List[Hazard]):
        self.class_name = class_name
        self.kind = kind
        self.classification = classification
        self.hazards = hazards

    def applicable_hazards(self, block: Optional[dict]) -> List[Hazard]:
        return [h for h in self.hazards if h.applicable(block)]

    def render(self) -> str:
        return f"{self.class_name} [{self.kind}]: {self.classification}"


# -- analysis ----------------------------------------------------------------


def _location(scan: MethodScan, lineno: int) -> str:
    return f"{scan.filename}:{lineno}"


def _entries(graph: ClassGraph, kind: str) -> Tuple[str, ...]:
    declared = ENTRY_POINTS.get(kind, ())
    if declared:
        return declared
    return tuple(
        name for name in graph.methods
        if name not in CONSTRUCTION_METHODS
    )


def _delivery_written_attrs(
    graph: ClassGraph, delivery_reach: Dict[str, Reach]
) -> Dict[str, str]:
    """self attributes written on the delivery path -> writing method."""
    written: Dict[str, str] = {}
    for name in delivery_reach:
        for attr in graph.scans[name].self_writes:
            written.setdefault(attr, name)
    return written


def _check_s001(graph, kind, reach, hazards) -> None:
    if kind not in ("routing", "router", "interface"):
        return
    for name, info in reach.items():
        scan = graph.scans[name]
        for attr, site, _owner in scan.attr_loads:
            if attr in TAIL_BUMPED_ATTRS:
                hazards.append(Hazard(
                    "S001", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"reads packet.{attr} at head time, but routers "
                    f"bump it as the tail leaves; a sharded copy only "
                    f"learns of remote bumps at the next tail "
                    f"crossing, so VC/route choices can diverge",
                    merge_conds(info.conds, site.conds),
                ))


def _check_s002(graph, kind, reach, delivery_reach, hazards) -> None:
    if kind != "application":
        return
    # (a) delivery-handler paths that steer control or inject activity.
    for name, info in delivery_reach.items():
        scan = graph.scans[name]
        for called, site in scan.self_calls:
            if called in CONTROL_CALLS or called in ACTIVITY_CALLS:
                hazards.append(Hazard(
                    "S002", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"calls {called}() on a delivery-handler path; "
                    f"deliveries are locally observed, so shards "
                    f"would take this control action at different "
                    f"times (done() is exempt: the coordinator "
                    f"replays it)",
                    merge_conds(info.conds, site.conds),
                ))
        for called, site in scan.method_calls:
            if called in ACTIVITY_CALLS:
                hazards.append(Hazard(
                    "S002", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"calls .{called}() on a delivery-handler path, "
                    f"generating activity from locally observed "
                    f"deliveries",
                    merge_conds(info.conds, site.conds),
                ))
    # (b) Ready/Complete decisions reading delivery-fed state.
    fed = _delivery_written_attrs(graph, delivery_reach)
    for name, info in reach.items():
        if name in delivery_reach:
            continue  # already covered by (a)
        scan = graph.scans[name]
        signals = [
            (called, site) for called, site in scan.self_calls
            if called in ("ready", "complete")
        ]
        if not signals:
            continue
        for attr, site, owner in scan.attr_loads:
            if owner == "self" and attr in fed:
                called = signals[0][0]
                hazards.append(Hazard(
                    "S002", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"decides {called}() from self.{attr}, which is "
                    f"written on the delivery path (in {fed[attr]}); "
                    f"each shard observes only its own deliveries, so "
                    f"the decision diverges",
                    merge_conds(info.conds, site.conds),
                ))


def _check_s003(graph, reach, hazards) -> None:
    for name, info in reach.items():
        scan = graph.scans[name]
        for attr, site, _owner in scan.attr_loads:
            if attr in REGISTRY_ATTRS and not scan.in_len(site.node):
                hazards.append(Hazard(
                    "S003", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"reads the whole-network .{attr} registry from a "
                    f"handler path; a shard only owns its own "
                    f"partition of it (len() alone is static and "
                    f"allowed)",
                    merge_conds(info.conds, site.conds),
                ))


def _check_s004(graph, reach, hazards) -> None:
    for name, info in reach.items():
        scan = graph.scans[name]
        state = module_state(scan.module)
        for site in scan.global_stmts:
            hazards.append(Hazard(
                "S004", graph.class_name, info.path,
                _location(scan, site.node.lineno),
                "declares `global` in a handler path; module-level "
                "state is per-process and diverges across shards",
                merge_conds(info.conds, site.conds),
            ))
        if state is None:
            continue
        for target, site in scan.next_calls:
            if target in state.counters:
                hazards.append(Hazard(
                    "S004", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"draws next({target}) from a module-level id "
                    f"counter in a handler path; unscoped counters "
                    f"advance differently on each shard",
                    merge_conds(info.conds, site.conds),
                ))
        for target, site in scan.name_mutations:
            if target in state.mutables:
                hazards.append(Hazard(
                    "S004", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"mutates module-level {target} in a handler "
                    f"path; module state is per-process and diverges "
                    f"across shards",
                    merge_conds(info.conds, site.conds),
                ))


def _check_s005(graph, kind, delivery_reach, hazards) -> None:
    if kind != "application":
        return
    for name, info in delivery_reach.items():
        scan = graph.scans[name]
        for called, site in scan.method_calls:
            if called in RNG_DRAWS:
                hazards.append(Hazard(
                    "S005", graph.class_name, info.path,
                    _location(scan, site.lineno),
                    f"draws .{called}() from an RNG stream on a "
                    f"delivery-handler path; delivery order is local "
                    f"to each shard, so shared-stream draw order "
                    f"diverges from the single-process run",
                    merge_conds(info.conds, site.conds),
                ))


_verdict_cache: Dict[Tuple[type, str], ClassVerdict] = {}


def analyze_class(cls: type, kind: str) -> ClassVerdict:
    """Classify ``cls`` (memoized); ``kind`` picks the entry points."""
    key = (cls, kind)
    if key in _verdict_cache:
        return _verdict_cache[key]
    graph = ClassGraph(cls)
    if not graph.source_available:
        verdict = ClassVerdict(cls.__name__, kind, UNKNOWN, [])
        _verdict_cache[key] = verdict
        return verdict
    entries = _entries(graph, kind)
    reach = reachable(graph, entries)
    delivery_reach = reachable(
        graph, [e for e in DELIVERY_ENTRIES if e in graph.methods]
    )
    hazards: List[Hazard] = []
    _check_s001(graph, kind, reach, hazards)
    _check_s002(graph, kind, reach, delivery_reach, hazards)
    _check_s003(graph, reach, hazards)
    _check_s004(graph, reach, hazards)
    _check_s005(graph, kind, delivery_reach, hazards)
    hazards.sort(key=lambda h: (h.rule_id, h.location, h.chain))
    if not hazards:
        classification = SHARD_SAFE
    elif any(not h.conditions for h in hazards):
        classification = SHARD_UNSAFE
    else:
        classification = CONDITIONAL
    verdict = ClassVerdict(cls.__name__, kind, classification, hazards)
    _verdict_cache[key] = verdict
    return verdict


def _model_bases() -> Dict[str, type]:
    from repro.net.interface import Interface
    from repro.router.base import Router
    from repro.routing.base import RoutingAlgorithm
    from repro.workload.application import Application

    return {
        "application": Application,
        "routing": RoutingAlgorithm,
        "router": Router,
        "interface": Interface,
    }


def analyze_registered(kind: str, name: str) -> ClassVerdict:
    """Classify the factory-registered model ``name`` of ``kind``."""
    import repro.models

    repro.models.load_all()
    base = _model_bases()[kind]
    cls = factory.lookup(base, name)
    return analyze_class(cls, kind)


def classify_registered(
    kinds: Iterable[str] = ("application", "routing", "router",
                            "interface"),
) -> Dict[str, Dict[str, ClassVerdict]]:
    """Verdicts for every registered model, keyed by kind then name."""
    import repro.models

    repro.models.load_all()
    bases = _model_bases()
    table: Dict[str, Dict[str, ClassVerdict]] = {}
    for kind in kinds:
        base = bases[kind]
        table[kind] = {
            name: analyze_class(factory.lookup(base, name), kind)
            for name in factory.names(base)
        }
    return table


# -- lint-layer integration --------------------------------------------------


class ShardTarget:
    """One (model class, config block) pair the shard layer inspects."""

    __slots__ = ("kind", "origin", "name", "verdict", "block")

    def __init__(self, kind: str, origin: str, name: str,
                 verdict: Optional[ClassVerdict], block: Optional[dict]):
        self.kind = kind
        self.origin = origin
        self.name = name
        self.verdict = verdict
        self.block = block


class ShardAnalysis:
    """Memoized shard-purity analysis for one lint run.

    With settings, the *configured* models are classified and hazard
    conditions are evaluated against their configuration blocks
    (dormant hazards demote to INFO).  With source paths instead, every
    factory-registered model class defined in one of the files is
    classified and conditional hazards demote to WARNING (no config to
    evaluate them against).
    """

    def __init__(self, ctx: LintContext):
        self.targets: List[ShardTarget] = []
        if ctx.settings is not None:
            self._from_config(ctx.raw)
        elif ctx.source_paths:
            self._from_sources(ctx.source_paths)

    def _resolve(self, kind: str, name: str) -> Optional[ClassVerdict]:
        from repro.factory.registry import FactoryError

        try:
            return analyze_registered(kind, name)
        except FactoryError:
            return None  # unknown model names belong to the config layer

    def _from_config(self, raw: dict) -> None:
        workload = raw.get("workload", {})
        for index, app in enumerate(workload.get("applications", ())):
            kind = app.get("type")
            if not isinstance(kind, str):
                continue
            self.targets.append(ShardTarget(
                "application", f"workload.applications[{index}]", kind,
                self._resolve("application", kind), app,
            ))
        network = raw.get("network", {})
        routing = network.get("routing", {})
        algorithm = routing.get("algorithm")
        if isinstance(algorithm, str):
            self.targets.append(ShardTarget(
                "routing", "network.routing.algorithm", algorithm,
                self._resolve("routing", algorithm), routing,
            ))
        router = network.get("router", {})
        architecture = router.get("architecture")
        if isinstance(architecture, str):
            self.targets.append(ShardTarget(
                "router", "network.router.architecture", architecture,
                self._resolve("router", architecture), router,
            ))
        interface = network.get("interface", {})
        interface_kind = interface.get("type", "standard")
        if isinstance(interface_kind, str):
            self.targets.append(ShardTarget(
                "interface", "network.interface.type", interface_kind,
                self._resolve("interface", interface_kind), interface,
            ))

    def _from_sources(self, paths: Sequence[str]) -> None:
        import os

        import repro.models

        repro.models.load_all()
        wanted = {os.path.realpath(p) for p in paths}
        for kind, base in _model_bases().items():
            for name in factory.names(base):
                cls = factory.lookup(base, name)
                graph = ClassGraph(cls)
                files = {
                    os.path.realpath(filename)
                    for (_n, _m, filename, _o) in graph.methods.values()
                }
                defining = module_file(cls)
                if defining is not None:
                    files.add(os.path.realpath(defining))
                if files & wanted:
                    self.targets.append(ShardTarget(
                        kind, f"registered:{kind}", name,
                        analyze_class(cls, kind), None,
                    ))

    def findings(self, rule_id: str) -> List[Finding]:
        findings: List[Finding] = []
        for target in self.targets:
            verdict = target.verdict
            if verdict is None:
                continue
            if verdict.classification == UNKNOWN:
                if rule_id == "S001":  # report unknowns exactly once
                    findings.append(Finding(
                        "S001", Severity.WARNING,
                        f"[{target.origin}={target.name}] source of "
                        f"{verdict.class_name} is unavailable; cannot "
                        f"prove shard-safety",
                        config_path=f"{verdict.class_name}:unknown",
                    ))
                continue
            for hazard in verdict.hazards:
                if hazard.rule_id != rule_id:
                    continue
                applicable = hazard.applicable(target.block)
                if target.block is not None:
                    severity = (Severity.ERROR if applicable
                                else Severity.INFO)
                    prefix = "" if applicable else "dormant here: "
                else:
                    severity = (Severity.ERROR if not hazard.conditions
                                else Severity.WARNING)
                    prefix = ""
                findings.append(Finding(
                    rule_id, severity,
                    f"[{target.origin}={target.name}] "
                    f"{prefix}{hazard.render()}",
                    config_path=(
                        f"{hazard.class_name}:"
                        + "->".join(hazard.path)
                    ),
                    location=hazard.location,
                ))
        return findings


def module_file(cls: type) -> Optional[str]:
    import inspect

    try:
        return inspect.getsourcefile(cls)
    except TypeError:
        return None


class _ShardRule(LintRule):
    layer = SHARD_LAYER

    def check(self, ctx: LintContext):
        return ctx.shard().findings(self.rule_id)


@factory.register(LintRule, "S001")
class HeadTimeTailStateRule(_ShardRule):
    rule_id = "S001"
    description = (
        "VC/route selection reads tail-bumped packet state "
        "(packet.hop_count) at head time; diverges across shards"
    )


@factory.register(LintRule, "S002")
class DeliveryFeedbackControlRule(_ShardRule):
    rule_id = "S002"
    description = (
        "workload control (Ready/Complete/scheduling/injection) decided "
        "from locally observed deliveries or delivery-fed state"
    )


@factory.register(LintRule, "S003")
class WholeNetworkReadRule(_ShardRule):
    rule_id = "S003"
    description = (
        "handler path reads the whole-network .routers/.interfaces "
        "registries, which a shard only partially owns"
    )


@factory.register(LintRule, "S004")
class ModuleGlobalStateRule(_ShardRule):
    rule_id = "S004"
    description = (
        "handler path touches module-level mutable state or unscoped "
        "global id counters (per-process, diverges across shards)"
    )


@factory.register(LintRule, "S005")
class LocalEventRngRule(_ShardRule):
    rule_id = "S005"
    description = (
        "RNG draw on a delivery-handler path; local delivery order "
        "reorders shared-stream draws across shards"
    )

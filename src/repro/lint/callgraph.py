"""Per-class interprocedural call graphs for registered model classes.

The shard-purity layer (:mod:`repro.lint.shard_rules`) must reason
about what a *class* does when the framework drives it: which methods
can run from an event/handler entry point, what state they touch, and
under which configuration those paths are even wired up.  This module
builds that picture from source, one class at a time:

* :func:`class_graph` parses the defining module of every class in the
  MRO (cached per module), collects the method ASTs (first definition
  in MRO order wins, mirroring attribute lookup), and scans each method
  once (:class:`MethodScan`) for call edges, attribute reads/writes,
  module-global touches, and the guarding ``if`` conditions around each
  site.
* Call edges cover both direct ``self.method()`` calls and *callback
  references* -- ``self.schedule(self._check, ...)`` passes a bound
  method that the event loop will invoke later, so a bare Load of
  ``self._check`` is an edge too ("Escape from Callback Hell": the
  handler chain is the real control flow).
* :func:`reachable` runs a shortest-condition-first search from a set
  of entry points and returns, per reached method, the evidence path
  (``on_init -> _warmup_check``) and the smallest set of evaluable
  configuration conditions guarding it.

Conditions are deliberately modest: only comparisons of a
settings-derived ``self`` attribute against a literal are captured
(``self.warmup_mode == "auto"``, ``self.injection_rate > 0.0``).
Anything else contributes no condition, which errs on the side of
reporting a hazard as unconditionally reachable -- the sound direction
for a gate.  When several paths reach a method, the path with the
fewest conditions is kept for the same reason.
"""

from __future__ import annotations

import ast
import inspect
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: sentinel: a settings key with no recorded literal default.
MISSING = object()

#: container-mutating method names (a call on ``self.x`` or a module
#: global through one of these counts as a write to it).
MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popleft", "remove", "setdefault", "update",
})

#: module-level ``NAME = <factory>()`` spellings that create mutable
#: containers (shared process-global state).
MUTABLE_FACTORIES = frozenset({
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list",
    "set",
})

_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Lt: "<",
    ast.LtE: "<=",
}

_NEGATED = {"==": "!=", "!=": "==", ">": "<=", ">=": "<", "<": ">=",
            "<=": ">"}

_EVALUATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


class Cond:
    """``self.<attr> <op> <literal>`` where ``attr`` came from settings.

    Evaluable against a raw configuration block: the attribute's value
    is ``block[key]`` (falling back to the recorded getter default), so
    the lint layer can tell a *dormant* hazard (guarded by a setting
    this config does not enable) from an applicable one.
    """

    __slots__ = ("key", "default", "op", "value")

    def __init__(self, key: str, default, op: str, value):
        self.key = key
        self.default = default
        self.op = op
        self.value = value

    def negated(self) -> "Cond":
        return Cond(self.key, self.default, _NEGATED[self.op], self.value)

    def evaluate(self, block: Optional[dict]) -> Optional[bool]:
        """True/False against ``block``; None when undecidable."""
        if block is None:
            return None
        if self.key in block:
            actual = block[self.key]
        elif self.default is not MISSING:
            actual = self.default
        else:
            return None
        try:
            return bool(_EVALUATORS[self.op](actual, self.value))
        except TypeError:
            return None

    def render(self) -> str:
        return f"{self.key} {self.op} {self.value!r}"

    def _key(self) -> tuple:
        return (self.key, self.op, repr(self.value))


def merge_conds(*groups: Sequence[Cond]) -> Tuple[Cond, ...]:
    """Concatenate condition groups, dropping duplicates."""
    seen = set()
    merged: List[Cond] = []
    for group in groups:
        for cond in group:
            key = cond._key()
            if key not in seen:
                seen.add(key)
                merged.append(cond)
    return tuple(merged)


def render_conds(conds: Sequence[Cond]) -> str:
    """``[when a == 'x' and b > 0]`` or '' for unconditional."""
    if not conds:
        return ""
    return "[when " + " and ".join(c.render() for c in conds) + "]"


# -- module parsing ----------------------------------------------------------


_module_cache: Dict[str, Optional[Tuple[ast.Module, str]]] = {}


def module_tree(module_name: str) -> Optional[Tuple[ast.Module, str]]:
    """(AST, filename) of an imported module; None when unreadable."""
    if module_name not in _module_cache:
        import sys

        result = None
        module = sys.modules.get(module_name)
        if module is not None:
            try:
                filename = inspect.getsourcefile(module)
                if filename:
                    with open(filename, "r", encoding="utf-8") as handle:
                        result = (ast.parse(handle.read()), filename)
            except (OSError, TypeError, SyntaxError):
                result = None
        _module_cache[module_name] = result
    return _module_cache[module_name]


class ModuleState:
    """Module-level mutable names and id counters of one module."""

    __slots__ = ("mutables", "counters")

    def __init__(self, tree: ast.Module):
        self.mutables: Set[str] = set()
        self.counters: Set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                value = stmt.value
                if isinstance(value, (ast.List, ast.Dict, ast.Set,
                                      ast.ListComp, ast.DictComp,
                                      ast.SetComp)):
                    self.mutables.add(target.id)
                elif isinstance(value, ast.Call):
                    func = value.func
                    name = None
                    if isinstance(func, ast.Name):
                        name = func.id
                    elif isinstance(func, ast.Attribute):
                        name = func.attr
                    if name in MUTABLE_FACTORIES:
                        self.mutables.add(target.id)
                    elif name == "count":
                        self.counters.add(target.id)
                        self.mutables.add(target.id)


_module_state_cache: Dict[str, ModuleState] = {}


def module_state(module_name: str) -> Optional[ModuleState]:
    if module_name not in _module_state_cache:
        parsed = module_tree(module_name)
        _module_state_cache[module_name] = (
            ModuleState(parsed[0]) if parsed is not None else None
        )
    return _module_state_cache[module_name]


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


# -- per-method scan ---------------------------------------------------------


class Edge:
    """One call-graph edge: direct call or callback reference."""

    __slots__ = ("target", "conds", "lineno", "kind")

    def __init__(self, target: str, conds: Tuple[Cond, ...], lineno: int,
                 kind: str):
        self.target = target
        self.conds = conds
        self.lineno = lineno
        self.kind = kind  # "call" | "callback"


class Site:
    """One interesting expression occurrence with its guard conditions."""

    __slots__ = ("node", "conds")

    def __init__(self, node: ast.AST, conds: Tuple[Cond, ...]):
        self.node = node
        self.conds = conds

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


class MethodScan:
    """Single-pass scan of one method body.

    Collects, each with the ``if`` conditions guarding it:

    * ``edges`` -- direct ``self.m()`` calls and callback references to
      sibling methods,
    * ``attr_loads`` -- every ``<expr>.attr`` read (Load context), as
      ``(attr name, Site, owner)`` where owner is ``"self"`` for
      ``self.attr`` and ``"other"`` otherwise,
    * ``self_calls`` -- ``self.m(...)`` call sites by method name (for
      control-signal detection, whether or not ``m`` is defined in this
      class),
    * ``method_calls`` -- ``<expr>.m(...)`` call sites on non-self
      objects by attribute name (RNG draws, ``send_message``),
    * ``global_stmts``, ``global_reads`` -- ``global`` statements and
      ``next(NAME)`` / mutations of module-level names,
    * ``self_writes`` -- ``self.attr`` names stored, aug-assigned,
      subscript-assigned, or mutated through a container method.
    """

    def __init__(self, name: str, node: ast.AST, class_name: str,
                 module_name: str, filename: str):
        self.name = name
        self.node = node
        self.class_name = class_name
        self.module = module_name
        self.filename = filename
        self.edges: List[Edge] = []
        self.attr_loads: List[Tuple[str, Site, str]] = []
        self.self_calls: List[Tuple[str, Site]] = []
        self.method_calls: List[Tuple[str, Site]] = []
        self.global_stmts: List[Site] = []
        self.next_calls: List[Tuple[str, Site]] = []
        self.name_mutations: List[Tuple[str, Site]] = []
        self.self_writes: Set[str] = set()
        self._func_ids: Set[int] = set()
        self._len_arg_ids: Set[int] = set()
        self._sibling_methods: Set[str] = set()

    def run(self, sibling_methods: Set[str]) -> "MethodScan":
        self._sibling_methods = sibling_methods
        body = getattr(self.node, "body", [])
        self._walk_body(body, ())
        return self

    # -- statement walk (tracks guarding conditions) ----------------------

    def _walk_body(self, stmts, conds: Tuple[Cond, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, conds)
                test_conds, negation = self._extract(stmt.test)
                self._walk_body(stmt.body, merge_conds(conds, test_conds))
                else_conds = (negation,) if negation is not None else ()
                self._walk_body(stmt.orelse, merge_conds(conds, else_conds))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, conds)
                self._scan_expr(stmt.target, conds)
                self._walk_body(stmt.body, conds)
                self._walk_body(stmt.orelse, conds)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, conds)
                self._walk_body(stmt.body, conds)
                self._walk_body(stmt.orelse, conds)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, conds)
                self._walk_body(stmt.body, conds)
            elif isinstance(stmt, ast.Try):
                self._walk_body(stmt.body, conds)
                for handler in stmt.handlers:
                    self._walk_body(handler.body, conds)
                self._walk_body(stmt.orelse, conds)
                self._walk_body(stmt.finalbody, conds)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_body(stmt.body, conds)
            elif isinstance(stmt, ast.Global):
                self.global_stmts.append(Site(stmt, conds))
            else:
                self._scan_expr(stmt, conds)

    # -- condition extraction ---------------------------------------------

    def _extract(self, test: ast.AST):
        """(conditions, negation-or-None) of an ``if`` test.

        A single evaluable comparison negates cleanly for the ``else``
        branch; an ``and`` of comparisons contributes each evaluable
        part to the body (but nothing to ``else``); anything else
        contributes nothing -- conservative in both directions.
        """
        cond = self._compare_cond(test)
        if cond is not None:
            return (cond,), cond.negated()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            conds = tuple(
                c for c in (self._compare_cond(v) for v in test.values)
                if c is not None
            )
            return conds, None
        return (), None

    def _compare_cond(self, node: ast.AST) -> Optional[Cond]:
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            return None
        op = _OPS.get(type(node.ops[0]))
        if op is None:
            return None
        left, right = node.left, node.comparators[0]
        attr = self._self_attr(left)
        if attr is None or not isinstance(right, ast.Constant):
            return None
        binding = self._settings_attrs.get(attr)
        if binding is None:
            return None
        key, default = binding
        return Cond(key, default, op, right.value)

    _settings_attrs: Dict[str, Tuple[str, object]] = {}

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None

    # -- expression scan ---------------------------------------------------

    def _scan_expr(self, root: ast.AST, conds: Tuple[Cond, ...]) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                self._func_ids.add(id(node.func))
                func = node.func
                if isinstance(func, ast.Name):
                    if func.id == "len":
                        for arg in node.args:
                            for sub in ast.walk(arg):
                                self._len_arg_ids.add(id(sub))
                    elif func.id == "next" and node.args and isinstance(
                            node.args[0], ast.Name):
                        self.next_calls.append(
                            (node.args[0].id, Site(node, conds))
                        )
                elif isinstance(func, ast.Attribute):
                    site = Site(node, conds)
                    owner = func.value
                    if isinstance(owner, ast.Name) and owner.id == "self":
                        self.self_calls.append((func.attr, site))
                        if func.attr in self._sibling_methods:
                            self.edges.append(Edge(
                                func.attr, conds, node.lineno, "call"
                            ))
                    else:
                        self.method_calls.append((func.attr, site))
                        if (isinstance(owner, ast.Call)
                                and isinstance(owner.func, ast.Name)
                                and owner.func.id == "super"
                                and func.attr in self._sibling_methods):
                            # super().m() stays within the merged MRO
                            # view (first definition wins), so it adds
                            # no edge -- but is recorded as a call.
                            pass
                        # container mutation of a module-level name
                        if (func.attr in MUTATORS
                                and isinstance(owner, ast.Name)
                                and owner.id != "self"):
                            self.name_mutations.append(
                                (owner.id, Site(node, conds))
                            )
                        # container mutation of self.x.append(...)
                        if func.attr in MUTATORS:
                            attr = self._self_attr(owner)
                            if attr is not None:
                                self.self_writes.add(attr)
            elif isinstance(node, ast.Attribute):
                attr = node.attr
                is_self = (isinstance(node.value, ast.Name)
                           and node.value.id == "self")
                if isinstance(node.ctx, ast.Load):
                    owner = "self" if is_self else "other"
                    self.attr_loads.append((attr, Site(node, conds), owner))
                    if (is_self and attr in self._sibling_methods
                            and id(node) not in self._func_ids):
                        self.edges.append(Edge(
                            attr, conds, node.lineno, "callback"
                        ))
                elif is_self:
                    self.self_writes.add(attr)
            elif isinstance(node, ast.Subscript):
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    attr = self._self_attr(node.value)
                    if attr is not None:
                        self.self_writes.add(attr)
                    elif isinstance(node.value, ast.Name):
                        self.name_mutations.append(
                            (node.value.id, Site(node, conds))
                        )

    # Callback references can syntactically precede the Call node that
    # makes them a plain call (ast.walk order is breadth-first), so
    # edges are deduplicated after the scan: a "callback" edge whose
    # Attribute node turned out to be a call's func is dropped there.

    def in_len(self, node: ast.AST) -> bool:
        """Whether ``node`` sits inside a ``len(...)`` argument."""
        return id(node) in self._len_arg_ids


# -- per-class graph ---------------------------------------------------------


class ClassGraph:
    """Merged MRO view of one class: methods, scans, settings, edges."""

    def __init__(self, cls: type):
        self.cls = cls
        self.class_name = cls.__name__
        #: method name -> (AST node, defining module, filename, class)
        self.methods: Dict[str, Tuple[ast.AST, str, str, str]] = {}
        self.scans: Dict[str, MethodScan] = {}
        #: self attribute -> (settings key, literal default or MISSING)
        self.settings_attrs: Dict[str, Tuple[str, object]] = {}
        self.source_available = False
        #: every method definition across the MRO, shadowed ones
        #: included -- a subclass __init__ calls super().__init__(), so
        #: settings bindings made anywhere in the chain are live.
        self._all_defs: List[ast.AST] = []
        self._build()

    def _build(self) -> None:
        for klass in self.cls.__mro__:
            if klass is object:
                continue
            parsed = module_tree(klass.__module__)
            if parsed is None:
                continue
            tree, filename = parsed
            node = _find_class(tree, klass.__name__)
            if node is None:
                continue
            self.source_available = True
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    self._all_defs.append(stmt)
                    if stmt.name not in self.methods:
                        self.methods[stmt.name] = (
                            stmt, klass.__module__, filename,
                            klass.__name__,
                        )
        self._collect_settings_attrs()
        names = set(self.methods)
        for name, (node, module, filename, owner) in self.methods.items():
            scan = MethodScan(name, node, owner, module, filename)
            scan._settings_attrs = self.settings_attrs
            self.scans[name] = scan.run(names)
        # Drop callback edges whose Attribute node was really the func
        # of a call (see MethodScan note).
        for scan in self.scans.values():
            scan.edges = [
                edge for edge in scan.edges
                if not (edge.kind == "callback" and any(
                    call_edge.kind == "call"
                    and call_edge.target == edge.target
                    and call_edge.lineno == edge.lineno
                    for call_edge in scan.edges
                ))
            ]

    def _collect_settings_attrs(self) -> None:
        getters = {"get_str", "get_int", "get_uint", "get_float",
                   "get_bool"}
        for node in self._all_defs:
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assign):
                    continue
                if len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                attr = MethodScan._self_attr(target)
                if attr is None or not isinstance(stmt.value, ast.Call):
                    continue
                func = stmt.value.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in getters):
                    continue
                # receiver must mention a name containing "settings"
                receiver_ok = any(
                    isinstance(sub, ast.Name) and "settings" in sub.id
                    or isinstance(sub, ast.Attribute)
                    and "settings" in sub.attr
                    for sub in ast.walk(func.value)
                )
                if not receiver_ok:
                    continue
                args = stmt.value.args
                if not args or not isinstance(args[0], ast.Constant):
                    continue
                key = args[0].value
                default = MISSING
                if len(args) > 1 and isinstance(args[1], ast.Constant):
                    default = args[1].value
                if attr not in self.settings_attrs:
                    self.settings_attrs[attr] = (key, default)


class Reach:
    """How one method is reached: evidence path + guard conditions."""

    __slots__ = ("path", "conds")

    def __init__(self, path: Tuple[str, ...], conds: Tuple[Cond, ...]):
        self.path = path
        self.conds = conds


class Heat:
    """How hot one method is and the hottest way it is reached.

    ``weight`` is in *events per flit-hop* units: the entry-point
    weights encode the measured event census (~4 events per flit-hop,
    docs/PERFORMANCE.md), and heat propagates along call edges without
    attenuation -- a helper called from a per-event handler runs just
    as often as the handler.  ``path`` is the evidence chain from the
    hottest entry point (``_step -> _drain_staging -> ...``).
    """

    __slots__ = ("weight", "path", "conds")

    def __init__(self, weight: float, path: Tuple[str, ...],
                 conds: Tuple[Cond, ...]):
        self.weight = weight
        self.path = path
        self.conds = conds


def reachable(
    graph: ClassGraph, entries: Sequence[str]
) -> Dict[str, Reach]:
    """Methods reachable from ``entries`` with best paths.

    "Best" minimizes (number of guard conditions, path length): of all
    ways to reach a method, the least-conditional one decides whether a
    hazard inside it applies to a given configuration.
    """
    best: Dict[str, Reach] = {}
    queue: deque = deque()
    for entry in entries:
        if entry in graph.methods:
            best[entry] = Reach((entry,), ())
            queue.append(entry)
    while queue:
        name = queue.popleft()
        base = best[name]
        for edge in graph.scans[name].edges:
            conds = merge_conds(base.conds, edge.conds)
            path = base.path + (edge.target,)
            current = best.get(edge.target)
            if current is None or (
                (len(conds), len(path))
                < (len(current.conds), len(current.path))
            ):
                best[edge.target] = Reach(path, conds)
                queue.append(edge.target)
    return best


def propagate_heat(
    graph: ClassGraph, entry_weights: Dict[str, float]
) -> Dict[str, Heat]:
    """Per-method heat from weighted entry points.

    Every method reachable from an entry point inherits that entry's
    weight undiminished (it executes once per entry invocation on the
    evidence path); a method reachable from several entries gets the
    *maximum* weight, with ties broken toward the shortest evidence
    path.  Methods not reachable from any entry (construction helpers,
    diagnostics) are absent from the result -- provably cold.

    All entries are seeded first (an entry's own heat is its declared
    weight, never a longer path through another entry), then a
    worklist relaxes call edges until no method can be made hotter or
    reached by a strictly better path.
    """
    heat: Dict[str, Heat] = {}
    queue: deque = deque()
    for entry, weight in sorted(
        entry_weights.items(), key=lambda item: (-item[1], item[0])
    ):
        if entry in graph.methods:
            heat[entry] = Heat(weight, (entry,), ())
            queue.append(entry)
    while queue:
        name = queue.popleft()
        base = heat[name]
        for edge in graph.scans[name].edges:
            target = edge.target
            if target in entry_weights and target in heat:
                # Entries keep their seeded identity.
                if entry_weights.get(target, 0.0) >= base.weight:
                    continue
            current = heat.get(target)
            path = base.path + (target,)
            conds = merge_conds(base.conds, edge.conds)
            if current is None or (
                current.weight < base.weight
                or (current.weight == base.weight
                    and (len(conds), len(path))
                    < (len(current.conds), len(current.path)))
            ):
                heat[target] = Heat(base.weight, path, conds)
                queue.append(target)
    return heat

"""Partition-layer lint (P001..P008): shard-safety static analysis.

A partition manifest (:mod:`repro.partition.manifest`) claims that a
network can be split into k shards that communicate *only* through
latency-bearing channels, so a conservative PDES runtime can advance
each shard by the manifest's lookahead without violating causality.
The P-rules verify that claim -- for planned manifests (catching
planner bugs before a runtime trusts them) and for hand-written ones
(catching humans).  Two groups:

**Manifest rules** (P001..P005) check a manifest against the network
the config actually constructs, via the same no-simulate constructor
the G-rules use.  The ground truth is the live component/channel graph
-- channel latencies are read off the constructed ``Channel`` objects
(post-override), never schema defaults.

* P001 (error) -- a cut channel with zero/invalid latency, or a
  manifest latency that disagrees with the constructed channel.  A
  zero-latency crossing means zero lookahead: the shards would have to
  synchronize every tick, i.e. the partition is useless or unsound.
* P002 (error) -- a cut crossing that is not a ``Channel`` /
  ``CreditChannel`` of the constructed network, or a cross-shard
  channel the manifest fails to declare.  Every crossing must be a
  channel: channels are the only coupling a parallel runtime proxies.
* P003 (error) -- lookahead below the threshold (default 1 tick) or
  above what the cut channels actually support (overstated lookahead
  is a causality violation waiting to happen).
* P004 (warning) -- shard weights unbalanced beyond tolerance, or an
  empty shard; legal but wasteful (the slowest shard sets the pace).
* P005 (error) -- the shards do not exactly partition the component
  set: a component in no shard, in multiple shards, or unknown to the
  network (also reports structurally malformed manifests).

**Shard-isolation AST rules** (P006..P008, warnings) scan model source
files for code that would break under partitioning even with a perfect
manifest -- state reached across a shard boundary without a channel.
Like the D/E layers they are heuristic pattern matches over names and
shapes; the scanned code is never imported or executed.

* P006 -- a handler reads/writes a peer component through a direct
  reference (``channel.sink.attr``, ``self.peer.buffer``,
  ``self.network.routers[j].anything``) instead of sending on a
  channel.  In one process this works; across shards the peer is a
  different process and the reference is a stale copy.
* P007 -- module-level mutable state written from component methods
  (``global`` rebinding or mutating a module-level container).  Each
  shard process gets its own copy; writes silently diverge.
* P008 -- an event scheduled onto another component's handler
  (``simulator.call_at(t, peer.handler)``).  Cross-shard scheduling
  must travel as a channel message, not a direct event insertion.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import factory
from repro.lint.findings import Finding, Severity
from repro.lint.rules import PARTITION_LAYER, LintContext, LintRule
from repro.partition import (
    CUT_KINDS,
    DEFAULT_TOLERANCE,
    ComponentGraph,
    PartitionError,
    build_manifest,
    config_fingerprint,
    plan,
    structural_errors,
)

#: How many offending names a single finding enumerates before "...".
_LIST_LIMIT = 5


def _clip(names: Iterable[str]) -> str:
    names = list(names)
    shown = ", ".join(names[:_LIST_LIMIT])
    if len(names) > _LIST_LIMIT:
        shown += f", ... ({len(names)} total)"
    return shown


class PartitionAnalysis:
    """Component graph plus the manifest under scrutiny.

    When the context carries ``partition_k``, the manifest is planned
    here (and the rules then verify our own planner's output -- the
    planner gets no benefit of the doubt).  When the context carries a
    ``manifest`` document, that document is verified against the
    network the settings construct.
    """

    def __init__(self, ctx: LintContext):
        self.requested = (
            ctx.partition_k is not None or ctx.manifest is not None
        )
        self.tolerance = (
            ctx.partition_tolerance
            if ctx.partition_tolerance is not None
            else DEFAULT_TOLERANCE
        )
        self.threshold = ctx.lookahead_threshold
        self.graph: Optional[ComponentGraph] = None
        self.manifest: Optional[dict] = None
        self.planned = False
        self.plan_error: Optional[str] = None
        self.structural: List[str] = []
        if not self.requested or ctx.settings is None:
            return
        analysis = ctx.graph()
        if analysis.network is None:
            return  # G001 already reports the construction failure
        self.graph = ComponentGraph.from_analysis(analysis)
        if ctx.manifest is not None:
            self.manifest = ctx.manifest
            self.structural = structural_errors(ctx.manifest)
            return
        try:
            assignment = plan(
                self.graph, ctx.partition_k, tolerance=self.tolerance
            )
        except PartitionError as exc:
            self.plan_error = str(exc)
            return
        topology = ""
        try:
            topology = ctx.settings.child("network").get_str("topology")
        except Exception:
            pass
        self.manifest = build_manifest(
            self.graph,
            assignment,
            ctx.partition_k,
            topology=topology,
            fingerprint=config_fingerprint(ctx.raw),
        )
        self.planned = True

    # -- derived views --------------------------------------------------------

    def ready(self) -> bool:
        """True when the semantic rules (P001..P004) can run."""
        return (
            self.graph is not None
            and self.manifest is not None
            and not self.structural
        )

    def assignment(self) -> Dict[str, int]:
        """{component: shard} from the manifest, first assignment wins
        (P005 reports the duplicates)."""
        assert self.manifest is not None
        mapping: Dict[str, int] = {}
        for shard in self.manifest.get("shards", []):
            for name in shard.get("components", []):
                mapping.setdefault(name, shard.get("id"))
        return mapping

    def channel_map(self):
        assert self.graph is not None
        return {record.name: record for record in self.graph.channels}


# ---------------------------------------------------------------------------
# shard-isolation AST scan (P006..P008)
# ---------------------------------------------------------------------------

#: Attribute names that conventionally hold a *peer component*
#: reference; reading past them reaches across a shard boundary.
_PEER_ATTRS = {"sink", "peer", "neighbor", "downstream", "upstream",
               "remote"}

#: Component-registry attributes; subscripting them and touching the
#: result is the classic reach-across (``network.routers[j].buffer``).
_REGISTRY_ATTRS = {"routers", "interfaces"}

#: Methods that run at construction time, before any shard boundary
#: exists -- wiring code legitimately touches every component there.
_CONSTRUCTION_METHODS = {"__init__", "__post_init__", "_build",
                         "finalize", "setup"}

#: Container methods that mutate in place (P007).
_MUTATORS = {"append", "appendleft", "add", "update", "extend", "insert",
             "setdefault", "pop", "popleft", "clear", "remove", "discard"}

#: Constructor calls whose module-level result counts as mutable state.
_MUTABLE_FACTORIES = {"list", "dict", "set", "deque", "defaultdict",
                      "Counter", "OrderedDict"}

#: Scheduling methods and the position of their handler argument.
_SCHED_HANDLER_POS = {"call_at": 1, "schedule": 0, "schedule_at": 0}


def _unparse(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - best-effort context
        return "<expr>"


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


class PartitionScan:
    """One parsed source file plus its shard-isolation hazards."""

    def __init__(self, path: str):
        self.path = path
        self.parse_error: Optional[str] = None
        #: (line, expression) peer-reference reads/writes (P006).
        self.peer_access: List[Tuple[int, str]] = []
        #: (line, description) module-state writes from methods (P007).
        self.module_state_writes: List[Tuple[int, str]] = []
        #: (line, expression) handlers of another component (P008).
        self.foreign_schedules: List[Tuple[int, str]] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            self.parse_error = str(exc)
            return
        self._module_mutables = self._collect_module_mutables(tree)
        self._scan(tree)

    # -- scanning ------------------------------------------------------------

    @staticmethod
    def _collect_module_mutables(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            mutable = isinstance(value, (ast.List, ast.Dict, ast.Set))
            if isinstance(value, ast.Call):
                func = value.func
                callee = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None
                )
                mutable = callee in _MUTABLE_FACTORIES
            if not mutable:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def _scan(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name in _CONSTRUCTION_METHODS:
                    continue
                if not item.args.args or item.args.args[0].arg != "self":
                    continue
                self._scan_method(item)

    def _scan_method(self, method: ast.FunctionDef) -> None:
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute):
                self._scan_attribute(node)
            elif isinstance(node, ast.Global):
                self.module_state_writes.append((
                    node.lineno,
                    f"`global {', '.join(node.names)}` inside "
                    f"{method.name}()",
                ))
            elif isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._scan_store(target)

    def _scan_attribute(self, node: ast.Attribute) -> None:
        # P006a: <expr>.<peer_attr>.<anything>
        inner = node.value
        if isinstance(inner, ast.Attribute) and inner.attr in _PEER_ATTRS:
            self.peer_access.append((node.lineno, _unparse(node)))
            return
        # P006b: <expr>.routers[j].<anything> / .interfaces[j].<anything>
        if isinstance(inner, ast.Subscript):
            base = inner.value
            if (
                isinstance(base, ast.Attribute)
                and base.attr in _REGISTRY_ATTRS
            ):
                self.peer_access.append((node.lineno, _unparse(node)))

    def _scan_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        # P007: mutating a module-level container.
        if (
            func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._module_mutables
        ):
            self.module_state_writes.append((
                call.lineno,
                f"{func.value.id}.{func.attr}() mutates module-level "
                f"state",
            ))
        # P008: scheduling another component's bound method.
        position = _SCHED_HANDLER_POS.get(func.attr)
        if position is None:
            return
        handler: Optional[ast.expr] = None
        for keyword in call.keywords:
            if keyword.arg == "handler":
                handler = keyword.value
        if handler is None and position < len(call.args):
            handler = call.args[position]
        if isinstance(handler, ast.Attribute) and not _is_self(
            handler.value
        ):
            self.foreign_schedules.append(
                (call.lineno, _unparse(handler))
            )

    def _scan_store(self, target: ast.expr) -> None:
        # P007: `MODULE_THING[key] = ...` from a method.
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            node is not target
            and isinstance(node, ast.Name)
            and node.id in self._module_mutables
        ):
            self.module_state_writes.append((
                target.lineno,
                f"subscript write to module-level `{node.id}`",
            ))


# ---------------------------------------------------------------------------
# manifest rules (P001..P005)
# ---------------------------------------------------------------------------


class _PartitionRule(LintRule):
    layer = PARTITION_LAYER


class _ManifestRule(_PartitionRule):
    """Base for rules that verify a manifest against the network."""

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        analysis = ctx.partition()
        if not analysis.requested or not analysis.ready():
            return []
        return self.check_manifest(ctx, analysis)

    def check_manifest(
        self, ctx: LintContext, analysis: PartitionAnalysis
    ) -> Iterable[Finding]:
        raise NotImplementedError


@factory.register(LintRule, "P001")
class CutLatencyRule(_ManifestRule):
    rule_id = "P001"
    description = ("Cut channel with zero/invalid latency, or a manifest "
                   "latency disagreeing with the constructed channel "
                   "(lookahead would be unsound)")

    def check_manifest(self, ctx, analysis):
        channels = analysis.channel_map()
        findings = []
        for entry in analysis.manifest.get("cut_channels", []):
            name = entry.get("name")
            latency = entry.get("latency")
            if not isinstance(latency, int) or latency < 1:
                findings.append(Finding(
                    "P001",
                    Severity.ERROR,
                    f"cut channel {name!r} has latency {latency!r}; every "
                    f"shard crossing must carry >= 1 tick of latency or "
                    f"the shards cannot be synchronized conservatively",
                    config_path="partition.cut_channels",
                ))
                continue
            record = channels.get(name)
            if record is not None and record.latency != latency:
                findings.append(Finding(
                    "P001",
                    Severity.ERROR,
                    f"cut channel {name!r} declares latency {latency} but "
                    f"the constructed channel has latency "
                    f"{record.latency}; the manifest must match what "
                    f"Channel.__init__ actually received (post-override)",
                    config_path="partition.cut_channels",
                ))
        return findings


@factory.register(LintRule, "P002")
class CutCrossingRule(_ManifestRule):
    rule_id = "P002"
    description = ("Cut crossing that is not a Channel/CreditChannel of "
                   "the constructed network, or a cross-shard channel the "
                   "manifest fails to declare")

    def check_manifest(self, ctx, analysis):
        channels = analysis.channel_map()
        assignment = analysis.assignment()
        findings = []
        declared: Set[str] = set()
        for entry in analysis.manifest.get("cut_channels", []):
            name = entry.get("name")
            declared.add(name)
            record = channels.get(name)
            if record is None:
                findings.append(Finding(
                    "P002",
                    Severity.ERROR,
                    f"cut crossing {name!r} is not a Channel/CreditChannel "
                    f"of the constructed network; shards may only touch "
                    f"through latency-bearing channels",
                    config_path="partition.cut_channels",
                ))
                continue
            kind = entry.get("kind")
            if kind not in CUT_KINDS or kind != record.kind:
                findings.append(Finding(
                    "P002",
                    Severity.ERROR,
                    f"cut channel {name!r} declares kind {kind!r} but the "
                    f"constructed channel is a {record.kind} channel",
                    config_path="partition.cut_channels",
                ))
        undeclared = [
            record.name
            for record in analysis.graph.cut_channels(assignment)
            if record.name not in declared
        ]
        if undeclared:
            findings.append(Finding(
                "P002",
                Severity.ERROR,
                f"channel(s) cross shards but are not declared as cut "
                f"channels: {_clip(undeclared)}; an undeclared crossing "
                f"is shard communication the runtime would not proxy",
                config_path="partition.cut_channels",
            ))
        stale = [
            entry.get("name")
            for entry in analysis.manifest.get("cut_channels", [])
            if entry.get("name") in channels
            and assignment.get(channels[entry["name"]].source)
            == assignment.get(channels[entry["name"]].sink)
        ]
        if stale:
            findings.append(Finding(
                "P002",
                Severity.ERROR,
                f"declared cut channel(s) do not actually cross shards: "
                f"{_clip(stale)}; the runtime would build proxy queues "
                f"for intra-shard links",
                config_path="partition.cut_channels",
            ))
        return findings


@factory.register(LintRule, "P003")
class LookaheadRule(_ManifestRule):
    rule_id = "P003"
    description = ("Shard lookahead below the safety threshold or above "
                   "what the cut-channel latencies support")

    def check_manifest(self, ctx, analysis):
        manifest = analysis.manifest
        threshold = analysis.threshold
        cut = manifest.get("cut_channels", [])
        lookahead = manifest.get("lookahead", {})
        findings = []
        actual_latencies = [
            entry["latency"] for entry in cut
            if isinstance(entry.get("latency"), int)
        ]
        actual_min = min(actual_latencies) if actual_latencies else None
        declared_global = lookahead.get("global")
        if cut:
            if not isinstance(declared_global, int):
                findings.append(Finding(
                    "P003",
                    Severity.ERROR,
                    f"manifest has {len(cut)} cut channel(s) but no global "
                    f"lookahead; the runtime cannot size its "
                    f"synchronization window",
                    config_path="partition.lookahead",
                ))
            else:
                if declared_global < threshold:
                    findings.append(Finding(
                        "P003",
                        Severity.ERROR,
                        f"global lookahead {declared_global} is below the "
                        f"threshold of {threshold} tick(s); shards would "
                        f"synchronize every tick (or worse), defeating "
                        f"the partition",
                        config_path="partition.lookahead",
                    ))
                if actual_min is not None and declared_global > actual_min:
                    findings.append(Finding(
                        "P003",
                        Severity.ERROR,
                        f"global lookahead {declared_global} exceeds the "
                        f"minimum cut-channel latency {actual_min}; "
                        f"advancing that far without synchronizing "
                        f"violates causality",
                        config_path="partition.lookahead",
                    ))
        per_shard = lookahead.get("per_shard", {})
        for shard in manifest.get("shards", []):
            shard_id = shard.get("id")
            inbound = [
                entry["latency"] for entry in cut
                if entry.get("sink_shard") == shard_id
                and isinstance(entry.get("latency"), int)
            ]
            if not inbound:
                continue
            declared = per_shard.get(str(shard_id))
            if not isinstance(declared, int):
                findings.append(Finding(
                    "P003",
                    Severity.ERROR,
                    f"shard {shard_id} has {len(inbound)} inbound cut "
                    f"channel(s) but no per-shard lookahead",
                    config_path="partition.lookahead",
                ))
                continue
            bound = min(inbound)
            if declared < threshold:
                findings.append(Finding(
                    "P003",
                    Severity.ERROR,
                    f"shard {shard_id} lookahead {declared} is below the "
                    f"threshold of {threshold} tick(s)",
                    config_path="partition.lookahead",
                ))
            if declared > bound:
                findings.append(Finding(
                    "P003",
                    Severity.ERROR,
                    f"shard {shard_id} lookahead {declared} exceeds its "
                    f"minimum inbound cut-channel latency {bound}; the "
                    f"shard would simulate ticks its peers can still "
                    f"affect",
                    config_path="partition.lookahead",
                ))
        return findings


@factory.register(LintRule, "P004")
class ShardBalanceRule(_ManifestRule):
    rule_id = "P004"
    description = ("Shard weights unbalanced beyond tolerance, or an "
                   "empty shard (legal but wasteful: the slowest shard "
                   "sets the pace)")

    def check_manifest(self, ctx, analysis):
        manifest = analysis.manifest
        graph = analysis.graph
        assignment = analysis.assignment()
        k = manifest.get("k", len(manifest.get("shards", [])))
        findings = []
        weights: Dict[int, int] = {}
        for name, shard in assignment.items():
            info = graph.components.get(name)
            if info is not None and isinstance(shard, int):
                weights[shard] = weights.get(shard, 0) + info.weight
        for shard in manifest.get("shards", []):
            shard_id = shard.get("id")
            if not shard.get("components"):
                findings.append(Finding(
                    "P004",
                    Severity.WARNING,
                    f"shard {shard_id} is empty; it will idle at every "
                    f"synchronization barrier",
                    config_path="partition.shards",
                ))
                continue
            declared = shard.get("weight")
            actual = weights.get(shard_id, 0)
            if isinstance(declared, int) and declared != actual:
                findings.append(Finding(
                    "P004",
                    Severity.WARNING,
                    f"shard {shard_id} declares weight {declared} but its "
                    f"components weigh {actual}",
                    config_path="partition.shards",
                ))
        if weights and k:
            ideal = graph.total_weight / k
            heaviest = max(weights.values())
            if ideal > 0 and heaviest > analysis.tolerance * ideal:
                findings.append(Finding(
                    "P004",
                    Severity.WARNING,
                    f"heaviest shard weighs {heaviest}, more than "
                    f"{analysis.tolerance:g}x the ideal {ideal:g}; the "
                    f"partition's parallel speedup is bounded by its "
                    f"heaviest shard",
                    config_path="partition.shards",
                ))
        return findings


@factory.register(LintRule, "P005")
class PartitionCoverageRule(_PartitionRule):
    rule_id = "P005"
    description = ("Shards do not exactly partition the component set: "
                   "component in no shard, in multiple shards, or unknown "
                   "to the network (also reports malformed manifests)")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        analysis = ctx.partition()
        if not analysis.requested:
            return []
        findings = []
        if analysis.plan_error is not None:
            findings.append(Finding(
                "P005",
                Severity.ERROR,
                f"cannot plan a partition: {analysis.plan_error}",
                config_path="partition",
            ))
            return findings
        for problem in analysis.structural:
            findings.append(Finding(
                "P005",
                Severity.ERROR,
                f"manifest is malformed: {problem}",
                config_path="partition",
            ))
        if analysis.graph is None or analysis.manifest is None or (
            analysis.structural
        ):
            return findings
        seen: Dict[str, int] = {}
        duplicated: List[str] = []
        unknown: List[str] = []
        for shard in analysis.manifest.get("shards", []):
            for name in shard.get("components", []):
                if name in seen:
                    duplicated.append(name)
                seen[name] = seen.get(name, 0) + 1
                if name not in analysis.graph.components:
                    unknown.append(name)
        missing = [
            name for name in analysis.graph.components if name not in seen
        ]
        if missing:
            findings.append(Finding(
                "P005",
                Severity.ERROR,
                f"component(s) assigned to no shard: {_clip(missing)}; "
                f"every router and interface must live in exactly one "
                f"shard",
                config_path="partition.shards",
            ))
        if duplicated:
            findings.append(Finding(
                "P005",
                Severity.ERROR,
                f"component(s) assigned to multiple shards: "
                f"{_clip(sorted(set(duplicated)))}; a component simulated "
                f"twice double-counts every flit it touches",
                config_path="partition.shards",
            ))
        if unknown:
            findings.append(Finding(
                "P005",
                Severity.ERROR,
                f"component(s) unknown to the constructed network: "
                f"{_clip(sorted(set(unknown)))}",
                config_path="partition.shards",
            ))
        return findings


# ---------------------------------------------------------------------------
# shard-isolation AST rules (P006..P008)
# ---------------------------------------------------------------------------


class _IsolationRule(_PartitionRule):
    def _clean_scans(self, ctx: LintContext):
        return [
            scan for scan in ctx.partition_scans()
            if scan.parse_error is None
        ]


@factory.register(LintRule, "P006")
class PeerReferenceRule(_IsolationRule):
    rule_id = "P006"
    description = ("Handler reaches into a peer component by direct "
                   "reference (channel.sink.*, self.peer.*, "
                   "network.routers[j].*) instead of sending on a channel")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "P006",
                Severity.WARNING,
                f"`{expression}` touches a peer component through a "
                f"direct reference; under partitioned simulation the "
                f"peer lives in another shard and this reads/writes a "
                f"stale local copy -- send on a channel instead",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, expression in scan.peer_access
        ]


@factory.register(LintRule, "P007")
class ModuleStateRule(_IsolationRule):
    rule_id = "P007"
    description = ("Module-level mutable state written from component "
                   "methods; each shard process gets its own copy and "
                   "the writes silently diverge")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "P007",
                Severity.WARNING,
                f"{description}; module globals are per-process, so "
                f"under partitioned simulation each shard sees a "
                f"different value -- keep the state on a component or "
                f"derive it from settings",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, description in scan.module_state_writes
        ]


@factory.register(LintRule, "P008")
class ForeignScheduleRule(_IsolationRule):
    rule_id = "P008"
    description = ("Event scheduled onto another component's handler; "
                   "cross-shard work must travel as a channel message, "
                   "not a direct event insertion")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [
            Finding(
                "P008",
                Severity.WARNING,
                f"schedules `{expression}`, a handler bound to another "
                f"component; if that component lands in another shard "
                f"the event fires on the wrong process -- send a flit/"
                f"credit on a channel and let the peer schedule itself",
                location=f"{scan.path}:{line}",
            )
            for scan in self._clean_scans(ctx)
            for line, expression in scan.foreign_schedules
        ]

"""Graph-layer lint (G001..G006): inspect the network without running it.

Network construction in this code base is entirely event-free (the
Network constructor builds every router, interface, and channel and
``finalize()`` builds the per-port routing engines), so the linter can
instantiate the full machine, probe its wiring, and exercise the
routing algorithms *statically* -- no simulation events ever fire.

The centerpiece is the **channel dependency graph** (CDG) in the sense
of Dally & Seitz: nodes are ``(channel, vc)`` pairs and an edge A->B
means a packet holding A may next request B.  The linter derives the
edges by replaying each routing algorithm's ``respond()`` over a
sampled set of source/destination pairs, following every candidate the
algorithm may return.  Two graphs are kept:

* the *full* graph over every candidate, and
* the *escape* graph over only the least-preferred (fallback)
  candidate of each response -- the path a packet can always take when
  everything else is congested.

A cycle in the escape graph means the routing algorithm is
deadlock-prone (G004, error).  A cycle only in the full graph is
reported as info (G005): adaptive algorithms are routinely cyclic in
their adaptive class and rely on an acyclic escape class (Duato's
criterion).
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro import factory, models
from repro.config.settings import Settings, SettingsError
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.lint.findings import Finding, Severity
from repro.lint.rules import GRAPH_LAYER, LintContext, LintRule
from repro.net.interface import Interface
from repro.net.network import Network
from repro.router.base import Router
from repro.routing.base import RoutingError

Node = Tuple[str, int]  # (channel full name, vc)


class ChannelRecord(NamedTuple):
    """One directed channel of the constructed network.

    ``latency`` is read off the live :class:`~repro.net.channel.Channel`
    object, i.e. the value ``Channel.__init__`` actually received after
    every settings override was applied -- never the schema default.
    The partition planner derives shard lookahead from these numbers,
    so recording a default where the config overrode it would make the
    "conservative" lookahead silently optimistic.
    """

    name: str          # channel full name
    kind: str          # "flit" | "credit"
    source: str        # source device full name
    source_port: int
    sink: str          # sink device full name
    sink_port: int
    latency: int       # ticks, post-override (see docstring)


def _state_signature(packet) -> Tuple:
    """Hashable digest of the routing-relevant packet state."""
    return (
        packet.destination,
        packet.intermediate,
        packet.non_minimal,
        tuple(sorted(packet.routing_state.items())),
    )


def scan_channels(network) -> List[ChannelRecord]:
    """Record every directed channel with its as-constructed latency.

    The latency is taken from the live channel objects rather than
    re-derived from settings: ``wire()`` hands different latencies to
    router-router and terminal links, and overrides
    (``network.channel_latency=uint=...``) change what the constructor
    received.  The objects are the ground truth the simulation will run
    with -- reading a settings default here would poison the partition
    planner's lookahead computation.
    """
    records: List[ChannelRecord] = []
    devices = list(network.routers) + list(network.interfaces)
    for device in devices:
        for port in range(device.num_ports):
            flit = device._flit_out[port]
            if flit is not None and flit.sink is not None:
                records.append(ChannelRecord(
                    flit.full_name, "flit",
                    device.full_name, port,
                    flit.sink.full_name, flit.sink_port,
                    flit.latency,
                ))
            credit = device._credit_out[port]
            if credit is not None and credit.sink is not None:
                records.append(ChannelRecord(
                    credit.full_name, "credit",
                    device.full_name, port,
                    credit.sink.full_name, credit.sink_port,
                    credit.latency,
                ))
    return records


class GraphAnalysis:
    """Construct the network and trace its channel dependency graph."""

    def __init__(self, settings: Optional[Settings], max_pairs: int = 512):
        self.constructed = False
        self.construction_error: Optional[str] = None
        self.network: Optional[Network] = None
        self.unwired_ports: List[Tuple[str, int]] = []
        self.response_errors: List[str] = []
        self.trace_warnings: List[str] = []
        self.truncated = False
        self.full_edges: Dict[Node, Set[Node]] = {}
        self.escape_edges: Dict[Node, Set[Node]] = {}
        self.full_cycle: Optional[List[Node]] = None
        self.escape_cycle: Optional[List[Node]] = None
        self.pairs_traced = 0
        self.channels: List[ChannelRecord] = []
        if settings is None:
            self.construction_error = "no settings provided"
            return
        self._run(settings, max_pairs)

    # -- construction --------------------------------------------------------

    def _run(self, settings: Settings, max_pairs: int) -> None:
        from repro.net.packet import preserve_packet_ids

        # Tracing creates Message/Packet objects, which advance the
        # module-global id counters that feed deterministic VC rotation
        # (e.g. DOR's ``global_id % len(vcs)``).  Restore them so a lint
        # pass before a simulation does not perturb its results.
        with preserve_packet_ids():
            self._build(settings)
            if self.network is not None:
                self._scan_ports()
                self._scan_channels()
                self._trace(max_pairs)
                self.full_cycle = _find_cycle(self.full_edges)
                self.escape_cycle = _find_cycle(self.escape_edges)

    def _build(self, settings: Settings) -> None:
        models.load_all()
        try:
            network_settings = settings.child("network")
            topology = network_settings.get_str("topology")
            seed = settings.child("simulator", default={}).get_uint(
                "seed", 12345
            )
            simulator = Simulator()
            random_manager = RandomManager(seed)
            self.network = factory.create(
                Network,
                topology,
                simulator,
                "network",
                None,
                network_settings,
                random_manager,
            )
            self.constructed = True
        except Exception as exc:  # construction must never crash the linter
            self.construction_error = f"{type(exc).__name__}: {exc}"
            self.network = None

    def _scan_ports(self) -> None:
        assert self.network is not None
        for router in self.network.routers:
            for port in range(router.num_ports):
                if not router.port_is_wired(port):
                    self.unwired_ports.append((router.full_name, port))

    def _scan_channels(self) -> None:
        assert self.network is not None
        self.channels = scan_channels(self.network)

    # -- channel dependency trace --------------------------------------------

    def _sample_pairs(self, max_pairs: int) -> List[Tuple[int, int]]:
        assert self.network is not None
        n = self.network.num_terminals
        total = n * (n - 1)
        if total <= 0:
            return []

        def pair(index: int) -> Tuple[int, int]:
            src, k = divmod(index, n - 1)
            dst = k if k < src else k + 1
            return src, dst

        if total <= max_pairs:
            return [pair(i) for i in range(total)]
        # Deterministic strided sample across the src x dst product.
        return [pair(i * total // max_pairs) for i in range(max_pairs)]

    def _trace(self, max_pairs: int) -> None:
        assert self.network is not None
        network = self.network
        budget_per_pair = max(64, 50 * max(1, network.num_routers))
        for src, dst in self._sample_pairs(max_pairs):
            self._trace_pair(src, dst, budget_per_pair)
            self.pairs_traced += 1

    def _trace_pair(self, src: int, dst: int, budget: int) -> None:
        from repro.net.message import Message

        network = self.network
        assert network is not None
        interface = network.interfaces[src]
        packet = Message(0, src, dst, 1).packetize(1)[0]
        channel = interface._flit_out[0]
        if channel is None or channel.sink is None:
            return  # construction already validates terminal wiring
        router = channel.sink
        in_port = channel.sink_port
        injection_vcs = list(
            getattr(interface, "injection_vcs", None)
            or network.routing_class.injection_vcs(network.num_vcs)
        )

        visited: Set[Tuple] = set()
        queue: List[Tuple[Any, int, int, Any, Node]] = []
        for vc in injection_vcs:
            node = (channel.full_name, vc)
            queue.append((router, in_port, vc, self._clone(packet), node))

        expansions = 0
        while queue:
            device, port, vc, pkt, cur_node = queue.pop()
            if not isinstance(device, Router):
                continue
            key = (device.full_name, port, vc, _state_signature(pkt))
            if key in visited:
                continue
            visited.add(key)
            expansions += 1
            if expansions > budget:
                self.truncated = True
                self.trace_warnings.append(
                    f"dependency trace for pair {src}->{dst} exceeded the "
                    f"expansion budget ({budget}); cycle analysis may be "
                    f"incomplete"
                )
                return
            self._expand(device, port, vc, pkt, cur_node, queue)

    def _expand(
        self,
        router: Router,
        in_port: int,
        in_vc: int,
        pkt,
        cur_node: Node,
        queue: List,
    ) -> None:
        probe = self._clone(pkt)
        try:
            engine = router.routing_algorithm(in_port)
            response = engine.respond(probe, in_vc)
        except RoutingError as exc:
            self.response_errors.append(str(exc))
            return
        if not response:
            self.response_errors.append(
                f"{router.full_name}: routing returned no candidates for "
                f"packet to terminal {probe.destination} on port {in_port} "
                f"vc {in_vc}"
            )
            return
        # The escape resource is the single least-preferred candidate:
        # the (port, vc) a blocked packet can always fall back to.
        escape = response[-1]
        for out_port, out_vc in response:
            out_channel = router._flit_out[out_port]
            if out_channel is None or out_channel.sink is None:
                # respond() validates wiring; only reachable with a
                # bypassed validation, but stay safe.
                self.response_errors.append(
                    f"{router.full_name}: routing selected unwired port "
                    f"{out_port}"
                )
                continue
            node = (out_channel.full_name, out_vc)
            self.full_edges.setdefault(cur_node, set()).add(node)
            if (out_port, out_vc) == escape:
                self.escape_edges.setdefault(cur_node, set()).add(node)
            sink = out_channel.sink
            if isinstance(sink, Interface):
                if sink.interface_id != probe.destination:
                    self.trace_warnings.append(
                        f"{router.full_name}: packet for terminal "
                        f"{probe.destination} would eject at interface "
                        f"{sink.interface_id} via port {out_port}"
                    )
                continue
            hop = self._clone(probe)
            hop.hop_count += 1
            queue.append((sink, out_channel.sink_port, out_vc, hop, node))

    @staticmethod
    def _clone(packet):
        clone = copy.copy(packet)
        clone.routing_state = dict(packet.routing_state)
        return clone


# ---------------------------------------------------------------------------
# cycle detection (iterative Tarjan SCC)
# ---------------------------------------------------------------------------


def _find_cycle(edges: Dict[Node, Set[Node]]) -> Optional[List[Node]]:
    """Return the nodes of one strongly connected cycle, or None.

    A cycle is an SCC with more than one node, or a self-loop.
    """
    for node, targets in edges.items():
        if node in targets:
            return [node]
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    counter = itertools.count()
    nodes = set(edges)
    for targets in edges.values():
        nodes |= targets

    for root in sorted(nodes):
        if root in index:
            continue
        work: List[Tuple[Node, Optional[iter]]] = [(root, None)]
        while work:
            node, children = work[-1]
            if children is None:
                index[node] = lowlink[node] = next(counter)
                stack.append(node)
                on_stack.add(node)
                children = iter(sorted(edges.get(node, ())))
                work[-1] = (node, children)
            advanced = False
            for child in children:
                if child not in index:
                    work.append((child, None))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    return list(reversed(scc))
    return None


def _render_cycle(cycle: List[Node], limit: int = 6) -> str:
    shown = cycle[:limit]
    text = " -> ".join(f"{name}:vc{vc}" for name, vc in shown)
    if len(cycle) > limit:
        text += f" -> ... ({len(cycle)} channels total)"
    return text


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


class _GraphRule(LintRule):
    layer = GRAPH_LAYER


@factory.register(LintRule, "G001")
class ConstructionRule(_GraphRule):
    rule_id = "G001"
    description = "Network construction failed (wiring or settings fault)"

    def check(self, ctx: LintContext):
        graph = ctx.graph()
        if graph.constructed or graph.construction_error is None:
            return []
        return [
            Finding(
                "G001",
                Severity.ERROR,
                f"network construction failed: {graph.construction_error}",
                config_path="network",
            )
        ]


@factory.register(LintRule, "G002")
class UnconnectedPortRule(_GraphRule):
    rule_id = "G002"
    description = ("Router port left unwired (expected for edge routers of "
                   "some topologies, hence informational)")

    def check(self, ctx: LintContext):
        graph = ctx.graph()
        return [
            Finding(
                "G002",
                Severity.INFO,
                f"router port {name}.port{port} is unconnected",
                config_path="network",
            )
            for name, port in graph.unwired_ports
        ]


@factory.register(LintRule, "G003")
class RoutingResponseRule(_GraphRule):
    rule_id = "G003"
    description = ("Routing algorithm produced an invalid response during "
                   "the dependency trace (unwired port, unregistered VC, "
                   "or no candidates)")

    def check(self, ctx: LintContext):
        graph = ctx.graph()
        seen: Set[str] = set()
        findings = []
        for message in graph.response_errors:
            if message in seen:
                continue
            seen.add(message)
            findings.append(
                Finding(
                    "G003",
                    Severity.ERROR,
                    message,
                    config_path="network.routing",
                )
            )
        return findings


@factory.register(LintRule, "G004")
class EscapeCycleRule(_GraphRule):
    rule_id = "G004"
    description = ("Cycle in the escape channel dependency graph: the "
                   "routing algorithm can deadlock on this topology")

    def check(self, ctx: LintContext):
        graph = ctx.graph()
        if graph.escape_cycle is None:
            return []
        return [
            Finding(
                "G004",
                Severity.ERROR,
                f"escape channel dependency graph is cyclic -- the routing "
                f"algorithm can deadlock: "
                f"{_render_cycle(graph.escape_cycle)}",
                config_path="network.routing.algorithm",
            )
        ]


@factory.register(LintRule, "G005")
class AdaptiveCycleRule(_GraphRule):
    rule_id = "G005"
    description = ("Cycle in the full channel dependency graph only: safe "
                   "iff the acyclic escape class is always reachable "
                   "(Duato's criterion)")

    def check(self, ctx: LintContext):
        graph = ctx.graph()
        if graph.full_cycle is None or graph.escape_cycle is not None:
            return []
        return [
            Finding(
                "G005",
                Severity.INFO,
                f"full channel dependency graph is cyclic (adaptive class); "
                f"escape class is acyclic, so this is deadlock-free by "
                f"Duato's criterion: {_render_cycle(graph.full_cycle)}",
                config_path="network.routing.algorithm",
            )
        ]


@factory.register(LintRule, "G006")
class TraceAnomalyRule(_GraphRule):
    rule_id = "G006"
    description = ("Dependency trace anomaly: wrong-terminal ejection or a "
                   "truncated trace")

    def check(self, ctx: LintContext):
        graph = ctx.graph()
        seen: Set[str] = set()
        findings = []
        for message in graph.trace_warnings:
            if message in seen:
                continue
            seen.add(message)
            findings.append(
                Finding(
                    "G006",
                    Severity.WARNING,
                    message,
                    config_path="network",
                )
            )
        return findings

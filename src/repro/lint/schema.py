"""Declarative schema of the simulation configuration tree.

The schema mirrors how the component constructors actually consume
``Settings`` (paper §III-C): a :class:`BlockSpec` per settings block,
with a :class:`KeySpec` per leaf key, nested child blocks, and
model-selector keys (``type`` / ``architecture`` / ``algorithm`` /
``topology``) whose chosen value pulls in a per-model *variant* block
of extra keys.

Model selectors are validated against the live object factory
(:mod:`repro.factory`), so user models registered at import time are
first-class: a block whose selected model is registered but has no
packaged variant is treated as *open* (unknown keys tolerated), because
the linter cannot know which keys a user model reads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Marker default for required keys.
REQUIRED = object()


class KeySpec:
    """One leaf setting: expected kind, default, and value constraints."""

    __slots__ = ("kind", "default", "choices", "minimum", "maximum", "allow_null")

    def __init__(
        self,
        kind: str,
        default: Any = REQUIRED,
        choices: Optional[Tuple[str, ...]] = None,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        allow_null: bool = False,
    ):
        self.kind = kind
        self.default = default
        self.choices = choices
        self.minimum = minimum
        self.maximum = maximum
        self.allow_null = allow_null

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def type_ok(self, value: Any) -> bool:
        if value is None:
            return self.allow_null
        if self.kind == "uint":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind == "float":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.kind == "str":
            return isinstance(value, str)
        if self.kind == "bool":
            return isinstance(value, bool)
        if self.kind == "int_list":
            return isinstance(value, list) and all(
                isinstance(v, int) and not isinstance(v, bool) for v in value
            )
        if self.kind == "list":
            return isinstance(value, list)
        return True  # "any"


class BlockSpec:
    """One settings block: keys, nested blocks, and a model selector."""

    __slots__ = ("keys", "children", "selector", "selector_default",
                 "variants", "list_item", "open", "required_children")

    def __init__(
        self,
        keys: Optional[Dict[str, KeySpec]] = None,
        children: Optional[Dict[str, "BlockSpec"]] = None,
        selector: Optional[Tuple[str, str]] = None,
        selector_default: Optional[str] = None,
        variants: Optional[Dict[str, "BlockSpec"]] = None,
        list_item: Optional["BlockSpec"] = None,
        open: bool = False,
        required_children: Tuple[str, ...] = (),
    ):
        self.keys = dict(keys or {})
        self.children = dict(children or {})
        #: (selector key, factory base name), e.g. ("type", "TrafficPattern").
        self.selector = selector
        #: Model chosen when the selector key is absent (None = required).
        self.selector_default = selector_default
        self.variants = dict(variants or {})
        self.list_item = list_item
        self.open = open
        #: Child block names whose absence is an error at construction.
        self.required_children = tuple(required_children)

    def variant_for(self, model: str) -> Optional["BlockSpec"]:
        return self.variants.get(model)


# ---------------------------------------------------------------------------
# factory base-class resolution (lazy, to avoid import cycles)
# ---------------------------------------------------------------------------


def factory_base(name: str) -> type:
    """Resolve a schema base-class name to the class the factory keys on."""
    from repro.net.interface import Interface
    from repro.net.network import Network
    from repro.router.arbiter import Arbiter
    from repro.router.base import Router
    from repro.router.congestion import CongestionSensor
    from repro.routing.base import RoutingAlgorithm
    from repro.workload.application import Application
    from repro.workload.injection import InjectionProcess
    from repro.workload.size import MessageSizeDistribution
    from repro.workload.traffic import TrafficPattern

    return {
        "Network": Network,
        "Router": Router,
        "RoutingAlgorithm": RoutingAlgorithm,
        "Interface": Interface,
        "Application": Application,
        "TrafficPattern": TrafficPattern,
        "MessageSizeDistribution": MessageSizeDistribution,
        "InjectionProcess": InjectionProcess,
        "CongestionSensor": CongestionSensor,
        "Arbiter": Arbiter,
    }[name]


#: Packaged topology -> routing algorithm compatibility (mirrors each
#: Network subclass's ``compatible_routing`` property; user algorithms
#: additionally declare a ``topology`` class attribute, which
#: :func:`repro.lint.config_rules` honors).
TOPOLOGY_ROUTING: Dict[str, Tuple[str, ...]] = {
    "torus": ("torus_dimension_order", "torus_minimal_adaptive"),
    "hyperx": ("hyperx_dimension_order", "hyperx_valiant", "hyperx_ugal"),
    "folded_clos": ("clos_deterministic", "clos_adaptive"),
    "dragonfly": ("dragonfly_minimal", "dragonfly_valiant", "dragonfly_ugal"),
    "parking_lot": ("chain",),
}


# ---------------------------------------------------------------------------
# the schema tree
# ---------------------------------------------------------------------------


def _arbiter_block() -> BlockSpec:
    return BlockSpec(
        keys={},
        selector=("type", "Arbiter"),
        selector_default="round_robin",
        variants={
            "round_robin": BlockSpec(),
            "age_based": BlockSpec(),
            "random": BlockSpec(),
            "fixed_priority": BlockSpec(),
        },
    )


def _congestion_sensor_block() -> BlockSpec:
    return BlockSpec(
        keys={
            "latency": KeySpec("uint", default=1, minimum=0),
            "granularity": KeySpec("str", default="vc", choices=("vc", "port")),
            "source": KeySpec(
                "str",
                default="downstream",
                choices=("output", "downstream", "both"),
            ),
        },
        selector=("type", "CongestionSensor"),
        selector_default="credit",
        variants={"credit": BlockSpec()},
    )


def _crossbar_scheduler_block() -> BlockSpec:
    return BlockSpec(
        keys={
            "flow_control": KeySpec(
                "str",
                default="flit_buffer",
                choices=("flit_buffer", "packet_buffer", "winner_take_all"),
            ),
        },
        children={"arbiter": _arbiter_block()},
    )


def _router_block() -> BlockSpec:
    return BlockSpec(
        keys={
            "input_queue_depth": KeySpec("uint", default=16, minimum=1),
            "core_latency": KeySpec("uint", default=1, minimum=0),
        },
        children={
            "congestion_sensor": _congestion_sensor_block(),
            "vc_scheduler": BlockSpec(children={"arbiter": _arbiter_block()}),
        },
        selector=("architecture", "Router"),
        variants={
            "input_queued": BlockSpec(
                keys={"output_staging_depth": KeySpec("uint", default=2, minimum=1)},
                children={"crossbar_scheduler": _crossbar_scheduler_block()},
            ),
            "output_queued": BlockSpec(
                keys={
                    "output_queue_depth": KeySpec(
                        "uint", default=None, minimum=1, allow_null=True
                    )
                },
                children={"output_arbiter": _arbiter_block()},
            ),
            "input_output_queued": BlockSpec(
                keys={"output_queue_depth": KeySpec("uint", default=64, minimum=1)},
                children={
                    "crossbar_scheduler": _crossbar_scheduler_block(),
                    "output_arbiter": _arbiter_block(),
                },
            ),
        },
    )


def _interface_block() -> BlockSpec:
    return BlockSpec(
        keys={},
        selector=("type", "Interface"),
        selector_default="standard",
        variants={
            "standard": BlockSpec(
                keys={
                    "max_packet_size": KeySpec("uint", default=16, minimum=1),
                    "ejection_buffer_size": KeySpec("uint", default=64, minimum=1),
                    "injection_vcs": KeySpec("int_list", default=None),
                }
            ),
        },
    )


def _routing_block() -> BlockSpec:
    return BlockSpec(
        keys={},
        selector=("algorithm", "RoutingAlgorithm"),
        variants={
            "torus_dimension_order": BlockSpec(),
            "torus_minimal_adaptive": BlockSpec(),
            "hyperx_dimension_order": BlockSpec(),
            "hyperx_valiant": BlockSpec(),
            "hyperx_ugal": BlockSpec(
                keys={"ugal_bias": KeySpec("float", default=0.0)}
            ),
            "clos_deterministic": BlockSpec(),
            "clos_adaptive": BlockSpec(),
            "dragonfly_minimal": BlockSpec(),
            "dragonfly_valiant": BlockSpec(),
            "dragonfly_ugal": BlockSpec(
                keys={"ugal_bias": KeySpec("float", default=0.0)}
            ),
            "chain": BlockSpec(),
        },
    )


def _network_block() -> BlockSpec:
    return BlockSpec(
        keys={
            "num_vcs": KeySpec("uint", default=1, minimum=1),
            "channel_latency": KeySpec("uint", default=1, minimum=1),
            "terminal_channel_latency": KeySpec("uint", default=1, minimum=1),
            "channel_period": KeySpec("uint", default=1, minimum=1),
        },
        children={
            "router": _router_block(),
            "interface": _interface_block(),
            "routing": _routing_block(),
        },
        selector=("topology", "Network"),
        required_children=("router", "routing"),
        variants={
            "torus": BlockSpec(
                keys={
                    "dimension_widths": KeySpec("int_list", minimum=2),
                    "concentration": KeySpec("uint", default=1, minimum=1),
                }
            ),
            "hyperx": BlockSpec(
                keys={
                    "dimension_widths": KeySpec("int_list", minimum=2),
                    "concentration": KeySpec("uint", default=1, minimum=1),
                }
            ),
            "folded_clos": BlockSpec(
                keys={
                    "half_radix": KeySpec("uint", minimum=1),
                    "num_levels": KeySpec("uint", minimum=2),
                }
            ),
            "dragonfly": BlockSpec(
                keys={
                    "group_size": KeySpec("uint", minimum=2),
                    "global_links": KeySpec("uint", minimum=1),
                    "concentration": KeySpec("uint", default=1, minimum=1),
                    "num_groups": KeySpec("uint", default=None, minimum=2),
                    "global_latency": KeySpec("uint", default=None, minimum=1),
                }
            ),
            "parking_lot": BlockSpec(
                keys={
                    "length": KeySpec("uint", minimum=2),
                    "concentration": KeySpec("uint", default=1, minimum=1),
                }
            ),
        },
    )


def _traffic_block() -> BlockSpec:
    return BlockSpec(
        keys={},
        selector=("type", "TrafficPattern"),
        selector_default="uniform_random",
        variants={
            "uniform_random": BlockSpec(
                keys={"allow_self": KeySpec("bool", default=False)}
            ),
            "bit_complement": BlockSpec(),
            "tornado": BlockSpec(),
            "transpose": BlockSpec(),
            "bit_reverse": BlockSpec(),
            "neighbor": BlockSpec(keys={"offset": KeySpec("int", default=1)}),
            "random_permutation": BlockSpec(),
            "all_to_one": BlockSpec(
                keys={"target": KeySpec("uint", default=0, minimum=0)}
            ),
            "uniform_to_root": BlockSpec(),
        },
    )


def _message_size_block() -> BlockSpec:
    return BlockSpec(
        keys={},
        selector=("type", "MessageSizeDistribution"),
        selector_default="constant",
        variants={
            "constant": BlockSpec(keys={"size": KeySpec("uint", default=1, minimum=1)}),
            "uniform": BlockSpec(
                keys={
                    "min_size": KeySpec("uint", default=1, minimum=1),
                    "max_size": KeySpec("uint", minimum=1),
                }
            ),
            "probability": BlockSpec(
                keys={
                    "sizes": KeySpec("int_list"),
                    "weights": KeySpec("list"),
                }
            ),
        },
    )


def _injection_block() -> BlockSpec:
    return BlockSpec(
        keys={},
        selector=("type", "InjectionProcess"),
        selector_default="bernoulli",
        variants={"bernoulli": BlockSpec(), "periodic": BlockSpec()},
    )


def _application_block() -> BlockSpec:
    return BlockSpec(
        keys={
            "injection_rate": KeySpec("float", default=0.0, minimum=0.0),
        },
        children={
            "traffic": _traffic_block(),
            "message_size": _message_size_block(),
            "injection": _injection_block(),
        },
        selector=("type", "Application"),
        variants={
            "blast": BlockSpec(
                keys={
                    "warmup_duration": KeySpec("uint", default=0, minimum=0),
                    "generate_duration": KeySpec("uint", default=0, minimum=0),
                    "warmup_mode": KeySpec(
                        "str", default="fixed", choices=("fixed", "auto")
                    ),
                    "warmup_check_period": KeySpec("uint", default=500, minimum=1),
                    "warmup_tolerance": KeySpec("float", default=0.05, minimum=0.0),
                }
            ),
            "pulse": BlockSpec(
                keys={
                    "delay": KeySpec("uint", default=0, minimum=0),
                    "duration": KeySpec("uint", minimum=1),
                    "num_terminals": KeySpec("uint", default=None, minimum=1),
                }
            ),
            "request_reply": BlockSpec(
                keys={
                    "response_size": KeySpec("uint", default=None, minimum=1),
                    "warmup_duration": KeySpec("uint", default=0, minimum=0),
                    "generate_duration": KeySpec("uint", default=0, minimum=0),
                }
            ),
        },
    )


def root_schema() -> BlockSpec:
    """The schema of a full simulation configuration document."""
    return BlockSpec(
        required_children=("network", "workload"),
        children={
            "simulator": BlockSpec(
                keys={
                    "seed": KeySpec("uint", default=12345, minimum=0),
                    "max_time": KeySpec("uint", default=None, minimum=1,
                                        allow_null=True),
                },
                children={
                    "monitor": BlockSpec(
                        keys={
                            "period": KeySpec("uint", default=0, minimum=0),
                            "print": KeySpec("bool", default=False),
                        }
                    )
                },
            ),
            "network": _network_block(),
            "workload": BlockSpec(
                children={
                    "applications": BlockSpec(list_item=_application_block()),
                },
                required_children=("applications",),
            ),
            "output": BlockSpec(
                keys={
                    "message_log": KeySpec("str", default=None),
                    "summary": KeySpec("str", default=None),
                }
            ),
        },
    )


#: Required top-level blocks (``Simulation`` raises without them).
REQUIRED_BLOCKS: List[str] = ["network", "workload"]

#: Per-model injection-rate VC constraints used by the cross-field rules:
#: routing algorithm name -> callable(num_vcs, network_raw) -> error or None.


def vc_constraint_error(algorithm: str, num_vcs: int,
                        network_raw: Dict[str, Any]) -> Optional[str]:
    """Why ``num_vcs`` is unusable with ``algorithm``, or None if fine.

    Mirrors the constructor-time checks of the packaged routing
    algorithms so a bad pairing is reported before construction.
    """
    if algorithm == "torus_dimension_order":
        if num_vcs < 2 or num_vcs % 2 != 0:
            return (
                "torus_dimension_order needs an even num_vcs >= 2 for the "
                f"dateline scheme, got {num_vcs}"
            )
    elif algorithm == "torus_minimal_adaptive":
        if num_vcs < 4 or num_vcs % 4 != 0:
            return (
                "torus_minimal_adaptive needs num_vcs divisible by 4 "
                f"(escape pairs + adaptive class), got {num_vcs}"
            )
    elif algorithm in ("hyperx_valiant", "hyperx_ugal"):
        widths = network_raw.get("dimension_widths")
        if isinstance(widths, list) and widths:
            needed = 2 * len(widths)
            if num_vcs < needed:
                return (
                    f"{algorithm} needs num_vcs >= {needed} "
                    f"(2 hops per dimension), got {num_vcs}"
                )
    elif algorithm == "dragonfly_minimal":
        if num_vcs < 3:
            return f"dragonfly_minimal needs num_vcs >= 3, got {num_vcs}"
    elif algorithm in ("dragonfly_valiant", "dragonfly_ugal"):
        if num_vcs < 5:
            return f"{algorithm} needs num_vcs >= 5, got {num_vcs}"
    return None


def injection_vcs_for(algorithm: str, num_vcs: int) -> Optional[List[int]]:
    """The VC set a packaged algorithm injects on, or None if unknown."""
    from repro import factory
    from repro.routing.base import RoutingAlgorithm

    if not factory.is_registered(RoutingAlgorithm, algorithm):
        return None
    cls = factory.lookup(RoutingAlgorithm, algorithm)
    try:
        return list(cls.injection_vcs(num_vcs))
    except Exception:  # noqa: BLE001 - a broken classmethod is not our finding
        return None

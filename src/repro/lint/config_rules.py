"""Config-layer lint rules (C001..C009).

C001..C005 come out of a single declarative schema walk
(:func:`walk_schema`); C006..C009 are cross-field rules connecting
settings that live in different blocks but must agree -- the VC counts
shared by routers, channels, and routing algorithms, and the credit /
buffer-depth arithmetic of the paper's credit-accounting case study
(§VI-B) turned into a static check.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro import factory, models
from repro.config.suggest import closest
from repro.lint.findings import Finding, Severity
from repro.lint.rules import CONFIG_LAYER, LintContext, LintRule
from repro.lint.schema import (
    TOPOLOGY_ROUTING,
    BlockSpec,
    KeySpec,
    factory_base,
    injection_vcs_for,
    root_schema,
    vc_constraint_error,
)


def _join(path: str, key: Any) -> str:
    return f"{path}.{key}" if path else str(key)


# ---------------------------------------------------------------------------
# the schema walk (shared by rules C001..C005)
# ---------------------------------------------------------------------------


def walk_schema(raw: dict) -> Iterator[Finding]:
    """Validate ``raw`` against the declarative schema.

    Yields findings tagged C001 (unknown key), C002 (wrong type),
    C003 (bad value), C004 (missing required setting/block), and
    C005 (unknown model name).
    """
    models.load_all()  # populate the factory before validating selectors
    yield from _walk_block(root_schema(), raw, "")


def _walk_block(spec: BlockSpec, data: Any, path: str) -> Iterator[Finding]:
    if spec.list_item is not None:
        if not isinstance(data, list):
            yield Finding(
                "C002",
                Severity.ERROR,
                f"expected a list of blocks, got {type(data).__name__}",
                config_path=path or "<root>",
            )
            return
        for index, item in enumerate(data):
            yield from _walk_block(spec.list_item, item, _join(path, index))
        return

    if not isinstance(data, dict):
        yield Finding(
            "C002",
            Severity.ERROR,
            f"expected a settings block (dict), got {type(data).__name__}",
            config_path=path or "<root>",
        )
        return

    known = set(spec.keys) | set(spec.children)
    variant: Optional[BlockSpec] = None
    open_block = spec.open

    if spec.selector is not None:
        selector_key, base_name = spec.selector
        known.add(selector_key)
        model = data.get(selector_key, spec.selector_default)
        if model is None:
            yield Finding(
                "C004",
                Severity.ERROR,
                f"missing required setting {_join(path, selector_key)!r} "
                f"(selects the {base_name} model)",
                config_path=_join(path, selector_key),
            )
        elif not isinstance(model, str):
            yield Finding(
                "C002",
                Severity.ERROR,
                f"model selector must be a string, got {model!r}",
                config_path=_join(path, selector_key),
            )
        else:
            base = factory_base(base_name)
            registered = factory.names(base)
            if not factory.is_registered(base, model):
                match = closest(model, registered)
                yield Finding(
                    "C005",
                    Severity.ERROR,
                    f"unknown {base_name} model {model!r}; "
                    f"known: {registered}",
                    config_path=_join(path, selector_key),
                    suggestion=f"did you mean {match!r}?" if match else None,
                )
            else:
                variant = spec.variant_for(model)
                if variant is None:
                    # A registered user model: its keys are unknowable.
                    open_block = True

    merged_keys: Dict[str, KeySpec] = dict(spec.keys)
    merged_children: Dict[str, BlockSpec] = dict(spec.children)
    if variant is not None:
        merged_keys.update(variant.keys)
        merged_children.update(variant.children)
        known |= set(variant.keys) | set(variant.children)
        open_block = open_block or variant.open

    if not open_block:
        for key in data:
            if key not in known:
                match = closest(key, known)
                yield Finding(
                    "C001",
                    Severity.WARNING,
                    f"unknown setting {_join(path, key)!r} "
                    f"(silently ignored by the simulator)",
                    config_path=_join(path, key),
                    suggestion=f"did you mean {match!r}?" if match else None,
                )

    for name in spec.required_children:
        if name not in data:
            yield Finding(
                "C004",
                Severity.ERROR,
                f"missing required settings block {_join(path, name)!r}",
                config_path=_join(path, name),
            )

    for key, key_spec in merged_keys.items():
        if key not in data:
            if key_spec.required:
                yield Finding(
                    "C004",
                    Severity.ERROR,
                    f"missing required setting {_join(path, key)!r}",
                    config_path=_join(path, key),
                )
            continue
        yield from _check_value(key_spec, data[key], _join(path, key))

    for key, child in merged_children.items():
        if key in data:
            yield from _walk_block(child, data[key], _join(path, key))


_KIND_LABEL = {
    "uint": "a non-negative integer",
    "int": "an integer",
    "float": "a number",
    "str": "a string",
    "bool": "a boolean",
    "int_list": "a list of integers",
    "list": "a list",
    "any": "a value",
}


def _check_value(spec: KeySpec, value: Any, path: str) -> Iterator[Finding]:
    if not spec.type_ok(value):
        yield Finding(
            "C002",
            Severity.ERROR,
            f"setting must be {_KIND_LABEL.get(spec.kind, spec.kind)}, "
            f"got {value!r}",
            config_path=path,
        )
        return
    if value is None:
        return
    if spec.choices is not None and value not in spec.choices:
        match = closest(str(value), spec.choices)
        yield Finding(
            "C003",
            Severity.ERROR,
            f"setting value {value!r} not in {list(spec.choices)}",
            config_path=path,
            suggestion=f"did you mean {match!r}?" if match else None,
        )
        return
    minimum = spec.minimum
    if spec.kind == "uint" and minimum is None:
        minimum = 0
    if spec.kind in ("uint", "int", "float") and minimum is not None:
        if value < minimum:
            yield Finding(
                "C003",
                Severity.ERROR,
                f"setting value {value!r} below minimum {minimum}",
                config_path=path,
            )
    if spec.kind in ("uint", "int", "float") and spec.maximum is not None:
        if value > spec.maximum:
            yield Finding(
                "C003",
                Severity.ERROR,
                f"setting value {value!r} above maximum {spec.maximum}",
                config_path=path,
            )
    if spec.kind == "int_list" and spec.minimum is not None:
        for index, item in enumerate(value):
            if item < spec.minimum:
                yield Finding(
                    "C003",
                    Severity.ERROR,
                    f"element {index} ({item}) below minimum {spec.minimum}",
                    config_path=path,
                )


# ---------------------------------------------------------------------------
# raw-config accessors shared by the cross-field rules
# ---------------------------------------------------------------------------


def _block(raw: dict, *path: str) -> dict:
    node: Any = raw
    for key in path:
        if not isinstance(node, dict):
            return {}
        node = node.get(key, {})
    return node if isinstance(node, dict) else {}


def _value(raw: dict, *path: str, default: Any = None) -> Any:
    node: Any = raw
    for key in path[:-1]:
        if not isinstance(node, dict):
            return default
        node = node.get(key, {})
    if not isinstance(node, dict):
        return default
    return node.get(path[-1], default)


def _is_uint(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


# ---------------------------------------------------------------------------
# schema-walk rules
# ---------------------------------------------------------------------------


class _SchemaWalkRule(LintRule):
    """Base for rules whose findings come out of the shared schema walk."""

    layer = CONFIG_LAYER

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return [f for f in ctx.schema_findings() if f.rule_id == self.rule_id]


@factory.register(LintRule, "C001")
class UnknownKeyRule(_SchemaWalkRule):
    rule_id = "C001"
    description = ("Unknown setting key: the simulator would silently ignore "
                   "it (did-you-mean suggestion included)")


@factory.register(LintRule, "C002")
class WrongTypeRule(_SchemaWalkRule):
    rule_id = "C002"
    description = "Setting value has the wrong type for its key"


@factory.register(LintRule, "C003")
class BadValueRule(_SchemaWalkRule):
    rule_id = "C003"
    description = "Setting value out of range or not among the allowed choices"


@factory.register(LintRule, "C004")
class MissingRequiredRule(_SchemaWalkRule):
    rule_id = "C004"
    description = "Required setting or settings block is missing"


@factory.register(LintRule, "C005")
class UnknownModelRule(_SchemaWalkRule):
    rule_id = "C005"
    description = ("Model selector names no registered factory model "
                   "(did-you-mean suggestion over the registry)")


# ---------------------------------------------------------------------------
# cross-field rules
# ---------------------------------------------------------------------------


@factory.register(LintRule, "C006")
class RoutingTopologyRule(LintRule):
    rule_id = "C006"
    layer = CONFIG_LAYER
    description = ("Routing algorithm is not compatible with the configured "
                   "topology")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        from repro.routing.base import RoutingAlgorithm

        raw = ctx.raw
        topology = _value(raw, "network", "topology")
        algorithm = _value(raw, "network", "routing", "algorithm")
        if not isinstance(topology, str) or not isinstance(algorithm, str):
            return []  # C004/C002 already cover the malformed cases
        models.load_all()
        if not factory.is_registered(RoutingAlgorithm, algorithm):
            return []  # C005 covers it
        if algorithm in TOPOLOGY_ROUTING.get(topology, ()):
            return []
        declared = getattr(
            factory.lookup(RoutingAlgorithm, algorithm), "topology", None
        )
        if declared is not None and declared in ("*", topology):
            return []
        expected = TOPOLOGY_ROUTING.get(topology)
        return [
            Finding(
                "C006",
                Severity.ERROR,
                f"routing algorithm {algorithm!r} is not compatible with "
                f"topology {topology!r}"
                + (f"; expected one of {list(expected)}" if expected else ""),
                config_path="network.routing.algorithm",
            )
        ]


@factory.register(LintRule, "C007")
class VcConsistencyRule(LintRule):
    rule_id = "C007"
    layer = CONFIG_LAYER
    description = ("VC counts inconsistent across routers, channels, and the "
                   "routing algorithm's VC discipline")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raw = ctx.raw
        findings: List[Finding] = []
        network = _block(raw, "network")
        num_vcs = network.get("num_vcs", 1)
        algorithm = _value(raw, "network", "routing", "algorithm")
        if not _is_uint(num_vcs) or num_vcs < 1:
            return []  # C002/C003 cover it
        if isinstance(algorithm, str):
            error = vc_constraint_error(algorithm, num_vcs, network)
            if error is not None:
                findings.append(
                    Finding(
                        "C007",
                        Severity.ERROR,
                        error,
                        config_path="network.num_vcs",
                    )
                )
        injection_vcs = _value(raw, "network", "interface", "injection_vcs")
        if isinstance(injection_vcs, list) and all(
            _is_uint(v) for v in injection_vcs
        ):
            out_of_range = [v for v in injection_vcs if v >= num_vcs]
            if out_of_range:
                findings.append(
                    Finding(
                        "C007",
                        Severity.ERROR,
                        f"interface injection VCs {out_of_range} out of range "
                        f"[0, {num_vcs})",
                        config_path="network.interface.injection_vcs",
                    )
                )
            elif isinstance(algorithm, str):
                allowed = injection_vcs_for(algorithm, num_vcs)
                if allowed is not None:
                    outside = sorted(set(injection_vcs) - set(allowed))
                    if outside:
                        findings.append(
                            Finding(
                                "C007",
                                Severity.WARNING,
                                f"interface injects on VCs {outside}, outside "
                                f"the injection class {allowed} declared by "
                                f"{algorithm!r}; its deadlock-avoidance "
                                f"scheme may be void",
                                config_path="network.interface.injection_vcs",
                            )
                        )
        return findings


@factory.register(LintRule, "C008")
class CreditBufferDepthRule(LintRule):
    rule_id = "C008"
    layer = CONFIG_LAYER
    description = ("Packet-granularity flow control needs whole-packet credit "
                   "up front: max_packet_size must not exceed the downstream "
                   "buffer depth (paper §VI-B/§VI-C as a static check)")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raw = ctx.raw
        router = _block(raw, "network", "router")
        flow_control = _value(
            raw, "network", "router", "crossbar_scheduler", "flow_control",
            default="flit_buffer",
        )
        if flow_control != "packet_buffer":
            return []
        architecture = router.get("architecture")
        max_packet = _value(
            raw, "network", "interface", "max_packet_size", default=16
        )
        if not _is_uint(max_packet):
            return []
        # The credit pool the crossbar checks against a whole packet:
        # IQ bids drain toward the downstream router's input buffer (or
        # the interface's ejection buffer on the last hop); IOQ bids
        # drain into the router's own output queue.
        pools: List[tuple] = []
        if architecture == "input_output_queued":
            depth = router.get("output_queue_depth", 64)
            pools.append(("network.router.output_queue_depth", depth))
        else:
            depth = router.get("input_queue_depth", 16)
            pools.append(("network.router.input_queue_depth", depth))
            ejection = _value(
                raw, "network", "interface", "ejection_buffer_size", default=64
            )
            pools.append(("network.interface.ejection_buffer_size", ejection))
        findings: List[Finding] = []
        for path, depth in pools:
            if not _is_uint(depth):
                continue
            if max_packet > depth:
                findings.append(
                    Finding(
                        "C008",
                        Severity.ERROR,
                        f"packet_buffer flow control requires whole-packet "
                        f"credit: a {max_packet}-flit packet can never fit "
                        f"the {depth}-flit buffer at {path} -- the crossbar "
                        f"would stall such packets forever",
                        config_path=path,
                    )
                )
        return findings


@factory.register(LintRule, "C009")
class EjectionBandwidthDelayRule(LintRule):
    rule_id = "C009"
    layer = CONFIG_LAYER
    description = ("Ejection buffer smaller than the terminal channel's "
                   "bandwidth-delay product caps throughput below line rate")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raw = ctx.raw
        interface_type = _value(
            raw, "network", "interface", "type", default="standard"
        )
        if interface_type != "standard":
            return []
        ejection = _value(
            raw, "network", "interface", "ejection_buffer_size", default=64
        )
        latency = _value(
            raw, "network", "terminal_channel_latency", default=1
        )
        period = _value(raw, "network", "channel_period", default=1)
        if not (_is_uint(ejection) and _is_uint(latency) and _is_uint(period)):
            return []
        if period < 1:
            return []
        # Round trip: flit down (latency) + credit back (latency), at one
        # flit per channel period.
        needed = math.ceil(2 * latency / period)
        if ejection >= needed:
            return []
        return [
            Finding(
                "C009",
                Severity.WARNING,
                f"ejection_buffer_size {ejection} is below the terminal "
                f"channel's bandwidth-delay product ({needed} flits for a "
                f"{latency}-tick channel at one flit per {period} ticks): "
                f"ejection will cap accepted throughput below line rate",
                config_path="network.interface.ejection_buffer_size",
            )
        ]

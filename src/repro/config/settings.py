"""JSON-based configuration (paper §III-C, Listing 1).

SuperSim configures simulations through JSON, exploiting its natural
hierarchy: the top level has ``network`` and ``workload`` blocks, the
``network`` block contains ``router`` and ``interface`` blocks, and so
on.  Constructors receive their own sub-block and pass children's
sub-blocks down without peeking into them.

On top of plain JSON this module implements the three extensions the
paper describes:

* **Command line overrides** -- ``path.to.key=type=value`` arguments,
  e.g. ``network.router.architecture=string=my_arch`` or
  ``network.concentration=uint=16``.
* **File inclusions** -- a string value of the form ``"$include(file)"``
  is replaced by the parsed content of that JSON file (paths resolve
  relative to the including file).
* **Object referencing** -- a string value of the form ``"$ref(a.b.c)"``
  is replaced by the value at that absolute dotted path in the fully
  merged document.  References may point at included content and may
  chain; cycles are detected and rejected.
"""

from __future__ import annotations

import copy
import json
import pathlib
import re
from typing import Any, Iterable, List, Optional, Tuple, Union

from repro.config.suggest import did_you_mean

_INCLUDE_RE = re.compile(r"^\$include\((?P<path>[^)]+)\)$")
_REF_RE = re.compile(r"^\$ref\((?P<path>[^)]+)\)$")
_BRACKET_RE = re.compile(r"\[(\d+)\]")

JsonValue = Union[None, bool, int, float, str, list, dict]


class SettingsError(ValueError):
    """Raised for malformed configuration input."""


# ---------------------------------------------------------------------------
# override parsing
# ---------------------------------------------------------------------------

_OVERRIDE_PARSERS = {
    "int": int,
    "uint": None,  # handled specially to enforce non-negativity
    "float": float,
    "string": str,
    "bool": None,  # handled specially
    "json": json.loads,
}


def parse_override(text: str) -> Tuple[List[str], JsonValue]:
    """Parse one ``path=type=value`` command line override.

    Returns ``(path_components, value)``.

    Numeric list indices may be written either dotted or bracketed:
    ``workload.applications.0.type`` and ``workload.applications[0].type``
    name the same leaf.

    >>> parse_override("network.concentration=uint=16")
    (['network', 'concentration'], 16)
    """
    parts = text.split("=", 2)
    if len(parts) != 3:
        raise SettingsError(
            f"override must look like path=type=value, got {text!r}"
        )
    path_text, type_name, value_text = parts
    if not path_text:
        raise SettingsError(f"override has empty path: {text!r}")
    if type_name not in _OVERRIDE_PARSERS:
        raise SettingsError(
            f"unknown override type {type_name!r} in {text!r}; "
            f"expected one of {sorted(_OVERRIDE_PARSERS)}"
        )
    if type_name == "uint":
        value: JsonValue = int(value_text)
        if value < 0:
            raise SettingsError(f"uint override is negative: {text!r}")
    elif type_name == "bool":
        lowered = value_text.lower()
        if lowered in ("true", "1", "yes"):
            value = True
        elif lowered in ("false", "0", "no"):
            value = False
        else:
            raise SettingsError(f"bad bool value in override: {text!r}")
    else:
        try:
            value = _OVERRIDE_PARSERS[type_name](value_text)
        except (ValueError, json.JSONDecodeError) as exc:
            raise SettingsError(f"bad {type_name} value in {text!r}: {exc}") from exc
    return split_path(path_text), value


def split_path(path_text: str) -> List[str]:
    """Split a dotted override path, normalizing ``a[0].b`` to ``a.0.b``."""
    return _BRACKET_RE.sub(r".\1", path_text).split(".")


def apply_override(root: dict, path: List[str], value: JsonValue) -> None:
    """Set ``value`` at dotted ``path`` inside ``root``, creating dicts.

    Numeric path components index into lists,
    e.g. ``workload.applications.0.type``.
    """
    node: Any = root
    for i, key in enumerate(path[:-1]):
        if isinstance(node, list):
            node = node[_list_index(node, key, path)]
        elif isinstance(node, dict):
            if key not in node:
                node[key] = {}
            node = node[key]
        else:
            raise SettingsError(
                f"cannot descend into non-container at "
                f"{'.'.join(path[: i + 1])!r}"
            )
    leaf = path[-1]
    if isinstance(node, list):
        node[_list_index(node, leaf, path)] = value
    elif isinstance(node, dict):
        node[leaf] = value
    else:
        raise SettingsError(f"cannot set key on non-container at {'.'.join(path)!r}")


def _list_index(node: list, key: str, path: List[str]) -> int:
    try:
        index = int(key)
    except ValueError:
        raise SettingsError(
            f"list index expected in path {'.'.join(path)!r}, got {key!r}"
        ) from None
    if not 0 <= index < len(node):
        raise SettingsError(
            f"list index {index} out of range in path {'.'.join(path)!r}"
        )
    return index


# ---------------------------------------------------------------------------
# includes and references
# ---------------------------------------------------------------------------


def _expand_includes(value: JsonValue, base_dir: pathlib.Path) -> JsonValue:
    if isinstance(value, str):
        match = _INCLUDE_RE.match(value)
        if match:
            target = base_dir / match.group("path")
            if not target.exists():
                raise SettingsError(f"$include target not found: {target}")
            with open(target, "r", encoding="utf-8") as handle:
                included = json.load(handle)
            return _expand_includes(included, target.parent)
        return value
    if isinstance(value, list):
        return [_expand_includes(item, base_dir) for item in value]
    if isinstance(value, dict):
        return {key: _expand_includes(item, base_dir) for key, item in value.items()}
    return value


def _lookup(root: JsonValue, path: List[str]) -> JsonValue:
    node = root
    for key in path:
        if isinstance(node, dict):
            if key not in node:
                raise SettingsError(f"$ref path not found: {'.'.join(path)!r}")
            node = node[key]
        elif isinstance(node, list):
            node = node[_list_index(node, key, path)]
        else:
            raise SettingsError(f"$ref descends into scalar: {'.'.join(path)!r}")
    return node


def _expand_refs(root: JsonValue) -> JsonValue:
    def resolve(value: JsonValue, active: Tuple[str, ...]) -> JsonValue:
        if isinstance(value, str):
            match = _REF_RE.match(value)
            if match:
                path_text = match.group("path")
                if path_text in active:
                    raise SettingsError(f"$ref cycle through {path_text!r}")
                target = _lookup(root, path_text.split("."))
                return resolve(copy.deepcopy(target), active + (path_text,))
            return value
        if isinstance(value, list):
            return [resolve(item, active) for item in value]
        if isinstance(value, dict):
            return {key: resolve(item, active) for key, item in value.items()}
        return value

    return resolve(root, ())


# ---------------------------------------------------------------------------
# Settings
# ---------------------------------------------------------------------------


class Settings:
    """A read-mostly view over a JSON configuration tree.

    ``Settings`` wraps a dict and provides typed accessors plus cheap
    sub-block extraction, so a Network constructor can do
    ``settings.child("router")`` and hand the result to the Router
    constructor without knowing anything about its content.
    """

    def __init__(self, data: Optional[dict] = None, path: str = ""):
        if data is None:
            data = {}
        if not isinstance(data, dict):
            raise SettingsError(f"settings block at {path or '<root>'!r} must be a dict")
        self._data = data
        self._path = path

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_file(
        cls, filename: Union[str, pathlib.Path], overrides: Iterable[str] = ()
    ) -> "Settings":
        """Load a JSON file, expand includes/refs, apply CLI overrides."""
        path = pathlib.Path(filename)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data = _expand_includes(data, path.parent)
        for override in overrides:
            keys, value = parse_override(override)
            apply_override(data, keys, value)
        data = _expand_refs(data)
        return cls(data)

    @classmethod
    def from_dict(cls, data: dict, overrides: Iterable[str] = ()) -> "Settings":
        """Build settings from an in-memory dict (deep-copied)."""
        data = copy.deepcopy(data)
        data = _expand_includes(data, pathlib.Path("."))
        for override in overrides:
            keys, value = parse_override(override)
            apply_override(data, keys, value)
        data = _expand_refs(data)
        return cls(data)

    # -- raw access -------------------------------------------------------------

    def raw(self) -> dict:
        """The underlying dict (not a copy -- treat as read-only)."""
        return self._data

    def to_dict(self) -> dict:
        """A deep copy of the underlying dict."""
        return copy.deepcopy(self._data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self._data, indent=indent, sort_keys=True)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def keys(self):
        return self._data.keys()

    def _where(self, key: str) -> str:
        return f"{self._path}.{key}" if self._path else key

    # -- typed accessors -----------------------------------------------------

    _MISSING = object()

    def get(self, key: str, default: Any = _MISSING) -> Any:
        if key in self._data:
            return self._data[key]
        if default is self._MISSING:
            raise SettingsError(
                f"missing required setting {self._where(key)!r}"
                f"{did_you_mean(key, self._data)}"
            )
        return default

    def get_int(self, key: str, default: Any = _MISSING) -> int:
        value = self.get(key, default)
        if isinstance(value, bool) or not isinstance(value, int):
            raise SettingsError(
                f"setting {self._where(key)!r} must be an int, got {value!r}"
            )
        return value

    def get_uint(self, key: str, default: Any = _MISSING) -> int:
        value = self.get_int(key, default)
        if value < 0:
            raise SettingsError(
                f"setting {self._where(key)!r} must be non-negative, got {value}"
            )
        return value

    def get_float(self, key: str, default: Any = _MISSING) -> float:
        value = self.get(key, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SettingsError(
                f"setting {self._where(key)!r} must be a number, got {value!r}"
            )
        return float(value)

    def get_str(self, key: str, default: Any = _MISSING) -> str:
        value = self.get(key, default)
        if not isinstance(value, str):
            raise SettingsError(
                f"setting {self._where(key)!r} must be a string, got {value!r}"
            )
        return value

    def get_bool(self, key: str, default: Any = _MISSING) -> bool:
        value = self.get(key, default)
        if not isinstance(value, bool):
            raise SettingsError(
                f"setting {self._where(key)!r} must be a bool, got {value!r}"
            )
        return value

    def get_list(self, key: str, default: Any = _MISSING) -> list:
        value = self.get(key, default)
        if not isinstance(value, list):
            raise SettingsError(
                f"setting {self._where(key)!r} must be a list, got {value!r}"
            )
        return value

    def get_int_list(self, key: str, default: Any = _MISSING) -> List[int]:
        value = self.get_list(key, default)
        for item in value:
            if isinstance(item, bool) or not isinstance(item, int):
                raise SettingsError(
                    f"setting {self._where(key)!r} must be a list of ints"
                )
        return list(value)

    # -- hierarchy -----------------------------------------------------------

    def child(self, key: str, default: Any = _MISSING) -> "Settings":
        """Extract a sub-block as a new Settings view.

        This is the mechanism by which constructors pass configuration
        down the component hierarchy (paper §III-C).
        """
        if key not in self._data:
            if default is self._MISSING:
                raise SettingsError(
                    f"missing settings block {self._where(key)!r}"
                    f"{did_you_mean(key, self._data)}"
                )
            return Settings(copy.deepcopy(default), self._where(key))
        value = self._data[key]
        if not isinstance(value, dict):
            raise SettingsError(
                f"settings block {self._where(key)!r} must be a dict, got {value!r}"
            )
        return Settings(value, self._where(key))

    def child_list(self, key: str) -> List["Settings"]:
        """Extract a list of sub-blocks (e.g. ``workload.applications``)."""
        value = self.get_list(key)
        children = []
        for index, item in enumerate(value):
            if not isinstance(item, dict):
                raise SettingsError(
                    f"element {index} of {self._where(key)!r} must be a dict"
                )
            children.append(Settings(item, f"{self._where(key)}.{index}"))
        return children

    def __repr__(self):
        return f"Settings({self._path or '<root>'!r}, keys={sorted(self._data)})"

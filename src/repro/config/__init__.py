"""Configuration subsystem (paper §III-C)."""

from repro.config.settings import (
    Settings,
    SettingsError,
    apply_override,
    parse_override,
)

__all__ = ["Settings", "SettingsError", "apply_override", "parse_override"]

"""Did-you-mean suggestions for configuration keys and model names.

Shared by :class:`~repro.config.settings.Settings` error messages and
the ``repro.lint`` rule engine, so a typo'd key produces the same
suggestion whether it surfaces at construction time or from ``sslint``.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional


def closest(name: str, candidates: Iterable[str], cutoff: float = 0.6) -> Optional[str]:
    """The best near-match for ``name`` among ``candidates``, or None."""
    matches = difflib.get_close_matches(str(name), [str(c) for c in candidates],
                                        n=1, cutoff=cutoff)
    return matches[0] if matches else None


def did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """A ``"; did you mean 'x'?"`` suffix, or ``""`` when nothing is close."""
    match = closest(name, candidates)
    return f"; did you mean {match!r}?" if match else ""

"""The Blast application: steady-state background traffic (paper §IV-A).

Blast injects at a constant rate through all four workload phases until
it receives the Kill command.  Its timeline (Fig. 5):

* **Warming**: injects unsampled traffic for ``warmup_duration`` ticks,
  then signals Ready.
* **Generating**: flags generated messages as sampled.  If
  ``generate_duration`` is positive, Complete is signalled after that
  long; with 0 Blast signals Complete immediately -- "it does not care
  how long the sampling lasts" -- and some other application (e.g.
  Pulse) determines the window.
* **Finishing**: stops flagging traffic but keeps injecting at the same
  constant rate; once every sampled message has exited the network it
  signals Done.
* **Draining**: stops injecting on Kill.
"""

from __future__ import annotations

from repro import factory
from repro.core.event import Event
from repro.net.message import Message
from repro.net.phases import EPS_CONTROL
from repro.workload.application import Application


@factory.register(Application, "blast")
class BlastApplication(Application):
    """Constant-rate traffic with a sampled measurement window.

    Extra settings:
        ``warmup_duration`` -- ticks of unsampled warmup (default 0:
            Ready immediately).  In ``auto`` mode this is the hard cap.
        ``generate_duration`` -- ticks of sampled generation before
            signalling Complete (default 0: Complete immediately after
            Start).
        ``warmup_mode`` -- ``"fixed"`` (default) signals Ready after
            ``warmup_duration``; ``"auto"`` detects steady state by
            watching the delivered-message mean latency over consecutive
            ``warmup_check_period``-tick windows and signalling Ready
            once it stops drifting by more than ``warmup_tolerance``
            (relative) for two consecutive checks.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.warmup_duration = self.settings.get_uint("warmup_duration", 0)
        self.generate_duration = self.settings.get_uint("generate_duration", 0)
        self.warmup_mode = self.settings.get_str("warmup_mode", "fixed")
        if self.warmup_mode not in ("fixed", "auto"):
            raise ValueError(f"bad warmup_mode {self.warmup_mode!r}")
        # Auto warmup detection knobs.
        self.warmup_check_period = self.settings.get_uint(
            "warmup_check_period", 500
        )
        self.warmup_tolerance = self.settings.get_float(
            "warmup_tolerance", 0.05
        )
        self._finishing = False
        self._warmup_window_latencies = []
        self._previous_warmup_mean = None
        self._warmup_stable_checks = 0

    # -- workload command hooks --------------------------------------------------

    def on_init(self) -> None:
        if self.injection_rate > 0.0:
            self.start_terminals()
        if self.warmup_mode == "auto" and self.injection_rate > 0.0:
            # Detect steady state: mean latency over consecutive check
            # windows stops moving.  warmup_duration acts as a hard cap.
            self.schedule(self._warmup_check, self.warmup_check_period,
                          EPS_CONTROL)
        elif self.warmup_duration > 0:
            self.schedule(self._warmup_over, self.warmup_duration, EPS_CONTROL)
        else:
            self.ready()

    def _warmup_over(self, event: Event) -> None:
        self.ready()

    def _warmup_check(self, event: Event) -> None:
        latencies = self._warmup_window_latencies
        self._warmup_window_latencies = []
        # warmup_duration caps auto-detection; without one, a generous
        # default cap guarantees the warming phase always terminates.
        cap = self.warmup_duration or 100 * self.warmup_check_period
        hit_cap = self.simulator.tick >= cap
        if latencies:
            mean = sum(latencies) / len(latencies)
            previous = self._previous_warmup_mean
            self._previous_warmup_mean = mean
            if previous is not None and previous > 0:
                drift = abs(mean - previous) / previous
                if drift <= self.warmup_tolerance:
                    self._warmup_stable_checks += 1
                else:
                    self._warmup_stable_checks = 0
        if self._warmup_stable_checks >= 2 or hit_cap:
            self.ready()
        else:
            self.schedule(self._warmup_check, self.warmup_check_period,
                          EPS_CONTROL)

    def on_start(self) -> None:
        self.sampling = True
        if self.generate_duration > 0:
            self.schedule(self._generation_over, self.generate_duration, EPS_CONTROL)
        else:
            self.complete()

    def _generation_over(self, event: Event) -> None:
        self.complete()

    def on_stop(self) -> None:
        self.sampling = False
        self._finishing = True
        self._check_done()

    def on_kill(self) -> None:
        self.stop_terminals()

    # -- sharded-runtime protocol -----------------------------------------------

    shard_delivery_target = "sampled"

    @classmethod
    def shard_schedule(cls, app_config: dict):
        if app_config.get("warmup_mode", "fixed") == "auto":
            return None  # Ready depends on observed latencies
        return (
            int(app_config.get("warmup_duration", 0)),
            int(app_config.get("generate_duration", 0)),
        )

    def shard_force_done(self) -> None:
        self._finishing = False

    # -- Done detection -------------------------------------------------------------

    def on_message_delivered(self, message: Message) -> None:
        if self.workload.phase.value == "warming" and self.warmup_mode == "auto":
            latency = message.latency()
            if latency is not None:
                self._warmup_window_latencies.append(latency)
        if self._finishing and message.sampled:
            self._check_done()

    def _check_done(self) -> None:
        if self._finishing and self.sampled_delivered >= self.sampled_created:
            self._finishing = False
            self.done()

"""Workload framework: the four-phase state machine, applications,
terminals, traffic patterns, size distributions, injection processes
(paper §IV-A)."""

from repro.workload.application import Application, Terminal
from repro.workload.blast import BlastApplication
from repro.workload.injection import InjectionProcess, create_injection_process
from repro.workload.pulse import PulseApplication
from repro.workload.request_reply import (
    RequestReplyApplication,
    RequestReplyTerminal,
)
from repro.workload.size import MessageSizeDistribution, create_size_distribution
from repro.workload.traffic import TrafficPattern, create_traffic_pattern
from repro.workload.workload import Phase, Workload, WorkloadError

__all__ = [
    "Application",
    "BlastApplication",
    "InjectionProcess",
    "MessageSizeDistribution",
    "Phase",
    "PulseApplication",
    "RequestReplyApplication",
    "RequestReplyTerminal",
    "Terminal",
    "TrafficPattern",
    "Workload",
    "WorkloadError",
    "create_injection_process",
    "create_size_distribution",
    "create_traffic_pattern",
]

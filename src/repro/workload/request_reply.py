"""The RequestReply application: transaction-oriented traffic.

SuperSim groups messages into *transactions* for request/response style
workloads (ssparse reports latency at packet, message, and transaction
granularity, §V).  This application exercises that layer: each terminal
issues request messages; the receiving terminal immediately answers
with a response message carrying the same transaction id; the
transaction completes when the response reaches the original requester.

Transaction latency (request creation to response delivery) is the
round-trip metric memory-semantic and RPC fabrics care about -- it is
what ssparse's transaction aggregation reports.

Lifecycle: like Blast, requests are generated at a constant rate
through all phases until Kill; requests created during the generating
phase are sampled.  Complete is signalled after ``generate_duration``;
Done once every sampled transaction has closed.
"""

from __future__ import annotations

from typing import Dict

from repro import factory
from repro.core.event import Event
from repro.net.message import Message
from repro.net.phases import EPS_CONTROL, EPS_GENERATE
from repro.workload.application import Application, Terminal


class RequestReplyTerminal(Terminal):
    """Issues requests and answers incoming requests with responses."""

    def create_message(self) -> Message:
        message = super().create_message()
        message.opaque = "request"
        return message

    def send_response(self, request: Message) -> None:
        application = self.application
        response = Message(
            application.application_id,
            self.terminal_id,
            request.source,
            application.response_size,
            transaction_id=request.transaction_id,
        )
        response.created_tick = self.simulator.tick
        response.sampled = request.sampled
        response.opaque = "response"
        self.interface.send_message(response)
        application.message_generated(response)


@factory.register(Application, "request_reply")
class RequestReplyApplication(Application):
    """Request/response transactions at a constant request rate.

    Extra settings:
        ``response_size`` -- response message size in flits (default:
            same as the request's size distribution mean, rounded up).
        ``warmup_duration`` / ``generate_duration`` -- as in Blast.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        default_response = max(1, round(self.size_distribution.mean()))
        self.response_size = self.settings.get_uint(
            "response_size", default_response
        )
        self.warmup_duration = self.settings.get_uint("warmup_duration", 0)
        self.generate_duration = self.settings.get_uint("generate_duration", 0)
        self._finishing = False
        # transaction id -> request creation tick (open transactions).
        self._open: Dict[int, int] = {}
        self.transactions_opened = 0
        self.transactions_closed = 0
        self.sampled_transactions_opened = 0
        self.sampled_transactions_closed = 0
        #: (latency, sampled) per closed transaction.
        self.transaction_latencies = []

    def _build_terminal(self, terminal_id: int) -> Terminal:
        return RequestReplyTerminal(
            self.simulator, f"terminal{terminal_id}", self, terminal_id, self
        )

    # -- workload command hooks ---------------------------------------------------

    def on_init(self) -> None:
        if self.injection_rate > 0.0:
            self.start_terminals()
        if self.warmup_duration > 0:
            self.schedule(lambda e: self.ready(), self.warmup_duration,
                          EPS_CONTROL)
        else:
            self.ready()

    def on_start(self) -> None:
        self.sampling = True
        if self.generate_duration > 0:
            self.schedule(lambda e: self.complete(), self.generate_duration,
                          EPS_CONTROL)
        else:
            self.complete()

    def on_stop(self) -> None:
        self.sampling = False
        self._finishing = True
        self._check_done()

    def on_kill(self) -> None:
        self.stop_terminals()

    # -- transaction bookkeeping -----------------------------------------------------

    def message_generated(self, message: Message) -> None:
        super().message_generated(message)
        if message.opaque == "request":
            self._open[message.transaction_id] = message.created_tick
            self.transactions_opened += 1
            if message.sampled:
                self.sampled_transactions_opened += 1

    def on_message_delivered(self, message: Message) -> None:
        if message.opaque == "request":
            # Answer from the destination terminal, next epsilon.
            responder = self.terminals[message.destination]
            self.schedule(
                lambda e, m=message: responder.send_response(m),
                0,
                epsilon=EPS_GENERATE,
            )
        elif message.opaque == "response":
            opened_tick = self._open.pop(message.transaction_id, None)
            if opened_tick is None:
                raise RuntimeError(
                    f"{self.full_name}: response for unknown transaction "
                    f"{message.transaction_id}"
                )
            self.transactions_closed += 1
            latency = self.simulator.tick - opened_tick
            self.transaction_latencies.append((latency, message.sampled))
            if message.sampled:
                self.sampled_transactions_closed += 1
            self._check_done()

    def _check_done(self) -> None:
        if (
            self._finishing
            and self.sampled_transactions_closed
            >= self.sampled_transactions_opened
        ):
            self._finishing = False
            self.done()

    # -- analysis helpers --------------------------------------------------------------

    def sampled_transaction_latencies(self):
        return [lat for lat, sampled in self.transaction_latencies if sampled]

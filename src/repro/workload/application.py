"""Application and Terminal base classes (paper §IV-A).

Traffic generation is hierarchical: a Workload contains one or more
Applications running concurrently, and each Application constructs one
Terminal per network endpoint.  Each Terminal generates the traffic for
its specific Application on its specific endpoint.

Applications participate in the Workload's four-phase handshake
(Fig. 4) by calling :meth:`Application.ready`, :meth:`complete`, and
:meth:`done`, and by implementing the ``on_init`` / ``on_start`` /
``on_stop`` / ``on_kill`` command hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.component import Component
from repro.core.event import Event
from repro.net.message import Message
from repro.net.phases import EPS_GENERATE
from repro.workload.injection import create_injection_process
from repro.workload.size import create_size_distribution
from repro.workload.traffic import create_traffic_pattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.core.rng import RandomManager
    from repro.core.simulator import Simulator
    from repro.net.network import Network
    from repro.workload.workload import Workload


class Application(Component):
    """Abstract application: builds one Terminal per endpoint.

    Common settings:
        ``injection_rate`` -- flits per terminal per channel cycle.
        ``traffic`` -- traffic pattern block (``type`` selects model).
        ``message_size`` -- size distribution block.
        ``injection`` -- injection process block.
    """

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Component,
        application_id: int,
        settings: "Settings",
        network: "Network",
        workload: "Workload",
        random_manager: "RandomManager",
    ):
        super().__init__(simulator, name, parent)
        self.application_id = application_id
        self.settings = settings
        self.network = network
        self.workload = workload
        self.random = random_manager

        self.injection_rate = settings.get_float("injection_rate", 0.0)
        self.traffic = create_traffic_pattern(
            settings.child("traffic", default={}),
            network.num_terminals,
            network,
            random_manager.generator(f"{name}.traffic"),
        )
        self.size_distribution = create_size_distribution(
            settings.child("message_size", default={}),
            random_manager.generator(f"{name}.size"),
        )
        self.injection_settings = settings.child("injection", default={})

        # Delivery accounting (drives the Done signal).
        self.messages_created = 0
        self.messages_delivered = 0
        self.sampled_created = 0
        self.sampled_delivered = 0
        self.flits_created = 0
        self.sampled_flits_created = 0
        self.sampling = False

        self.terminals: List[Terminal] = [
            self._build_terminal(tid) for tid in self._terminal_ids()
        ]
        for interface in network.interfaces:
            interface.message_delivered_listeners.append(self._message_delivered)

    # -- construction ---------------------------------------------------------

    def _terminal_ids(self) -> List[int]:
        """Endpoints this application drives (default: all)."""
        return list(range(self.network.num_terminals))

    def _build_terminal(self, terminal_id: int) -> "Terminal":
        return Terminal(
            self.simulator,
            f"terminal{terminal_id}",
            self,
            terminal_id,
            self,
        )

    # -- handshake signals to the workload ----------------------------------------

    def ready(self) -> None:
        self.workload.application_ready(self)

    def complete(self) -> None:
        self.workload.application_complete(self)

    def done(self) -> None:
        self.workload.application_done(self)

    # -- sharded-runtime protocol -----------------------------------------------

    #: Which deliveries the sharded coordinator counts toward this
    #: application's Done quota: ``"all"`` messages or only ``"sampled"``
    #: ones (see repro.partition.runtime).
    shard_delivery_target = "all"

    @classmethod
    def shard_schedule(cls, app_config: dict):
        """Static (ready_tick, complete_offset) for a config, or None.

        The sharded runtime replaces the Ready/Complete handshake with a
        statically derived schedule: every worker must raise the phase
        barriers at the same tick without observing deliveries.  Return
        ``(ready_tick, complete_offset)`` -- Ready fires at
        ``ready_tick`` and Complete at ``t_start + complete_offset`` --
        when this configuration's handshake is time-driven, or ``None``
        when it depends on runtime feedback (which places the config
        outside the sharded scope even if the S-rules found no hazard).
        The base class declines: subclasses opt in explicitly.
        """
        return None

    def shard_force_done(self) -> None:
        """Neutralize local Done detection under the sharded runtime.

        The coordinator replays the globally merged Done/Kill decision;
        a worker's own delivery-count trigger must not fire afterwards.
        Subclasses reset whatever latch their ``on_message_delivered``
        uses.  The base class has no Done detection, so: nothing.
        """

    # -- command hooks from the workload --------------------------------------------

    def on_init(self) -> None:
        """Simulation begins: the application is in the warming phase."""
        raise NotImplementedError

    def on_start(self) -> None:
        """All applications reported Ready: generating phase begins."""
        raise NotImplementedError

    def on_stop(self) -> None:
        """All applications reported Complete: finishing phase begins."""
        raise NotImplementedError

    def on_kill(self) -> None:
        """All applications reported Done: draining -- stop all traffic."""
        raise NotImplementedError

    # -- traffic bookkeeping ------------------------------------------------------------

    def message_generated(self, message: Message) -> None:
        self.messages_created += 1
        self.flits_created += message.num_flits
        if message.sampled:
            self.sampled_created += 1
            self.sampled_flits_created += message.num_flits

    def _message_delivered(self, message: Message) -> None:
        if message.application_id != self.application_id:
            return
        self.messages_delivered += 1
        if message.sampled:
            self.sampled_delivered += 1
        self.on_message_delivered(message)

    def on_message_delivered(self, message: Message) -> None:
        """Hook for subclasses (e.g. Done detection)."""

    # -- control over terminals ------------------------------------------------------------

    def start_terminals(self) -> None:
        for terminal in self.terminals:
            terminal.start_injecting()

    def stop_terminals(self) -> None:
        for terminal in self.terminals:
            terminal.stop_injecting()


class Terminal(Component):
    """Per-endpoint traffic generator for one application.

    The terminal samples geometric inter-arrival gaps from the
    application's injection process and creates messages with the
    application's traffic pattern and size distribution.  The
    ``sampled`` flag on each message mirrors the application's current
    sampling state (set during the generating phase).
    """

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Component,
        terminal_id: int,
        application: Application,
    ):
        super().__init__(simulator, name, parent)
        self.terminal_id = terminal_id
        self.application = application
        self.interface = application.network.interface(terminal_id)
        rate = application.injection_rate
        self.injection: Optional[object] = None
        if rate > 0.0:
            self.injection = create_injection_process(
                application.injection_settings,
                rate,
                application.size_distribution.mean(),
                application.random.generator(f"{application.name}.inj{terminal_id}"),
            )
        self._injecting = False
        self._pending_event: Optional[Event] = None

    # -- control -----------------------------------------------------------------

    def start_injecting(self) -> None:
        if self._injecting or self.injection is None:
            return
        self._injecting = True
        self._schedule_next()

    def stop_injecting(self) -> None:
        self._injecting = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None

    # -- generation ---------------------------------------------------------------------

    def _schedule_next(self) -> None:
        gap_cycles = self.injection.next_gap()
        gap_ticks = gap_cycles * self.application.network.channel_period
        self._pending_event = self.schedule(
            self._generate, gap_ticks, epsilon=EPS_GENERATE
        )

    def _generate(self, event: Event) -> None:
        self._pending_event = None
        if not self._injecting:
            return
        message = self.create_message()
        self.interface.send_message(message)
        self.application.message_generated(message)
        self._schedule_next()

    def create_message(self) -> Message:
        application = self.application
        destination = application.traffic.destination(self.terminal_id)
        size = application.size_distribution.sample()
        message = Message(
            application.application_id,
            self.terminal_id,
            destination,
            size,
        )
        message.created_tick = self.simulator.tick
        message.sampled = application.sampling
        return message

"""Message size distributions.

Factory-registered models mapping each generated message to a size in
flits.  ``mean()`` is used by injection processes to convert a flit
injection rate into a message arrival rate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro import factory

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings


class MessageSizeDistribution:
    """Abstract message size model."""

    def __init__(self, settings: "Settings", rng: np.random.Generator):
        self.settings = settings
        self.rng = rng

    def sample(self) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


def create_size_distribution(
    settings: "Settings", rng: np.random.Generator
) -> MessageSizeDistribution:
    kind = settings.get_str("type", "constant")
    return factory.create(MessageSizeDistribution, kind, settings, rng)


@factory.register(MessageSizeDistribution, "constant")
class ConstantSize(MessageSizeDistribution):
    """Every message is ``size`` flits (default 1)."""

    def __init__(self, settings, rng):
        super().__init__(settings, rng)
        self.size = settings.get_uint("size", 1)
        if self.size < 1:
            raise ValueError("message size must be >= 1 flit")

    def sample(self) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)


@factory.register(MessageSizeDistribution, "uniform")
class UniformSize(MessageSizeDistribution):
    """Uniform integer size in [``min_size``, ``max_size``]."""

    def __init__(self, settings, rng):
        super().__init__(settings, rng)
        self.min_size = settings.get_uint("min_size", 1)
        self.max_size = settings.get_uint("max_size")
        if not 1 <= self.min_size <= self.max_size:
            raise ValueError(
                f"need 1 <= min_size <= max_size, got "
                f"[{self.min_size}, {self.max_size}]"
            )

    def sample(self) -> int:
        return int(self.rng.integers(self.min_size, self.max_size + 1))

    def mean(self) -> float:
        return (self.min_size + self.max_size) / 2.0


@factory.register(MessageSizeDistribution, "probability")
class ProbabilitySize(MessageSizeDistribution):
    """Discrete distribution: ``sizes`` with matching ``weights``.

    Models bimodal request/response mixes (e.g. 90% 1-flit reads,
    10% 16-flit writes).
    """

    def __init__(self, settings, rng):
        super().__init__(settings, rng)
        self.sizes: List[int] = settings.get_int_list("sizes")
        weights = settings.get_list("weights")
        if len(weights) != len(self.sizes) or not self.sizes:
            raise ValueError("sizes and weights must be equal-length, non-empty")
        if any(s < 1 for s in self.sizes):
            raise ValueError("all sizes must be >= 1 flit")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.probabilities = np.array([w / total for w in weights])

    def sample(self) -> int:
        index = int(self.rng.choice(len(self.sizes), p=self.probabilities))
        return self.sizes[index]

    def mean(self) -> float:
        return float(np.dot(self.sizes, self.probabilities))

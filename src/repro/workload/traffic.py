"""Traffic patterns.

A traffic pattern maps a source terminal to a destination terminal for
each generated message.  Patterns are factory-registered so workloads
configure them by name.  Patterns that are adversarial for a specific
topology (e.g. tornado for a torus) receive the network object and read
the attributes they need, mirroring the paper's §IV design: the workload
is customized to the network by passing the required network attributes
to the traffic model.

Packaged patterns:

``uniform_random``  -- uniform over all terminals (excl. self by default)
``bit_complement``  -- dst = N-1-src (the BC traffic of case study B)
``tornado``         -- half-way around every dimension (torus adversary)
``transpose``       -- matrix transpose over sqrt(N) x sqrt(N)
``bit_reverse``     -- reverse the bits of the terminal id
``neighbor``        -- fixed offset modulo N
``random_permutation`` -- a fixed random permutation drawn at build time
``all_to_one``      -- everything to one target (parking-lot stress)
``uniform_to_root`` -- uniform random constrained to cross the top level
                       of a folded Clos (case study A's "uniform random
                       to root")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import factory

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.net.network import Network


class TrafficError(ValueError):
    """Raised when a pattern is misconfigured for the network."""


class TrafficPattern:
    """Abstract source-to-destination mapping."""

    def __init__(
        self,
        settings: "Settings",
        num_terminals: int,
        network: "Network",
        rng: np.random.Generator,
    ):
        self.settings = settings
        self.num_terminals = num_terminals
        self.network = network
        self.rng = rng

    def destination(self, source: int) -> int:
        raise NotImplementedError

    def _check_source(self, source: int) -> None:
        if not 0 <= source < self.num_terminals:
            raise TrafficError(f"source {source} out of range")


def create_traffic_pattern(
    settings: "Settings",
    num_terminals: int,
    network: "Network",
    rng: np.random.Generator,
) -> TrafficPattern:
    kind = settings.get_str("type", "uniform_random")
    return factory.create(
        TrafficPattern, kind, settings, num_terminals, network, rng
    )


@factory.register(TrafficPattern, "uniform_random")
class UniformRandomTraffic(TrafficPattern):
    """Uniform over all terminals; ``allow_self`` (default false)."""

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        self.allow_self = settings.get_bool("allow_self", False)
        if num_terminals < 2 and not self.allow_self:
            raise TrafficError("uniform_random without self needs >= 2 terminals")

    def destination(self, source: int) -> int:
        self._check_source(source)
        if self.allow_self:
            return int(self.rng.integers(self.num_terminals))
        dst = int(self.rng.integers(self.num_terminals - 1))
        return dst if dst < source else dst + 1


@factory.register(TrafficPattern, "bit_complement")
class BitComplementTraffic(TrafficPattern):
    """dst = N-1-src: every terminal pairs with its complement."""

    def destination(self, source: int) -> int:
        self._check_source(source)
        return self.num_terminals - 1 - source


@factory.register(TrafficPattern, "tornado")
class TornadoTraffic(TrafficPattern):
    """Move ceil(k/2)-1 positions around every dimension of a lattice.

    Requires a network exposing ``widths`` and ``concentration`` (torus
    or HyperX).
    """

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        if not hasattr(network, "widths"):
            raise TrafficError("tornado needs a lattice network (torus/hyperx)")

    def destination(self, source: int) -> int:
        from repro.topology.util import coords_to_index, index_to_coords

        self._check_source(source)
        widths = self.network.widths
        concentration = self.network.concentration
        router = source // concentration
        coords = list(index_to_coords(router, widths))
        for dim, width in enumerate(widths):
            shift = (width + 1) // 2 - 1
            if shift == 0 and width > 1:
                shift = width // 2  # degenerate small rings still move
            coords[dim] = (coords[dim] + shift) % width
        dst_router = coords_to_index(coords, widths)
        return dst_router * concentration + source % concentration


@factory.register(TrafficPattern, "transpose")
class TransposeTraffic(TrafficPattern):
    """Matrix transpose: requires N to be a perfect square."""

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        root = int(round(num_terminals**0.5))
        if root * root != num_terminals:
            raise TrafficError(
                f"transpose needs a square terminal count, got {num_terminals}"
            )
        self.side = root

    def destination(self, source: int) -> int:
        self._check_source(source)
        row, col = divmod(source, self.side)
        return col * self.side + row


@factory.register(TrafficPattern, "bit_reverse")
class BitReverseTraffic(TrafficPattern):
    """Reverse the binary representation; N must be a power of two."""

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        if num_terminals & (num_terminals - 1) != 0:
            raise TrafficError(
                f"bit_reverse needs a power-of-two terminal count, "
                f"got {num_terminals}"
            )
        self.bits = num_terminals.bit_length() - 1

    def destination(self, source: int) -> int:
        self._check_source(source)
        result = 0
        for bit in range(self.bits):
            if source & (1 << bit):
                result |= 1 << (self.bits - 1 - bit)
        return result


@factory.register(TrafficPattern, "neighbor")
class NeighborTraffic(TrafficPattern):
    """dst = (src + offset) mod N; ``offset`` defaults to 1."""

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        self.offset = settings.get_int("offset", 1)

    def destination(self, source: int) -> int:
        self._check_source(source)
        return (source + self.offset) % self.num_terminals


@factory.register(TrafficPattern, "random_permutation")
class RandomPermutationTraffic(TrafficPattern):
    """A fixed permutation drawn once from the pattern's RNG."""

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        self.permutation = rng.permutation(num_terminals)

    def destination(self, source: int) -> int:
        self._check_source(source)
        return int(self.permutation[source])


@factory.register(TrafficPattern, "all_to_one")
class AllToOneTraffic(TrafficPattern):
    """Everything converges on ``target`` (default terminal 0)."""

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        self.target = settings.get_uint("target", 0)
        if self.target >= num_terminals:
            raise TrafficError(f"target {self.target} out of range")

    def destination(self, source: int) -> int:
        self._check_source(source)
        return self.target


@factory.register(TrafficPattern, "uniform_to_root")
class UniformToRootTraffic(TrafficPattern):
    """Uniform random constrained to cross the root of a folded Clos.

    The destination's most significant base-k digit differs from the
    source's, so the up*/down* path must ascend to the top level --
    case study A's "uniform random to root" pattern.
    """

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        if not hasattr(network, "half_radix"):
            raise TrafficError("uniform_to_root needs a folded_clos network")

    def destination(self, source: int) -> int:
        self._check_source(source)
        k = self.network.half_radix
        n = self.network.num_levels
        subtree = k ** (n - 1)  # terminals under one top-level digit
        src_top = source // subtree
        other_top = int(self.rng.integers(k - 1))
        if other_top >= src_top:
            other_top += 1
        offset = int(self.rng.integers(subtree))
        return other_top * subtree + offset

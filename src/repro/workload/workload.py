"""The Workload state machine (paper §IV-A, Fig. 4).

The Workload monitors and controls the execution of all Applications
through a handshake protocol defining four phases:

1. **Warming** -- applications prepare the network (or immediately
   signal Ready if they have no warming to do).
2. **Generating** -- entered when all applications are Ready and the
   Workload broadcasts Start; the primary sampled-traffic window.
3. **Finishing** -- entered when all applications are Complete and the
   Workload broadcasts Stop; roll-over traffic that still needs to be
   sampled drains here.
4. **Draining** -- entered when all applications are Done and the
   Workload broadcasts Kill; no new traffic is generated, the network
   empties, the event queue runs dry, and the simulation ends.

The four-phase split (versus the classic warm/sample/drain) lets
multiple applications interoperate without being designed for each
other: Blast can Complete immediately while Pulse keeps generating.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from repro import factory
from repro.core.component import Component
from repro.core.event import Event
from repro.net.phases import EPS_CONTROL
from repro.workload.application import Application

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.core.rng import RandomManager
    from repro.core.simulator import Simulator
    from repro.net.network import Network


class Phase(enum.Enum):
    WARMING = "warming"
    GENERATING = "generating"
    FINISHING = "finishing"
    DRAINING = "draining"


class WorkloadError(RuntimeError):
    """Raised on handshake protocol violations."""


class Workload(Component):
    """Builds the applications and runs the four-phase handshake.

    Settings:
        ``applications`` -- list of application blocks; each block's
            ``type`` selects the factory model (``blast``, ``pulse``, ...).
    """

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        settings: "Settings",
        network: "Network",
        random_manager: "RandomManager",
    ):
        super().__init__(simulator, name, parent)
        self.network = network
        self.phase = Phase.WARMING
        self.applications: List[Application] = []
        self._ready: Dict[int, bool] = {}
        self._complete: Dict[int, bool] = {}
        self._done: Dict[int, bool] = {}
        # Sampling window endpoints (ticks), for statistics.
        self.start_tick: Optional[int] = None
        self.stop_tick: Optional[int] = None
        self.kill_tick: Optional[int] = None

        for app_id, app_settings in enumerate(settings.child_list("applications")):
            kind = app_settings.get_str("type")
            application = factory.create(
                Application,
                kind,
                simulator,
                f"app{app_id}",
                self,
                app_id,
                app_settings,
                network,
                self,
                random_manager,
            )
            self.applications.append(application)
            self._ready[app_id] = False
            self._complete[app_id] = False
            self._done[app_id] = False
        if not self.applications:
            raise WorkloadError("workload needs at least one application")

        # Kick everything off at tick 0.
        self.simulator.add_event(Event(self._init_event), 0, epsilon=EPS_CONTROL)

    # -- startup ---------------------------------------------------------------------

    def _init_event(self, event: Event) -> None:
        for application in self.applications:
            application.on_init()

    # -- signals from applications ------------------------------------------------------

    def application_ready(self, application: Application) -> None:
        self._signal(application, Phase.WARMING, self._ready, self._all_ready)

    def application_complete(self, application: Application) -> None:
        self._signal(
            application, Phase.GENERATING, self._complete, self._all_complete
        )

    def application_done(self, application: Application) -> None:
        self._signal(application, Phase.FINISHING, self._done, self._all_done)

    def _signal(self, application, expected_phase, table, on_all) -> None:
        if self.phase != expected_phase:
            raise WorkloadError(
                f"{application.full_name} signalled during {self.phase.value}, "
                f"expected {expected_phase.value}"
            )
        app_id = application.application_id
        if table[app_id]:
            raise WorkloadError(
                f"{application.full_name} signalled twice in {self.phase.value}"
            )
        table[app_id] = True
        if all(table.values()):
            # Broadcast the phase command "simultaneously" to every
            # application: same tick, one epsilon later.
            self.schedule(on_all, 0, epsilon=EPS_CONTROL)

    # -- broadcast commands ----------------------------------------------------------------

    def _all_ready(self, event: Event) -> None:
        self.phase = Phase.GENERATING
        self.start_tick = self.simulator.tick
        for application in self.applications:
            application.on_start()

    def _all_complete(self, event: Event) -> None:
        self.phase = Phase.FINISHING
        self.stop_tick = self.simulator.tick
        for application in self.applications:
            application.on_stop()

    def _all_done(self, event: Event) -> None:
        self.phase = Phase.DRAINING
        self.kill_tick = self.simulator.tick
        for application in self.applications:
            application.on_kill()

    # -- queries ------------------------------------------------------------------------------

    @property
    def drained(self) -> bool:
        """True once the Kill command has been broadcast."""
        return self.phase == Phase.DRAINING

    def window_ticks(self) -> Optional[int]:
        """Length of the sampling window (Start to Stop), if complete."""
        if self.start_tick is None or self.stop_tick is None:
            return None
        return self.stop_tick - self.start_tick

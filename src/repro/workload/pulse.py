"""The Pulse application: a temporary traffic disturbance (paper §IV-A).

Pulse idles through warming (it signals Ready immediately), then after
an optional delay injects a burst for a fixed duration during the
generating phase and signals Complete when its burst ends.  It signals
Done once every message of the burst has been delivered.  Combined with
Blast it forms the paper's canonical transient-analysis workload
(Fig. 5): Blast supplies steady sampled background traffic while Pulse
perturbs the network.
"""

from __future__ import annotations

from repro import factory
from repro.core.event import Event
from repro.net.message import Message
from repro.net.phases import EPS_CONTROL
from repro.workload.application import Application


@factory.register(Application, "pulse")
class PulseApplication(Application):
    """A fixed-duration traffic burst inside the sampling window.

    Extra settings:
        ``delay`` -- ticks after Start before the burst begins
            (default 0).
        ``duration`` -- burst length in ticks (required).
        ``num_terminals`` -- restrict the burst to the first N
            endpoints (default: all).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay = self.settings.get_uint("delay", 0)
        self.duration = self.settings.get_uint("duration")
        self._bursting = False
        self._done_sent = False

    def _terminal_ids(self):
        count = self.settings.get_uint(
            "num_terminals", self.network.num_terminals
        )
        if not 1 <= count <= self.network.num_terminals:
            raise ValueError(f"pulse num_terminals {count} out of range")
        return list(range(count))

    # -- workload command hooks -----------------------------------------------------

    def on_init(self) -> None:
        self.ready()  # no warming needed

    def on_start(self) -> None:
        self.sampling = True
        if self.injection_rate <= 0.0:
            self.complete()
            return
        self.schedule(self._begin_burst, max(self.delay, 1), EPS_CONTROL)

    def _begin_burst(self, event: Event) -> None:
        self._bursting = True
        self.start_terminals()
        self.schedule(self._end_burst, max(self.duration, 1), EPS_CONTROL)

    def _end_burst(self, event: Event) -> None:
        self._bursting = False
        self.stop_terminals()
        self.sampling = False
        self.complete()

    def on_stop(self) -> None:
        self._check_done()

    def on_kill(self) -> None:
        self.stop_terminals()

    # -- sharded-runtime protocol -----------------------------------------------

    @classmethod
    def shard_schedule(cls, app_config: dict):
        if float(app_config.get("injection_rate", 0.0)) <= 0.0:
            return (0, 0)  # Ready at init, Complete right at Start
        # on_start schedules the burst max(delay,1) ticks out; the burst
        # runs max(duration,1) ticks before _end_burst signals Complete.
        return (
            0,
            max(int(app_config.get("delay", 0)), 1)
            + max(int(app_config.get("duration", 1)), 1),
        )

    def shard_force_done(self) -> None:
        self._done_sent = True

    # -- Done detection ---------------------------------------------------------------

    def on_message_delivered(self, message: Message) -> None:
        self._check_done()

    def _check_done(self) -> None:
        # Complete is only signalled after the burst ends, so reaching
        # the finishing phase implies no more Pulse traffic will appear.
        if self._done_sent or self._bursting:
            return
        if self.workload.phase.value != "finishing":
            return
        if self.messages_delivered >= self.messages_created:
            self._done_sent = True
            self.done()

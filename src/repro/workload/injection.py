"""Injection processes.

An injection process turns a target flit injection rate (flits per
terminal per channel cycle, 1.0 = line rate) into a stream of message
generation times.  The packaged ``bernoulli`` process generates a
message each cycle with probability ``rate / mean_message_size``,
implemented efficiently by sampling geometric inter-arrival gaps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro import factory

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings


class InjectionProcess:
    """Abstract message arrival process (units: channel cycles)."""

    def __init__(
        self,
        settings: "Settings",
        rate: float,
        mean_message_size: float,
        rng: np.random.Generator,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"injection rate must be in [0, 1], got {rate}")
        if mean_message_size < 1.0:
            raise ValueError("mean message size must be >= 1 flit")
        self.settings = settings
        self.rate = rate
        self.mean_message_size = mean_message_size
        self.rng = rng

    @property
    def message_probability(self) -> float:
        """Per-cycle probability of starting a new message."""
        return self.rate / self.mean_message_size

    def next_gap(self) -> int:
        """Cycles until the next message generation (>= 1)."""
        raise NotImplementedError


def create_injection_process(
    settings: "Settings",
    rate: float,
    mean_message_size: float,
    rng: np.random.Generator,
) -> InjectionProcess:
    kind = settings.get_str("type", "bernoulli")
    return factory.create(
        InjectionProcess, kind, settings, rate, mean_message_size, rng
    )


@factory.register(InjectionProcess, "bernoulli")
class BernoulliInjection(InjectionProcess):
    """Independent per-cycle coin flips (geometric gaps)."""

    def next_gap(self) -> int:
        p = self.message_probability
        if p <= 0.0:
            raise RuntimeError("cannot sample gaps at zero injection rate")
        if p >= 1.0:
            return 1
        return int(self.rng.geometric(p))


@factory.register(InjectionProcess, "periodic")
class PeriodicInjection(InjectionProcess):
    """Deterministic arrivals every round(1/p) cycles."""

    def __init__(self, settings, rate, mean_message_size, rng):
        super().__init__(settings, rate, mean_message_size, rng)
        self._leftover = 0.0

    def next_gap(self) -> int:
        p = self.message_probability
        if p <= 0.0:
            raise RuntimeError("cannot sample gaps at zero injection rate")
        exact = 1.0 / p + self._leftover
        gap = max(1, int(exact))
        self._leftover = exact - gap
        return gap

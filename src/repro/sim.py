"""Top-level simulation builder and results (the public entry point).

A full simulation configuration has three blocks::

    {
      "simulator": {"seed": 12345, "max_time": 200000},
      "network":   {"topology": "torus", ...},
      "workload":  {"applications": [{"type": "blast", ...}]}
    }

Typical use::

    from repro import Simulation, Settings

    settings = Settings.from_file("myconfig.json", overrides=sys.argv[2:])
    simulation = Simulation(settings)
    results = simulation.run()
    print(results.latency(application_id=0).summary())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro import factory, models
from repro.config.settings import Settings
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.network import Network
from repro.stats.latency import LatencyDistribution
from repro.stats.records import MessageLog
from repro.workload.workload import Workload


class Simulation:
    """Builds the simulator, network, workload, and statistics."""

    def __init__(self, settings: Settings):
        models.load_all()
        self.settings = settings
        sim_settings = settings.child("simulator", default={})
        self.seed = sim_settings.get_uint("seed", 12345)
        self.default_max_time = sim_settings.get("max_time", None)

        self.simulator = Simulator()
        self.random = RandomManager(self.seed)
        network_settings = settings.child("network")
        topology = network_settings.get_str("topology")
        self.network: Network = factory.create(
            Network,
            topology,
            self.simulator,
            "network",
            None,
            network_settings,
            self.random,
        )
        self.message_log = MessageLog(self.network)
        self.workload = Workload(
            self.simulator,
            "workload",
            None,
            settings.child("workload"),
            self.network,
            self.random,
        )
        self.monitor = None
        monitor_settings = sim_settings.child("monitor", default={})
        period = monitor_settings.get_uint("period", 0)
        if period > 0:
            from repro.stats.monitor import ProgressMonitor

            self.monitor = ProgressMonitor(
                self.simulator,
                "monitor",
                self.network,
                period,
                print_samples=monitor_settings.get_bool("print", False),
            )

    def run(
        self,
        max_time: Optional[int] = None,
        max_events: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> "SimulationResults":
        """Run to completion (empty event queue) or to a safety limit.

        A saturated network never drains on its own; always pass (or
        configure) ``max_time`` when sweeping into saturation.
        """
        if max_time is None:
            max_time = self.default_max_time
        self.simulator.run(
            max_time=max_time, max_events=max_events, max_seconds=max_seconds
        )
        return SimulationResults(self)


class SimulationResults:
    """Post-run statistics over the message log and workload window."""

    def __init__(self, simulation: Simulation):
        self.simulation = simulation
        self.network = simulation.network
        self.workload = simulation.workload
        self.log = simulation.message_log

    # -- run health -------------------------------------------------------------

    @property
    def drained(self) -> bool:
        """Did the workload reach the draining phase (no saturation)?"""
        return self.workload.drained

    @property
    def end_tick(self) -> int:
        return self.simulation.simulator.tick

    @property
    def start_tick(self) -> Optional[int]:
        return self.workload.start_tick

    @property
    def stop_tick(self) -> Optional[int]:
        return self.workload.stop_tick

    # -- latency ------------------------------------------------------------------

    def records(self, application_id: Optional[int] = None, sampled_only: bool = True):
        records = self.log.records
        if application_id is not None:
            records = [r for r in records if r.application_id == application_id]
        if sampled_only:
            records = [r for r in records if r.sampled]
        return records

    def latency(
        self,
        application_id: Optional[int] = None,
        kind: str = "message",
        sampled_only: bool = True,
    ) -> LatencyDistribution:
        return LatencyDistribution.from_records(
            self.records(application_id, sampled_only), kind
        )

    # -- rates (flits per terminal per channel cycle) -----------------------------------

    def _window(self) -> Optional[int]:
        return self.workload.window_ticks()

    def offered_load(self, application_id: Optional[int] = None) -> float:
        """Sampled flits generated per terminal per channel cycle."""
        window = self._window()
        if not window:
            return float("nan")
        applications = self.workload.applications
        if application_id is not None:
            applications = [applications[application_id]]
        flits = sum(app.sampled_flits_created for app in applications)
        cycles = window / self.network.channel_period
        return flits / (self.network.num_terminals * cycles)

    def accepted_load(self) -> float:
        """Flits (any traffic) delivered during the sampling window,
        per terminal per channel cycle -- the throughput measure."""
        window = self._window()
        if not window:
            return float("nan")
        flits = self.log.flits_delivered_between(
            self.workload.start_tick, self.workload.stop_tick
        )
        cycles = window / self.network.channel_period
        return flits / (self.network.num_terminals * cycles)

    def delivered_fraction(self, application_id: Optional[int] = None) -> float:
        """Fraction of sampled messages that were delivered."""
        applications = self.workload.applications
        if application_id is not None:
            applications = [applications[application_id]]
        created = sum(app.sampled_created for app in applications)
        delivered = sum(app.sampled_delivered for app in applications)
        return delivered / created if created else float("nan")

    # -- summaries -----------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        latency = self.latency()
        return {
            "drained": self.drained,
            "end_tick": self.end_tick,
            "window": [self.start_tick, self.stop_tick],
            "offered_load": self.offered_load(),
            "accepted_load": self.accepted_load(),
            "delivered_fraction": self.delivered_fraction(),
            "latency": latency.summary() if not latency.empty else None,
            "events_executed": self.simulation.simulator.executed_events,
        }

"""Crossbar scheduling and flow control techniques (paper §VI-C).

The crossbar scheduler decides, each core-clock cycle, which input VC
sends a flit to each output port.  Configuring different flow control
techniques is done by giving this component various settings -- exactly
the knob case study C turns.  The three techniques, after Dally &
Towles [11]:

* **flit_buffer (FB)** -- flit-by-flit scheduling.  Two packets
  contending for an output interleave their flits, each taking 50% of
  the bandwidth.  Fair, no locking.
* **packet_buffer (PB)** -- packet-by-packet scheduling.  A packet only
  wins arbitration when there is enough downstream space for the
  *entire* packet; once it wins, the grant is locked until the tail
  flit enters the crossbar, so a streaming packet never credit-stalls.
* **winner_take_all (WTA)** -- hybrid: flit-level credit checks (a
  packet may start without full-packet credits) but the grant locks to
  the winner.  If the streaming packet stalls -- no credit, or its next
  flit has not arrived -- the lock is released and other packets with
  available credits take over.

The scheduler is microarchitecture-agnostic: the owning router supplies
a ``credits_available(out_port, out_vc)`` callback, which is downstream
credits for the IQ router and output-queue credits for the IOQ router.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.net.flit import Flit
from repro.net.packet import Packet
from repro.router.arbiter import Arbiter, create_arbiter

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings

FLIT_BUFFER = "flit_buffer"
PACKET_BUFFER = "packet_buffer"
WINNER_TAKE_ALL = "winner_take_all"

_FLOW_CONTROL_MODES = (FLIT_BUFFER, PACKET_BUFFER, WINNER_TAKE_ALL)


class Bid:
    """One input VC's request to move its front flit through the crossbar."""

    __slots__ = ("in_port", "in_vc", "packet", "flit", "out_port", "out_vc")

    def __init__(
        self,
        in_port: int,
        in_vc: int,
        packet: Packet,
        flit: Flit,
        out_port: int,
        out_vc: int,
    ):
        self.in_port = in_port
        self.in_vc = in_vc
        self.packet = packet
        self.flit = flit
        self.out_port = out_port
        self.out_vc = out_vc

    @property
    def remaining_flits(self) -> int:
        """Flits of the packet not yet through the crossbar (incl. this one)."""
        return self.packet.num_flits - self.flit.index

    @property
    def is_tail(self) -> bool:
        return self.flit.tail

    def key(self) -> Tuple[int, int]:
        return (self.in_port, self.in_vc)

    def __repr__(self):
        return (
            f"Bid(in={self.in_port}.{self.in_vc} -> "
            f"out={self.out_port}.{self.out_vc}, {self.flit!r})"
        )


class CrossbarScheduler:
    """Per-output arbitration with configurable flow control locking.

    Settings:
        ``flow_control`` -- one of ``flit_buffer`` (default),
            ``packet_buffer``, ``winner_take_all``.
        ``arbiter`` -- sub-block for the per-output arbiter
            (``type`` defaults to ``round_robin``).
    """

    def __init__(
        self,
        num_ports: int,
        num_vcs: int,
        settings: "Settings",
        credits_available: Callable[[int, int], int],
        rng=None,
    ):
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.flow_control = settings.get_str("flow_control", FLIT_BUFFER)
        if self.flow_control not in _FLOW_CONTROL_MODES:
            raise ValueError(
                f"unknown flow control {self.flow_control!r}; "
                f"expected one of {_FLOW_CONTROL_MODES}"
            )
        self.credits_available = credits_available
        arbiter_settings = settings.child("arbiter", default={})
        self._arbiters: List[Arbiter] = [
            create_arbiter(arbiter_settings, num_ports * num_vcs, rng)
            for _ in range(num_ports)
        ]
        # Lock table: out_port -> (in_port, in_vc) of the streaming owner.
        self._locks: Dict[int, Tuple[int, int]] = {}

    # -- introspection ---------------------------------------------------------

    def locked_owner(self, out_port: int) -> Optional[Tuple[int, int]]:
        return self._locks.get(out_port)

    def _flat(self, in_port: int, in_vc: int) -> int:
        return in_port * self.num_vcs + in_vc

    # -- the per-cycle decision ---------------------------------------------------

    def schedule(self, bids: List[Bid], now_tick: int) -> List[Bid]:
        """Grant at most one bid per output port; return the winners."""
        by_output: Dict[int, List[Bid]] = {}
        for bid in bids:
            by_output.setdefault(bid.out_port, []).append(bid)

        grants: List[Bid] = []
        if self._locks:
            # Outputs locked by owners that did not bid this cycle still
            # need WTA unlock processing, so visit all locked outputs too.
            outputs = sorted(set(by_output) | set(self._locks))
        else:
            outputs = sorted(by_output)
        schedule_output = self._schedule_output
        get_bids = by_output.get
        for out_port in outputs:
            granted = schedule_output(out_port, get_bids(out_port, ()), now_tick)
            if granted is not None:
                grants.append(granted)
        return grants

    def _schedule_output(
        self, out_port: int, bids: List[Bid], now_tick: int
    ) -> Optional[Bid]:
        owner = self._locks.get(out_port) if self._locks else None

        if owner is not None:
            owner_bid = next((b for b in bids if b.key() == owner), None)
            if self.flow_control == PACKET_BUFFER:
                # Locked until the tail enters the crossbar, full stop.
                if owner_bid is None:
                    return None  # upstream gap: output idles, lock holds
                if self.credits_available(out_port, owner_bid.out_vc) < 1:
                    raise RuntimeError(
                        "packet-buffer flow control credit-stalled: the "
                        "full-packet reservation was violated"
                    )
                return self._grant(out_port, owner_bid)
            if self.flow_control == WINNER_TAKE_ALL:
                can_stream = (
                    owner_bid is not None
                    and self.credits_available(out_port, owner_bid.out_vc) >= 1
                )
                if can_stream:
                    return self._grant(out_port, owner_bid)
                # Owner stalled: unlock and let others compete this cycle.
                del self._locks[out_port]
                owner = None
            # FLIT_BUFFER never locks, so owner is never set for it.

        credits_available = self.credits_available
        num_vcs = self.num_vcs
        if self.flow_control == PACKET_BUFFER:
            # Enough space for the whole remaining packet up front.
            eligible = [
                b for b in bids
                if credits_available(out_port, b.out_vc) >= b.remaining_flits
            ]
        else:
            eligible = [
                b for b in bids if credits_available(out_port, b.out_vc) >= 1
            ]
        if not eligible:
            return None
        if len(eligible) == 1:
            # Uncontested: the winner is forced, but the arbiter still
            # sees the request so its rotation/priority state advances
            # exactly as with the general path.
            winner = eligible[0]
            self._arbiters[out_port].arbitrate(
                [(winner.in_port * num_vcs + winner.in_vc, winner.packet)],
                now_tick,
            )
        else:
            requests = [
                (b.in_port * num_vcs + b.in_vc, b.packet) for b in eligible
            ]
            winner_index = self._arbiters[out_port].arbitrate(requests, now_tick)
            winner = next(
                b for b in eligible
                if b.in_port * num_vcs + b.in_vc == winner_index
            )
        if self.flow_control in (PACKET_BUFFER, WINNER_TAKE_ALL):
            self._locks[out_port] = winner.key()
        return self._grant(out_port, winner)

    def _eligible(self, out_port: int, bid: Bid) -> bool:
        credits = self.credits_available(out_port, bid.out_vc)
        if self.flow_control == PACKET_BUFFER:
            # Enough space for the whole remaining packet up front.
            return credits >= bid.remaining_flits
        return credits >= 1

    def _grant(self, out_port: int, bid: Bid) -> Bid:
        if bid.is_tail and self._locks.get(out_port) == bid.key():
            del self._locks[out_port]
        return bid

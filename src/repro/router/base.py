"""Router base class.

All three packaged router microarchitectures (OQ, IQ, IOQ -- paper
§IV-C) derive from :class:`Router`, which provides the structure they
share:

* per-(port, VC) input buffers with credit-returning pop,
* a routing engine per input port, built through the factory closure
  the Network provides (§IV-B),
* the input-VC state machine: route at the packet head, claim an
  output VC, stream, release at the tail,
* output VC ownership (wormhole: one packet streams on a given
  (output port, VC) at a time),
* a congestion sensor fed by credit/occupancy changes,
* per-core-cycle stepping with sleep/wake so idle routers consume no
  events.

Concrete architectures implement ``_step_cycle`` (one core-clock cycle
of allocation and transmission) and ``_has_work``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro import factory
from repro.core.clock import Clock
from repro.core.component import Component
from repro.core.event import Event
from repro.net.buffer import FlitBuffer
from repro.net.credit import Credit
from repro.net.device import PortedDevice
from repro.net.flit import Flit
from repro.net.packet import Packet
from repro.net.phases import EPS_STEP
from repro.router.arbiter import Arbiter, create_arbiter
from repro.router.congestion import SOURCE_DOWNSTREAM, CongestionSensor
from repro.routing.base import RoutingAlgorithm, RoutingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.core.simulator import Simulator

RoutingFactory = Callable[["Router", int], RoutingAlgorithm]


class InputVcState:
    """State machine for the packet at the front of one input VC buffer."""

    __slots__ = ("buffer", "packet", "candidates", "allocated", "out_port", "out_vc")

    def __init__(self, buffer: FlitBuffer):
        self.buffer = buffer
        self.packet: Optional[Packet] = None
        self.candidates: List[Tuple[int, int]] = []
        self.allocated = False
        self.out_port = -1
        self.out_vc = -1

    def reset(self) -> None:
        self.packet = None
        self.candidates = []
        self.allocated = False
        self.out_port = -1
        self.out_vc = -1


class Router(PortedDevice):
    """Abstract router; concrete architectures register with the factory.

    Common settings (each architecture adds its own):
        ``input_queue_depth`` -- per-VC input buffer capacity in flits.
        ``core_latency`` -- crossbar / queue-to-queue traversal latency
            in ticks.
        ``congestion_sensor`` -- sub-block for the sensor model
            (``type`` defaults to ``"credit"``).
    """

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        router_id: int,
        num_ports: int,
        num_vcs: int,
        settings: "Settings",
        routing_factory: RoutingFactory,
        core_clock: Clock,
        channel_clock: Clock,
    ):
        super().__init__(simulator, name, parent, num_ports, num_vcs)
        self.router_id = router_id
        self.settings = settings
        self.routing_factory = routing_factory
        self.core_clock = core_clock
        self.channel_clock = channel_clock
        self.address: Optional[Tuple[int, ...]] = None  # set by the network

        self.input_queue_depth = settings.get_uint("input_queue_depth", 16)
        self.core_latency = settings.get_uint("core_latency", 1)

        # Input buffers and their front-packet state machines.
        self._input_vcs: List[List[InputVcState]] = [
            [
                InputVcState(
                    FlitBuffer(self.input_queue_depth, f"{self.full_name}.in{p}.vc{v}")
                )
                for v in range(num_vcs)
            ]
            for p in range(num_ports)
        ]

        # Routing engines, one per input port (created in finalize()).
        self._routing: List[Optional[RoutingAlgorithm]] = [None] * num_ports

        # Wormhole output VC ownership: (port, vc) -> owner (in_port, in_vc).
        self._output_vc_owner: Dict[Tuple[int, int], Tuple[int, int]] = {}

        # VC scheduler: per-(output port, VC) arbitration among the input
        # VCs requesting it each cycle (created lazily).
        vc_scheduler_settings = settings.child("vc_scheduler", default={})
        self._vc_arbiter_settings = vc_scheduler_settings.child(
            "arbiter", default={}
        )
        self._vc_arbiters: Dict[Tuple[int, int], "Arbiter"] = {}

        # Congestion sensor.
        sensor_settings = settings.child("congestion_sensor", default={})
        sensor_type = sensor_settings.get_str("type", "credit")
        self.sensor: CongestionSensor = factory.create(
            CongestionSensor,
            sensor_type,
            simulator,
            "sensor",
            self,
            num_ports,
            num_vcs,
            sensor_settings,
        )

        self._step_scheduled = False
        self._finalized = False
        self._alloc_rotor = 0  # rotating start for VC allocation fairness
        # (port, vc) pairs whose input buffer holds at least one flit;
        # per-cycle stages scan only these instead of all ports x VCs.
        self._occupied_inputs: set = set()
        # (port, vc) pairs that *may* have a new packet at the buffer
        # front: fed by head-flit arrivals and tail pops, consumed by
        # _update_input_vcs, so the routing stage touches only inputs
        # with actual state changes instead of rescanning every cycle.
        self._route_pending: List[Tuple[int, int]] = []
        # Recycled by _update_input_vcs (per-event H001: the drained
        # list is reused instead of reallocated every routing pass).
        self._route_pending_spare: List[Tuple[int, int]] = []
        # (port, vc) pairs routed but not yet granted an output VC;
        # losers stay queued for the next allocation cycle.
        self._alloc_pending: List[Tuple[int, int]] = []

        # Hot-path dispatch: _wake/_step run once per arrival/cycle, so
        # the core-clock edge math is inlined for the ubiquitous
        # period-1/phase-0 clock instead of calling into Clock.
        self._core_period1 = core_clock.period == 1 and core_clock.phase == 0

        # Counters.
        self.flits_received = 0
        self.flits_sent = 0

    # -- construction-time wiring ------------------------------------------------

    def input_buffer_capacities(self, port: int) -> List[int]:
        return [self.input_queue_depth] * self.num_vcs

    def finalize(self) -> None:
        """Second construction phase, after the network wired and
        addressed this router: build routing engines and register the
        sensor's per-port capacities."""
        if self._finalized:
            raise RuntimeError(f"{self.full_name}: finalize() called twice")
        self._finalized = True
        for port in range(self.num_ports):
            if self.port_is_wired(port):
                self._routing[port] = self.routing_factory(self, port)
                tracker = self.output_credit_tracker(port)
                self.sensor.init_port(
                    port,
                    downstream_capacity=[
                        tracker.capacity(v) for v in range(tracker.num_vcs)
                    ],
                )
        self._finalize_arch()

    def _finalize_arch(self) -> None:
        """Architecture hook: register extra sensor sources, queues, ..."""

    def routing_algorithm(self, port: int) -> RoutingAlgorithm:
        algorithm = self._routing[port]
        if algorithm is None:
            raise RoutingError(f"{self.full_name}: input port {port} is not wired")
        return algorithm

    # -- congestion ---------------------------------------------------------------

    def congestion_status(self, port: int, vc: int) -> float:
        """The (delayed) congestion value routing engines consult."""
        return self.sensor.status(port, vc)

    # -- flit / credit reception -----------------------------------------------------

    def receive_flit(self, port: int, flit: Flit) -> None:
        self.flits_received += 1
        handle = flit._handle
        vc = flit._vc[handle]
        state = self._input_vcs[port][vc]
        buffer = state.buffer
        flits = buffer._flits
        if buffer._capacity is not None and len(flits) >= buffer._capacity:
            buffer.push(flit)  # raises BufferOverrunError with context
        flits.append(flit)
        self._occupied_inputs.add((port, vc))
        if flit._flags[handle] & 1 or state.packet is None:
            # A new packet may now be at the buffer front (or a protocol
            # violation needs flagging); either way the routing stage
            # must look at this input.
            self._route_pending.append((port, vc))
        if not self._step_scheduled:
            self._wake()

    def receive_credit(self, port: int, credit: Credit) -> None:
        vc = credit.vc
        # Trackers are wired before the first credit can arrive; the
        # give() call itself stays (CreditSan patches it).
        self._output_credits[port].give(vc)
        self.sensor.record(SOURCE_DOWNSTREAM, port, vc, -1)
        if not self._step_scheduled:
            self._wake()

    def send_flit_out(self, port: int, flit: Flit) -> None:
        """Transmit downstream, consuming a credit and notifying the sensor."""
        # Inlined PortedDevice.send_flit: the take-then-send order is the
        # contract CreditSan's conservation check relies on.
        vc = flit.vc
        self._output_credits[port].take(vc)
        self._flit_out[port].send_flit(flit)
        self.sensor.record(SOURCE_DOWNSTREAM, port, vc, +1)
        self.flits_sent += 1

    # -- stepping --------------------------------------------------------------------

    def _wake(self) -> None:
        if self._step_scheduled:
            return
        self._step_scheduled = True
        simulator = self.simulator
        tick = simulator.tick
        if self._core_period1:
            if simulator.epsilon >= EPS_STEP:
                tick += 1
        else:
            tick = self.core_clock.next_edge(tick)
            if tick == simulator.tick and simulator.epsilon >= EPS_STEP:
                tick = self.core_clock.following_edge(tick)
        simulator.call_at(tick, self._step, None, EPS_STEP)

    def _step(self, event: Event) -> None:
        self._step_scheduled = False
        self._step_cycle()
        if self._has_work():
            self._step_scheduled = True
            simulator = self.simulator
            if self._core_period1:
                tick = simulator.tick + 1
            else:
                tick = self.core_clock.following_edge(simulator.tick)
            simulator.call_at(tick, self._step, None, EPS_STEP)

    def _step_cycle(self) -> None:
        raise NotImplementedError

    def _has_work(self) -> bool:
        raise NotImplementedError

    def _any_input_flits(self) -> bool:
        return bool(self._occupied_inputs)

    # -- shared input-VC machinery ------------------------------------------------------

    def _update_input_vcs(self) -> None:
        """Route newly arrived head packets (front of each input VC).

        Only inputs flagged by head-flit arrivals or tail pops are
        examined (``_route_pending``); a streaming input never changes
        its front packet without one of those triggers.
        """
        pending = self._route_pending
        if not pending:
            return
        # Double-buffer: appends made while routing (tail releases in
        # the crossbar never overlap, but respond() hooks may retrigger)
        # land in the spare; the drained list becomes next call's spare.
        self._route_pending = self._route_pending_spare
        self._route_pending_spare = pending
        input_vcs = self._input_vcs
        for port, vc in pending:
            state = input_vcs[port][vc]
            flits = state.buffer._flits
            front = flits[0] if flits else None
            if front is None or state.packet is front.packet:
                continue
            if state.packet is not None:
                # The previous packet's tail has been popped but the
                # state was not reset -- a logic bug.
                raise RuntimeError(
                    f"{self.full_name}: input VC {port}.{vc} front changed "
                    f"while a packet was in flight"
                )
            if not front.head:
                raise RuntimeError(
                    f"{self.full_name}: non-head flit at front of an idle "
                    f"input VC {port}.{vc}: {front!r} (§IV-D order check)"
                )
            state.packet = front.packet
            algorithm = self._routing[port]
            if algorithm is None:
                raise RoutingError(
                    f"{self.full_name}: input port {port} is not wired"
                )
            state.candidates = algorithm.respond(front.packet, vc)
            state.allocated = False
            self._alloc_pending.append((port, vc))
        pending.clear()

    def _allocate_vcs(self) -> None:
        """Claim output VCs for routed packets (VC allocation stage).

        Each unallocated input VC requests its best *currently free*
        candidate; requests for the same (output port, VC) are resolved
        by that output VC's arbiter (the VC scheduler, configurable via
        the ``vc_scheduler.arbiter`` settings block -- round robin by
        default, age-based for parking-lot fairness, ...).  Losers try
        again next cycle.
        """
        pending = self._alloc_pending
        if not pending:
            return
        # Only inputs routed-but-unallocated live here: fed by the
        # routing stage, granted entries leave below, losers stay for
        # the next cycle.  Most cycles the list is empty and the whole
        # stage is one truth test.
        input_vcs = self._input_vcs
        routable = []
        for port, vc in pending:
            state = input_vcs[port][vc]
            if state.packet is None or state.allocated:
                continue
            routable.append((port, vc, state))
        if not routable:
            self._alloc_pending = []
            return
        owner_table = self._output_vc_owner
        admit = self._admit
        if len(routable) == 1:
            # One claimant: no arbitration possible; take the first free
            # candidate directly (identical to the general path below).
            port, vc, state = routable[0]
            for out_port, out_vc in state.candidates:
                key = (out_port, out_vc)
                if key in owner_table:
                    continue
                if not admit(out_port, out_vc, state.packet):
                    continue
                owner_table[key] = (port, vc)
                state.allocated = True
                state.out_port = out_port
                state.out_vc = out_vc
                self._on_vc_allocated(port, vc, state)
                self._alloc_pending = []
                return
            self._alloc_pending = [(port, vc)]
            return
        requests: Dict[Tuple[int, int], list] = {}
        for port, vc, state in routable:
            for out_port, out_vc in state.candidates:
                key = (out_port, out_vc)
                if key in owner_table:
                    continue
                if not admit(out_port, out_vc, state.packet):
                    continue
                requests.setdefault(key, []).append((port, vc, state))
                break  # one request per input VC per cycle
        if not requests:
            self._alloc_pending = [(port, vc) for port, vc, _ in routable]
            return
        now = self.simulator.tick
        num_vcs = self.num_vcs
        for key in sorted(requests):
            claimants = requests[key]
            if len(claimants) == 1:
                port, vc, state = claimants[0]
            else:
                arbiter = self._vc_arbiters.get(key)
                if arbiter is None:
                    arbiter = create_arbiter(
                        self._vc_arbiter_settings,
                        self.num_ports * num_vcs,
                    )
                    self._vc_arbiters[key] = arbiter
                flat = {
                    in_port * num_vcs + in_vc: (in_port, in_vc, in_state)
                    for in_port, in_vc, in_state in claimants
                }
                winner = arbiter.arbitrate(
                    [(index, entry[2].packet) for index, entry
                     in flat.items()],
                    now,
                )
                port, vc, state = flat[winner]
            out_port, out_vc = key
            owner_table[key] = (port, vc)
            state.allocated = True
            state.out_port = out_port
            state.out_vc = out_vc
            self._on_vc_allocated(port, vc, state)
        # Winners leave the queue; losers retry next cycle.
        self._alloc_pending = [
            (port, vc) for port, vc, state in routable if not state.allocated
        ]

    def _admit(self, out_port: int, out_vc: int, packet: Packet) -> bool:
        """Architecture hook: extra admission checks at VC allocation."""
        return True

    def _on_vc_allocated(self, port: int, vc: int, state: InputVcState) -> None:
        """Architecture hook: bookkeeping when a packet claims an output VC."""

    def _pop_input_flit(self, port: int, vc: int) -> Flit:
        """Dequeue the front flit, return its credit upstream, and manage
        ownership release at the tail."""
        state = self._input_vcs[port][vc]
        flits = state.buffer._flits
        flit = flits.popleft()  # IndexError on misuse, like FlitBuffer.pop
        empty = not flits
        if empty:
            self._occupied_inputs.discard((port, vc))
        handle = flit._handle
        flit._vc[handle] = state.out_vc
        # Via the public hook: subclasses (and fault-injection models)
        # override send_credit to intercept the upstream credit return.
        self.send_credit(port, vc)
        if flit._flags[handle] & 2:  # tail
            owner_key = (state.out_port, state.out_vc)
            owner = self._output_vc_owner.get(owner_key)
            if owner != (port, vc):
                raise RuntimeError(
                    f"{self.full_name}: tail flit released VC {owner_key} "
                    f"owned by {owner}, expected ({port}, {vc})"
                )
            del self._output_vc_owner[owner_key]
            flit.packet.hop_count += 1
            state.reset()
            if not empty:
                # The next queued packet's head is now at the front.
                self._route_pending.append((port, vc))
        return flit

    def input_occupancy(self, port: int, vc: int) -> int:
        return self._input_vcs[port][vc].buffer.occupancy

"""Input-output-queued (IOQ) router architecture (paper §IV-C, Fig. 6).

The IOQ router extends the standard input-queued architecture into a
combined input/output queued switch [Chuang et al.]: it has full
crossbar input *and* output speedup and pipeline optimizations in both
the input and output queues.  Flits wait in the input queues only until
credits are available for the *output queues*; after arriving in the
output queues they wait until downstream (next hop) credits are
available.

This is the architecture of case study B (§VI-B): its congestion sensor
can account credits per VC or per port, and can count output-queue
credits, downstream credits, or both -- six accounting styles total,
configured entirely through the ``congestion_sensor`` settings block.

With ``frequency speedup`` (core clock faster than the channel clock,
Table I uses 2x) the crossbar performs multiple grants per channel
cycle, which is what gives the architecture its output speedup.
"""

from __future__ import annotations

from typing import List

from repro import factory
from repro.core.event import Event
from repro.net.buffer import FlitBuffer
from repro.net.credit import CreditTracker
from repro.net.phases import EPS_PIPELINE
from repro.router.arbiter import Arbiter, RoundRobinArbiter, create_arbiter
from repro.router.base import Router
from repro.router.congestion import SOURCE_OUTPUT
from repro.router.crossbar_scheduler import FLIT_BUFFER, Bid, CrossbarScheduler


@factory.register(Router, "input_output_queued")
class InputOutputQueuedRouter(Router):
    """The combined input/output queued router model.

    Extra settings:
        ``output_queue_depth`` -- per-(port, VC) output queue capacity
            in flits (default 64).
        ``crossbar_scheduler`` -- flow control + arbiter configuration
            for the input-to-output-queue crossbar.
        ``output_arbiter`` -- arbiter choosing among VCs at each output
            each channel cycle (default round robin).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.output_queue_depth = self.settings.get_uint("output_queue_depth", 64)
        scheduler_settings = self.settings.child("crossbar_scheduler", default={})
        self.scheduler = CrossbarScheduler(
            self.num_ports,
            self.num_vcs,
            scheduler_settings,
            credits_available=self._output_queue_credits,
        )
        self._queues: List[List[FlitBuffer]] = [
            [
                FlitBuffer(
                    self.output_queue_depth, f"{self.full_name}.oq{p}.vc{v}"
                )
                for v in range(self.num_vcs)
            ]
            for p in range(self.num_ports)
        ]
        # Internal credits for output-queue slots (queued + in flight).
        self._oq_credits: List[CreditTracker] = [
            CreditTracker(
                [self.output_queue_depth] * self.num_vcs,
                owner_name=f"{self.full_name}.oqcredits{p}",
            )
            for p in range(self.num_ports)
        ]
        arbiter_settings = self.settings.child("output_arbiter", default={})
        self._output_arbiters: List[Arbiter] = [
            create_arbiter(arbiter_settings, self.num_vcs)
            for _ in range(self.num_ports)
        ]
        # Flit-buffer flow control never locks, which unlocks a slim
        # uncontested-grant path in _run_crossbar.
        self._fb_mode = self.scheduler.flow_control == FLIT_BUFFER
        self._in_flight = 0
        # Flits sitting in output queues per port (drain-stage fast path).
        self._queued_count = [0] * self.num_ports
        # Sum over _queued_count, so _has_work is O(1).
        self._queued_total = 0

    def _output_queue_credits(self, out_port: int, out_vc: int) -> int:
        return self._oq_credits[out_port].available(out_vc)

    def _finalize_arch(self) -> None:
        for port in range(self.num_ports):
            if self.port_is_wired(port):
                self.sensor.init_port(
                    port,
                    output_capacity=[self.output_queue_depth] * self.num_vcs,
                )

    # -- per-cycle behaviour ------------------------------------------------------

    def _step_cycle(self) -> None:
        self._drain_outputs()
        self._update_input_vcs()
        self._allocate_vcs()
        self._run_crossbar()

    def _has_work(self) -> bool:
        return (
            bool(self._occupied_inputs)
            or self._in_flight > 0
            or self._queued_total > 0
        )

    def _drain_outputs(self) -> None:
        """Per channel cycle, send one flit per port downstream."""
        queued_count = self._queued_count
        if self._queued_total == 0:
            return
        flit_out = self._flit_out
        queues = self._queues
        trackers = self._output_credits
        oq_credits = self._oq_credits
        arbiters = self._output_arbiters
        sensor_record = self.sensor.record
        now = self.simulator.tick
        for port in range(self.num_ports):
            if queued_count[port] == 0:
                continue
            channel = flit_out[port]
            if now < channel._next_free_tick:
                continue
            credits = trackers[port]._credits
            requests = []
            for vc, queue in enumerate(queues[port]):
                flits = queue._flits
                if flits and credits[vc] > 0:
                    requests.append((vc, flits[0].packet))
            if not requests:
                continue
            vc = arbiters[port].arbitrate(requests, now)
            flit = queues[port][vc].pop()
            queued_count[port] -= 1
            self._queued_total -= 1
            oq_credits[port].give(vc)
            sensor_record(SOURCE_OUTPUT, port, vc, -1)
            self.send_flit_out(port, flit)

    def _run_crossbar(self) -> None:
        bidders = []
        input_vcs = self._input_vcs
        for port, vc in self._occupied_inputs:
            state = input_vcs[port][vc]
            if not state.allocated:
                continue
            flits = state.buffer._flits
            if not flits:
                continue
            bidders.append((port, vc, state, flits[0]))
        scheduler = self.scheduler
        locks = scheduler._locks
        if not bidders and not locks:
            return
        simulator = self.simulator
        now = simulator.tick
        oq_credits = self._oq_credits
        if len(bidders) == 1 and not locks and self._fb_mode:
            # Uncontested flit-buffer grant: same decision the scheduler
            # would make, without Bid/schedule overhead.  The output
            # arbiter still sees the request so rotation state stays
            # bit-identical with the general path.
            port, vc, state, flit = bidders[0]
            out_port, out_vc = state.out_port, state.out_vc
            if oq_credits[out_port]._credits[out_vc] < 1:
                return
            # The arbiter still rotates exactly as its single-request
            # path would, without the per-event request-list allocation.
            arbiter = scheduler._arbiters[out_port]
            if type(arbiter) is RoundRobinArbiter:
                arbiter._pointer = (
                    port * scheduler.num_vcs + vc + 1
                ) % arbiter.size
            else:
                arbiter.arbitrate(
                    [(port * scheduler.num_vcs + vc, state.packet)], now
                )
            grants = ((port, vc, out_port, out_vc),)
        else:
            bids = [
                Bid(port, vc, state.packet, flit, state.out_port, state.out_vc)
                for port, vc, state, flit in bidders
            ]
            grants = [
                (g.in_port, g.in_vc, g.out_port, g.out_vc)
                for g in scheduler.schedule(bids, now)
            ]
            if not grants:
                return
        pop_input_flit = self._pop_input_flit
        sensor_record = self.sensor.record
        call_at = simulator.call_at
        core_arrival = self._core_arrival
        core_latency = self.core_latency
        if core_latency:
            arrival_tick, arrival_eps = now + core_latency, EPS_PIPELINE
        else:
            arrival_tick = now
            arrival_eps = max(EPS_PIPELINE, simulator.epsilon + 1)
        for in_port, in_vc, out_port, out_vc in grants:
            flit = pop_input_flit(in_port, in_vc)
            oq_credits[out_port].take(out_vc)
            sensor_record(SOURCE_OUTPUT, out_port, out_vc, +1)
            self._in_flight += 1
            call_at(arrival_tick, core_arrival, (flit, out_port, out_vc), arrival_eps)

    def _core_arrival(self, event: Event) -> None:
        flit, out_port, out_vc = event.data
        self._queues[out_port][out_vc].push(flit)
        self._queued_count[out_port] += 1
        self._queued_total += 1
        self._in_flight -= 1
        self._wake()

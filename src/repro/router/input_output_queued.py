"""Input-output-queued (IOQ) router architecture (paper §IV-C, Fig. 6).

The IOQ router extends the standard input-queued architecture into a
combined input/output queued switch [Chuang et al.]: it has full
crossbar input *and* output speedup and pipeline optimizations in both
the input and output queues.  Flits wait in the input queues only until
credits are available for the *output queues*; after arriving in the
output queues they wait until downstream (next hop) credits are
available.

This is the architecture of case study B (§VI-B): its congestion sensor
can account credits per VC or per port, and can count output-queue
credits, downstream credits, or both -- six accounting styles total,
configured entirely through the ``congestion_sensor`` settings block.

With ``frequency speedup`` (core clock faster than the channel clock,
Table I uses 2x) the crossbar performs multiple grants per channel
cycle, which is what gives the architecture its output speedup.
"""

from __future__ import annotations

from typing import List

from repro import factory
from repro.core.event import Event
from repro.net.buffer import FlitBuffer
from repro.net.credit import CreditTracker
from repro.net.phases import EPS_PIPELINE
from repro.router.arbiter import Arbiter, create_arbiter
from repro.router.base import Router
from repro.router.congestion import SOURCE_OUTPUT
from repro.router.crossbar_scheduler import Bid, CrossbarScheduler


@factory.register(Router, "input_output_queued")
class InputOutputQueuedRouter(Router):
    """The combined input/output queued router model.

    Extra settings:
        ``output_queue_depth`` -- per-(port, VC) output queue capacity
            in flits (default 64).
        ``crossbar_scheduler`` -- flow control + arbiter configuration
            for the input-to-output-queue crossbar.
        ``output_arbiter`` -- arbiter choosing among VCs at each output
            each channel cycle (default round robin).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.output_queue_depth = self.settings.get_uint("output_queue_depth", 64)
        scheduler_settings = self.settings.child("crossbar_scheduler", default={})
        self.scheduler = CrossbarScheduler(
            self.num_ports,
            self.num_vcs,
            scheduler_settings,
            credits_available=self._output_queue_credits,
        )
        self._queues: List[List[FlitBuffer]] = [
            [
                FlitBuffer(
                    self.output_queue_depth, f"{self.full_name}.oq{p}.vc{v}"
                )
                for v in range(self.num_vcs)
            ]
            for p in range(self.num_ports)
        ]
        # Internal credits for output-queue slots (queued + in flight).
        self._oq_credits: List[CreditTracker] = [
            CreditTracker(
                [self.output_queue_depth] * self.num_vcs,
                owner_name=f"{self.full_name}.oqcredits{p}",
            )
            for p in range(self.num_ports)
        ]
        arbiter_settings = self.settings.child("output_arbiter", default={})
        self._output_arbiters: List[Arbiter] = [
            create_arbiter(arbiter_settings, self.num_vcs)
            for _ in range(self.num_ports)
        ]
        self._in_flight = 0
        # Flits sitting in output queues per port (drain-stage fast path).
        self._queued_count = [0] * self.num_ports

    def _output_queue_credits(self, out_port: int, out_vc: int) -> int:
        return self._oq_credits[out_port].available(out_vc)

    def _finalize_arch(self) -> None:
        for port in range(self.num_ports):
            if self.port_is_wired(port):
                self.sensor.init_port(
                    port,
                    output_capacity=[self.output_queue_depth] * self.num_vcs,
                )

    # -- per-cycle behaviour ------------------------------------------------------

    def _step_cycle(self) -> None:
        self._drain_outputs()
        self._update_input_vcs()
        self._allocate_vcs()
        self._run_crossbar()

    def _has_work(self) -> bool:
        if self._any_input_flits() or self._in_flight > 0:
            return True
        return any(count > 0 for count in self._queued_count)

    def _drain_outputs(self) -> None:
        """Per channel cycle, send one flit per port downstream."""
        for port in range(self.num_ports):
            if self._queued_count[port] == 0:
                continue
            if not self.output_channel(port).can_send():
                continue
            tracker = self.output_credit_tracker(port)
            requests = []
            for vc in range(self.num_vcs):
                front = self._queues[port][vc].front()
                if front is not None and tracker.has_credit(vc):
                    requests.append((vc, front.packet))
            if not requests:
                continue
            now = self.simulator.tick
            vc = self._output_arbiters[port].arbitrate(requests, now)
            flit = self._queues[port][vc].pop()
            self._queued_count[port] -= 1
            self._oq_credits[port].give(vc)
            self.sensor.record(SOURCE_OUTPUT, port, vc, -1)
            self.send_flit_out(port, flit)

    def _run_crossbar(self) -> None:
        bids: List[Bid] = []
        for port, vc in self._occupied_inputs:
            state = self._input_vcs[port][vc]
            if not state.allocated:
                continue
            front = state.buffer.front()
            if front is None:
                continue
            bids.append(
                Bid(port, vc, state.packet, front, state.out_port, state.out_vc)
            )
        if not bids and not any(
            self.scheduler.locked_owner(p) is not None for p in range(self.num_ports)
        ):
            return
        now = self.simulator.tick
        for grant in self.scheduler.schedule(bids, now):
            out_port, out_vc = grant.out_port, grant.out_vc
            flit = self._pop_input_flit(grant.in_port, grant.in_vc)
            self._oq_credits[out_port].take(out_vc)
            self.sensor.record(SOURCE_OUTPUT, out_port, out_vc, +1)
            self._in_flight += 1
            self.schedule(
                self._core_arrival,
                self.core_latency,
                epsilon=EPS_PIPELINE,
                data=(flit, out_port, out_vc),
            )

    def _core_arrival(self, event: Event) -> None:
        flit, out_port, out_vc = event.data
        self._queues[out_port][out_vc].push(flit)
        self._queued_count[out_port] += 1
        self._in_flight -= 1
        self._wake()

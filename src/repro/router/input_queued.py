"""Input-queued (IQ) router architecture (paper §IV-C).

Modeled after the standard input-queued architecture of Dally & Towles
[11], with full crossbar input speedup (every input VC can traverse the
crossbar in the same cycle) and an optimized input-queue pipeline for
back-to-back packets (route + VC-allocate + first crossbar traversal can
all happen in the arrival cycle).  Flits wait in the input queues until
downstream (next hop) credits are available.

The crossbar scheduler implements the flow control technique under
study (``flit_buffer`` / ``packet_buffer`` / ``winner_take_all``,
§VI-C) via the ``crossbar_scheduler`` settings block.

Flits that win the crossbar consume their downstream credit at grant
time, traverse the core in ``core_latency`` ticks, and land in a small
per-port output staging register that drains onto the channel at the
channel clock rate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro import factory
from repro.core.event import Event
from repro.net.flit import Flit
from repro.net.phases import EPS_PIPELINE
from repro.router.base import Router
from repro.router.congestion import SOURCE_DOWNSTREAM
from repro.router.crossbar_scheduler import Bid, CrossbarScheduler


@factory.register(Router, "input_queued")
class InputQueuedRouter(Router):
    """The standard IQ router model.

    Extra settings:
        ``crossbar_scheduler`` -- flow control + arbiter configuration.
        ``output_staging_depth`` -- per-port staging register depth
            decoupling the core clock from the channel clock (default 2).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.output_staging_depth = self.settings.get_uint("output_staging_depth", 2)
        # The core is pipelined: up to core_latency flits are legitimately
        # in flight to each output at once, plus the staging register
        # itself.  Gating grants below this ceiling only throttles when
        # the channel (not the core) is the bottleneck.
        self._staging_limit = self.core_latency + self.output_staging_depth
        scheduler_settings = self.settings.child("crossbar_scheduler", default={})
        self.scheduler = CrossbarScheduler(
            self.num_ports,
            self.num_vcs,
            scheduler_settings,
            credits_available=self._downstream_credits,
        )
        self._staging: List[Deque[Flit]] = [deque() for _ in range(self.num_ports)]
        # Committed staging slots per port: staged + in flight through core.
        self._staging_committed = [0] * self.num_ports

    def _downstream_credits(self, out_port: int, out_vc: int) -> int:
        return self.output_credit_tracker(out_port).available(out_vc)

    # -- per-cycle behaviour ---------------------------------------------------

    def _step_cycle(self) -> None:
        self._drain_staging()
        self._update_input_vcs()
        self._allocate_vcs()
        self._run_crossbar()

    def _has_work(self) -> bool:
        if self._any_input_flits():
            return True
        return any(count > 0 for count in self._staging_committed)

    def _drain_staging(self) -> None:
        for port in range(self.num_ports):
            staging = self._staging[port]
            if not staging:
                continue
            if not self.output_channel(port).can_send():
                continue
            flit = staging.popleft()
            self._staging_committed[port] -= 1
            # Credit was taken at grant time: send without re-taking.
            self.output_channel(port).send_flit(flit)
            self.flits_sent += 1

    def _run_crossbar(self) -> None:
        bids: List[Bid] = []
        for port, vc in self._occupied_inputs:
            state = self._input_vcs[port][vc]
            if not state.allocated:
                continue
            front = state.buffer.front()
            if front is None:
                continue
            if self._staging_committed[state.out_port] >= self._staging_limit:
                continue
            bids.append(
                Bid(port, vc, state.packet, front, state.out_port, state.out_vc)
            )
        if not bids and not any(
            self.scheduler.locked_owner(p) is not None for p in range(self.num_ports)
        ):
            return
        now = self.simulator.tick
        for grant in self.scheduler.schedule(bids, now):
            out_port, out_vc = grant.out_port, grant.out_vc
            flit = self._pop_input_flit(grant.in_port, grant.in_vc)
            # Consume the downstream credit now; the flit is prepaid.
            self.output_credit_tracker(out_port).take(out_vc)
            self.sensor.record(SOURCE_DOWNSTREAM, out_port, out_vc, +1)
            self._staging_committed[out_port] += 1
            self.schedule(
                self._core_arrival,
                self.core_latency,
                epsilon=EPS_PIPELINE,
                data=(flit, out_port),
            )

    def _core_arrival(self, event: Event) -> None:
        flit, out_port = event.data
        self._staging[out_port].append(flit)
        self._wake()

"""Input-queued (IQ) router architecture (paper §IV-C).

Modeled after the standard input-queued architecture of Dally & Towles
[11], with full crossbar input speedup (every input VC can traverse the
crossbar in the same cycle) and an optimized input-queue pipeline for
back-to-back packets (route + VC-allocate + first crossbar traversal can
all happen in the arrival cycle).  Flits wait in the input queues until
downstream (next hop) credits are available.

The crossbar scheduler implements the flow control technique under
study (``flit_buffer`` / ``packet_buffer`` / ``winner_take_all``,
§VI-C) via the ``crossbar_scheduler`` settings block.

Flits that win the crossbar consume their downstream credit at grant
time, traverse the core in ``core_latency`` ticks, and land in a small
per-port output staging register that drains onto the channel at the
channel clock rate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro import factory
from repro.core.event import Event
from repro.net.flit import Flit
from repro.net.phases import EPS_PIPELINE, EPS_STEP
from repro.router.base import Router
from repro.router.congestion import SOURCE_DOWNSTREAM
from repro.router.arbiter import RoundRobinArbiter
from repro.router.crossbar_scheduler import FLIT_BUFFER, Bid, CrossbarScheduler


@factory.register(Router, "input_queued")
class InputQueuedRouter(Router):
    """The standard IQ router model.

    Extra settings:
        ``crossbar_scheduler`` -- flow control + arbiter configuration.
        ``output_staging_depth`` -- per-port staging register depth
            decoupling the core clock from the channel clock (default 2).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.output_staging_depth = self.settings.get_uint("output_staging_depth", 2)
        # The core is pipelined: up to core_latency flits are legitimately
        # in flight to each output at once, plus the staging register
        # itself.  Gating grants below this ceiling only throttles when
        # the channel (not the core) is the bottleneck.
        self._staging_limit = self.core_latency + self.output_staging_depth
        scheduler_settings = self.settings.child("crossbar_scheduler", default={})
        self.scheduler = CrossbarScheduler(
            self.num_ports,
            self.num_vcs,
            scheduler_settings,
            credits_available=self._downstream_credits,
        )
        # Flit-buffer flow control never locks, which unlocks a slim
        # uncontested-grant path in _run_crossbar.
        self._fb_mode = self.scheduler.flow_control == FLIT_BUFFER
        self._staging: List[Deque[Flit]] = [deque() for _ in range(self.num_ports)]
        # Committed staging slots per port: staged + in flight through core.
        self._staging_committed = [0] * self.num_ports
        # Sum over _staging_committed, so _has_work is O(1).
        self._committed_total = 0
        # Flits actually sitting in staging registers (vs. in the core):
        # lets the drain stage skip its port scan entirely when zero.
        self._staged_total = 0
        # Ports with a non-empty staging register (drain worklist);
        # a port appears exactly once while its register is non-empty.
        self._staged_ports: List[int] = []
        # Recycled by the drain stage (per-event list churn, cf. H001).
        self._staged_ports_spare: List[int] = []
        # Crossbar-bidder scratch; consumed within _run_crossbar only.
        self._xbar_bidders: list = []

    def _downstream_credits(self, out_port: int, out_vc: int) -> int:
        return self.output_credit_tracker(out_port).available(out_vc)

    # -- per-cycle behaviour ---------------------------------------------------

    def _step_cycle(self) -> None:
        self._drain_staging()
        self._update_input_vcs()
        self._allocate_vcs()
        self._run_crossbar()

    def _has_work(self) -> bool:
        return bool(self._occupied_inputs) or self._committed_total > 0

    def _step(self, event: Event) -> None:
        """Fused per-cycle hot path.

        Same stage order as :meth:`_step_cycle` (drain -> route ->
        allocate -> crossbar) with the stage dispatch, the scheduler
        round-trip for uncontested flit-buffer grants, and the input-pop
        bookkeeping all inlined.  ``_step_cycle`` stays as the readable
        specification (and the path unit tests drive directly).
        """
        simulator = self.simulator
        now = simulator.tick

        # Drain staging registers onto free channels.
        if self._staged_total:
            committed = self._staging_committed
            flit_out = self._flit_out
            staging_regs = self._staging
            keep = self._staged_ports_spare
            ports = self._staged_ports
            for port in ports:
                staging = staging_regs[port]
                channel = flit_out[port]
                if now >= channel._next_free_tick:
                    committed[port] -= 1
                    self._committed_total -= 1
                    self._staged_total -= 1
                    # Credit was taken at grant time: send without re-taking.
                    channel.send_flit(staging.popleft())
                    self.flits_sent += 1
                    if not staging:
                        continue
                keep.append(port)
            ports.clear()
            self._staged_ports_spare = ports
            self._staged_ports = keep

        # Route new head packets, then claim output VCs.
        if self._route_pending:
            self._update_input_vcs()
        if self._alloc_pending:
            self._allocate_vcs()

        # Crossbar.
        occupied = self._occupied_inputs
        scheduler = self.scheduler
        if occupied or scheduler._locks:
            self._run_crossbar()

        # Reschedule while work remains, else sleep until woken.
        if occupied or self._committed_total:
            if self._core_period1:
                tick = now + 1
            else:
                tick = self.core_clock.following_edge(now)
            simulator.call_at(tick, self._step, None, EPS_STEP)
        else:
            self._step_scheduled = False

    def _drain_staging(self) -> None:
        if self._staged_total == 0:
            return
        committed = self._staging_committed
        flit_out = self._flit_out
        staging_regs = self._staging
        tick = self.simulator.tick
        keep = self._staged_ports_spare
        ports = self._staged_ports
        for port in ports:
            staging = staging_regs[port]
            channel = flit_out[port]
            if tick >= channel._next_free_tick:
                committed[port] -= 1
                self._committed_total -= 1
                self._staged_total -= 1
                # Credit was taken at grant time: send without re-taking.
                channel.send_flit(staging.popleft())
                self.flits_sent += 1
                if not staging:
                    continue
            keep.append(port)
        ports.clear()
        self._staged_ports_spare = ports
        self._staged_ports = keep

    def _run_crossbar(self) -> None:
        input_vcs = self._input_vcs
        committed = self._staging_committed
        staging_limit = self._staging_limit
        bidders = self._xbar_bidders
        bidders.clear()
        out_mask = 0
        contested = False
        for port, vc in self._occupied_inputs:
            state = input_vcs[port][vc]
            if not state.allocated:
                continue
            if not state.buffer._flits:
                continue
            out_port = state.out_port
            if committed[out_port] >= staging_limit:
                continue
            bit = 1 << out_port
            if out_mask & bit:
                contested = True
            out_mask |= bit
            bidders.append((port, vc, state))
        scheduler = self.scheduler
        locks = scheduler._locks
        if not bidders and not locks:
            return
        simulator = self.simulator
        now = simulator.tick
        trackers = self._output_credits
        sensor_record = self.sensor.record
        call_at = simulator.call_at
        core_arrival = self._core_arrival
        core_latency = self.core_latency
        if core_latency:
            arrival_tick, arrival_eps = now + core_latency, EPS_PIPELINE
        else:
            arrival_tick = now
            arrival_eps = max(EPS_PIPELINE, simulator.epsilon + 1)
        if contested or locks or not self._fb_mode:
            # Contested outputs (or locking flow control): the full
            # scheduler decides.
            bids = [
                Bid(port, vc, state.packet, state.buffer._flits[0],
                    state.out_port, state.out_vc)
                for port, vc, state in bidders
            ]
            granted = scheduler.schedule(bids, now)
            if not granted:
                return
            pop_input_flit = self._pop_input_flit
            for g in granted:
                out_port, out_vc = g.out_port, g.out_vc
                flit = pop_input_flit(g.in_port, g.in_vc)
                # Consume the downstream credit now; the flit is prepaid.
                trackers[out_port].take(out_vc)
                sensor_record(SOURCE_DOWNSTREAM, out_port, out_vc, +1)
                committed[out_port] += 1
                self._committed_total += 1
                call_at(arrival_tick, core_arrival, (flit, out_port), arrival_eps)
            return
        # Flit-buffer flow control with every bidder targeting a distinct
        # output: each output arbiter sees exactly one request, so every
        # decision the scheduler would make is forced.  Grant inline,
        # with _pop_input_flit unrolled (the state is already in hand).
        arbiters = scheduler._arbiters
        num_vcs = scheduler.num_vcs
        send_credit = self.send_credit
        occupied = self._occupied_inputs
        owner_table = self._output_vc_owner
        for port, vc, state in bidders:
            out_port = state.out_port
            out_vc = state.out_vc
            tracker = trackers[out_port]
            if tracker._credits[out_vc] < 1:
                continue
            # The arbiter still rotates exactly as its single-request
            # path would, keeping contested rounds bit-identical.
            arbiter = arbiters[out_port]
            if type(arbiter) is RoundRobinArbiter:
                arbiter._pointer = (port * num_vcs + vc + 1) % arbiter.size
            else:
                arbiter.arbitrate([(port * num_vcs + vc, state.packet)], now)
            flits = state.buffer._flits
            flit = flits.popleft()
            if not flits:
                occupied.discard((port, vc))
            handle = flit._handle
            flit._vc[handle] = out_vc
            send_credit(port, vc)
            if flit._flags[handle] & 2:  # tail: release the output VC
                owner_key = (out_port, out_vc)
                owner = owner_table.get(owner_key)
                if owner != (port, vc):
                    raise RuntimeError(
                        f"{self.full_name}: tail flit released VC {owner_key} "
                        f"owned by {owner}, expected ({port}, {vc})"
                    )
                del owner_table[owner_key]
                flit.packet.hop_count += 1
                state.reset()
                if flits:
                    # The next queued packet's head is now at the front.
                    self._route_pending.append((port, vc))
            # Consume the downstream credit now; the flit is prepaid.
            tracker.take(out_vc)
            sensor_record(SOURCE_DOWNSTREAM, out_port, out_vc, +1)
            committed[out_port] += 1
            self._committed_total += 1
            call_at(arrival_tick, core_arrival, (flit, out_port), arrival_eps)

    def _core_arrival(self, event: Event) -> None:
        flit, out_port = event.data
        staging = self._staging[out_port]
        staging.append(flit)
        if len(staging) == 1:
            self._staged_ports.append(out_port)
        self._staged_total += 1
        if not self._step_scheduled:
            self._wake()

"""Arbiters: choose one winner among competing requests.

Arbiters are one of SuperSim's common microarchitecture building blocks
(§IV-C).  All implement an abstract interface and register with the
object factory so router models can be configured with any of them:

* ``round_robin`` -- classic rotating-priority arbiter; fair in
  isolation but known to produce the parking-lot bandwidth unfairness
  in chains of routers (§IV-B).
* ``age_based`` -- grants the oldest packet (by injection time); fixes
  the parking-lot problem [Abts & Weisser, SC'07].
* ``random`` -- uniformly random among requesters.
* ``fixed_priority`` -- lowest index wins; useful in tests.

A request is ``(index, packet_or_None)``; ``arbitrate`` returns the
winning index or ``None`` when there are no requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro import factory
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings

Request = Tuple[int, Optional[Packet]]


class Arbiter:
    """Abstract arbiter over a fixed number of request indices."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"arbiter size must be >= 1, got {size}")
        self.size = size

    def arbitrate(self, requests: List[Request], now_tick: int = 0) -> Optional[int]:
        """Pick a winner among ``requests``; None when empty."""
        raise NotImplementedError

    @staticmethod
    def _check(requests: List[Request], size: int) -> None:
        for index, _meta in requests:
            if not 0 <= index < size:
                raise ValueError(f"request index {index} out of range [0, {size})")


def create_arbiter(settings: "Settings", size: int, rng=None) -> Arbiter:
    """Build an arbiter from a settings block with a ``type`` key."""
    kind = settings.get_str("type", "round_robin")
    if kind == "random":
        return factory.create(Arbiter, kind, size, rng)
    return factory.create(Arbiter, kind, size)


@factory.register(Arbiter, "round_robin")
class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter: the winner becomes lowest priority."""

    def __init__(self, size: int):
        super().__init__(size)
        self._pointer = 0

    def arbitrate(self, requests: List[Request], now_tick: int = 0) -> Optional[int]:
        if not requests:
            return None
        if len(requests) == 1:
            # Forced winner; the pointer still rotates exactly as the
            # general path would set it.
            best = requests[0][0]
            if not 0 <= best < self.size:
                self._check(requests, self.size)
            self._pointer = (best + 1) % self.size
            return best
        self._check(requests, self.size)
        pointer = self._pointer
        size = self.size
        best = None
        best_rank = None
        for index, _meta in requests:
            rank = (index - pointer) % size
            if best_rank is None or rank < best_rank:
                best, best_rank = index, rank
        self._pointer = (best + 1) % size
        return best


@factory.register(Arbiter, "age_based")
class AgeBasedArbiter(Arbiter):
    """Grants the request whose packet has been in the network longest.

    Requests without a packet are treated as age 0.  Ties break by
    lowest index, keeping the arbiter deterministic.
    """

    def arbitrate(self, requests: List[Request], now_tick: int = 0) -> Optional[int]:
        if not requests:
            return None
        self._check(requests, self.size)
        best = None
        best_age = -1
        for index, packet in requests:
            age = packet.age(now_tick) if packet is not None else 0
            if age > best_age or (age == best_age and (best is None or index < best)):
                best, best_age = index, age
        return best


@factory.register(Arbiter, "random")
class RandomArbiter(Arbiter):
    """Uniformly random winner; requires a numpy Generator."""

    def __init__(self, size: int, rng: Optional[np.random.Generator] = None):
        super().__init__(size)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def arbitrate(self, requests: List[Request], now_tick: int = 0) -> Optional[int]:
        if not requests:
            return None
        self._check(requests, self.size)
        pick = int(self._rng.integers(len(requests)))
        return requests[pick][0]


@factory.register(Arbiter, "fixed_priority")
class FixedPriorityArbiter(Arbiter):
    """Lowest request index always wins (intentionally unfair)."""

    def arbitrate(self, requests: List[Request], now_tick: int = 0) -> Optional[int]:
        if not requests:
            return None
        self._check(requests, self.size)
        return min(index for index, _meta in requests)

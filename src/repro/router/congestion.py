"""Congestion sensors (paper §VI-A, §VI-B).

A congestion sensor turns credit/occupancy information into the
congestion values consumed by adaptive routing algorithms.  Two aspects
of real hardware that high-level simulators routinely idealize are
modeled explicitly here:

* **Propagation latency.**  Congestion information computed inside the
  microarchitecture takes 5-20 cycles to reach all the input ports'
  routing engines.  The sensor therefore exposes a *delayed* view:
  changes recorded at tick T become visible at tick ``T + latency``.
  Case study A (§VI-A) sweeps this latency and shows throughput
  collapse on finite-queue routers.

* **Accounting style.**  The IOQ architecture can report congestion per
  VC or per port, and can count credits of the output queues, of the
  downstream (next-hop) queues, or both (§VI-B).  The six combinations
  are the subject of case study B.

The sensor is event-free: pending updates are kept in a FIFO (latency is
constant, so visibility order equals record order) and drained lazily on
every query.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro import factory
from repro.core.component import Component

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.core.simulator import Simulator

#: Which credit pools feed the congestion value.
SOURCE_OUTPUT = "output"
SOURCE_DOWNSTREAM = "downstream"
SOURCE_BOTH = "both"

#: Reporting granularity.
GRANULARITY_VC = "vc"
GRANULARITY_PORT = "port"

#: Normalization depth used for infinite queues (see CreditSensor._value_for).
_INFINITE_REFERENCE_DEPTH = 64.0


class CongestionSensor(Component):
    """Abstract congestion sensor API."""

    def __init__(self, simulator, name, parent, num_ports: int, num_vcs: int):
        super().__init__(simulator, name, parent)
        self.num_ports = num_ports
        self.num_vcs = num_vcs

    def init_port(
        self,
        port: int,
        output_capacity: Optional[List[int]] = None,
        downstream_capacity: Optional[List[int]] = None,
    ) -> None:
        """Declare the credit capacities backing ``port``'s values."""
        raise NotImplementedError

    def record(self, source: str, port: int, vc: int, delta: int) -> None:
        """Record an occupancy change (+1 flit entered, -1 left)."""
        raise NotImplementedError

    def status(self, port: int, vc: int) -> float:
        """The congestion value routing algorithms see *now*.

        Values are occupancy fractions in ``[0, 1]`` (or unbounded raw
        flit counts for infinite queues), aggregated per the configured
        granularity and source.  Higher means more congested.
        """
        raise NotImplementedError


@factory.register(CongestionSensor, "credit")
class CreditSensor(CongestionSensor):
    """The packaged credit-counting sensor.

    Settings:
        ``latency`` -- propagation delay in ticks before a recorded
            change becomes visible (default 1).
        ``granularity`` -- ``"vc"`` or ``"port"`` (default ``"vc"``).
        ``source`` -- ``"output"``, ``"downstream"``, or ``"both"``
            (default ``"downstream"``).
    """

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Component,
        num_ports: int,
        num_vcs: int,
        settings: "Settings",
    ):
        super().__init__(simulator, name, parent, num_ports, num_vcs)
        self.latency = settings.get_uint("latency", 1)
        self.granularity = settings.get_str("granularity", GRANULARITY_VC)
        if self.granularity not in (GRANULARITY_VC, GRANULARITY_PORT):
            raise ValueError(f"bad congestion granularity {self.granularity!r}")
        self.source = settings.get_str("source", SOURCE_DOWNSTREAM)
        if self.source not in (SOURCE_OUTPUT, SOURCE_DOWNSTREAM, SOURCE_BOTH):
            raise ValueError(f"bad congestion source {self.source!r}")
        # Sources never queried under this configuration are not tracked:
        # their records are dropped on arrival (pure overhead otherwise).
        if self.source == SOURCE_BOTH:
            self._tracked = (SOURCE_OUTPUT, SOURCE_DOWNSTREAM)
        else:
            self._tracked = (self.source,)
        # visible occupancy per (source, port, vc)
        self._visible: Dict[Tuple[str, int, int], int] = {}
        # capacity per (source, port, vc); None = infinite
        self._capacity: Dict[Tuple[str, int, int], Optional[int]] = {}
        self._ports_with: Dict[str, set] = {SOURCE_OUTPUT: set(), SOURCE_DOWNSTREAM: set()}
        # pending (visible_tick, (source, port, vc), delta), FIFO by visible_tick
        self._pending: Deque[Tuple[int, Tuple[str, int, int], int]] = deque()
        # Per-tick memo: visible values only change when pending entries
        # cross `now`, which cannot happen twice within one tick when the
        # propagation latency is >= 1, so repeated status() queries in the
        # same tick (adaptive routing fans over many ports) hit the cache.
        self._memo_tick = -1
        self._memo: Dict[Tuple[int, int], float] = {}
        # Hoisted query iterables: _status_uncached runs on the routing
        # hot path (adaptive algorithms fan over every port), so the
        # source list and the per-granularity VC views are built once
        # here instead of per call (per-event H001/H003).
        if self.granularity == GRANULARITY_PORT:
            self._vc_views: Tuple[Tuple[int, ...], ...] = tuple(
                tuple(range(num_vcs)) for _ in range(num_vcs)
            )
        else:
            self._vc_views = tuple((v,) for v in range(num_vcs))

    # -- setup ----------------------------------------------------------------

    def init_port(
        self,
        port: int,
        output_capacity: Optional[List[int]] = None,
        downstream_capacity: Optional[List[int]] = None,
    ) -> None:
        if output_capacity is not None:
            self._ports_with[SOURCE_OUTPUT].add(port)
            for vc, cap in enumerate(output_capacity):
                self._visible[(SOURCE_OUTPUT, port, vc)] = 0
                self._capacity[(SOURCE_OUTPUT, port, vc)] = cap
        if downstream_capacity is not None:
            self._ports_with[SOURCE_DOWNSTREAM].add(port)
            for vc, cap in enumerate(downstream_capacity):
                self._visible[(SOURCE_DOWNSTREAM, port, vc)] = 0
                self._capacity[(SOURCE_DOWNSTREAM, port, vc)] = cap

    # -- updates -----------------------------------------------------------------

    def record(self, source: str, port: int, vc: int, delta: int) -> None:
        if source not in self._tracked:
            return
        key = (source, port, vc)
        if key not in self._visible:
            raise KeyError(f"{self.full_name}: record for uninitialized {key}")
        self._pending.append((self.simulator.tick + self.latency, key, delta))

    def _drain(self) -> None:
        now = self.simulator.tick
        pending = self._pending
        visible = self._visible
        while pending and pending[0][0] <= now:
            _tick, key, delta = pending.popleft()
            visible[key] += delta

    # -- queries ------------------------------------------------------------------

    def _value_for(self, source: str, port: int, vc: int) -> Tuple[float, float]:
        """(occupancy, capacity) for one key; capacity 0 when untracked."""
        key = (source, port, vc)
        if key not in self._visible:
            return (0.0, 0.0)
        occupancy = float(self._visible[key])
        capacity = self._capacity[key]
        if capacity is None:
            # Infinite queue: normalize against a fixed reference depth so
            # values remain monotone in occupancy (they may exceed 1.0,
            # which is fine -- routing only compares relative magnitudes).
            return (occupancy, _INFINITE_REFERENCE_DEPTH)
        return (occupancy, float(capacity))

    def status(self, port: int, vc: int) -> float:
        if self.latency >= 1:
            now = self.simulator.tick
            if now != self._memo_tick:
                self._memo_tick = now
                self._memo.clear()
            cached = self._memo.get((port, vc))
            if cached is not None:
                return cached
        value = self._status_uncached(port, vc)
        if self.latency >= 1:
            self._memo[(port, vc)] = value
        return value

    def _status_uncached(self, port: int, vc: int) -> float:
        self._drain()
        sources = self._tracked
        vcs = self._vc_views[vc]
        occupancy = 0.0
        capacity = 0.0
        for source in sources:
            for v in vcs:
                occ, cap = self._value_for(source, port, v)
                occupancy += occ
                capacity += cap
        if capacity <= 0.0:
            return 0.0
        return occupancy / capacity

    def raw_occupancy(self, source: str, port: int, vc: int) -> int:
        """Undelayed *visible* flit count (after draining due updates)."""
        self._drain()
        return self._visible.get((source, port, vc), 0)

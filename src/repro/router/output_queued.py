"""Output-queued (OQ) router architecture (paper §IV-C).

An idealistic architecture with zero head-of-line blocking and no
scheduling conflicts: all input ports can simultaneously put flits into
any output queue.  Output queues may be infinite or finite.  Because the
model is devoid of VC allocation conflicts and crossbar scheduling it
also simulates fast, which is why case study A (§VI-A) uses it -- the
idealized datapath isolates the effect under study (latent congestion
detection) from microarchitectural bottlenecks.

Settings (beyond the Router base):
    ``output_queue_depth`` -- per-(port, VC) output queue capacity in
        flits; ``null``/absent means infinite.

Flit life cycle: input buffer -> (route, claim output VC) -> commit a
slot in the target output queue -> traverse the core (``core_latency``
ticks, queue-to-queue) -> output queue -> downstream channel when the
next-hop credit allows.

The congestion sensor's ``output`` source tracks *committed* flits
(queued plus in flight through the core), i.e. "the number of flits
resident in the output queues" that Singh's UGAL work used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import factory
from repro.core.event import Event
from repro.net.buffer import FlitBuffer
from repro.net.flit import Flit
from repro.net.phases import EPS_PIPELINE
from repro.router.arbiter import Arbiter, create_arbiter
from repro.router.base import Router
from repro.router.congestion import SOURCE_OUTPUT

if TYPE_CHECKING:  # pragma: no cover
    pass


@factory.register(Router, "output_queued")
class OutputQueuedRouter(Router):
    """The idealized OQ router model."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        depth = self.settings.get("output_queue_depth", None)
        if depth is not None and (not isinstance(depth, int) or depth < 1):
            raise ValueError(f"output_queue_depth must be a positive int or null")
        self.output_queue_depth: Optional[int] = depth
        self._queues: List[List[FlitBuffer]] = [
            [
                FlitBuffer(None, f"{self.full_name}.oq{p}.vc{v}")
                for v in range(self.num_vcs)
            ]
            for p in range(self.num_ports)
        ]
        # Committed slots per (port, vc): queued + in flight through the core.
        self._committed: List[List[int]] = [
            [0] * self.num_vcs for _ in range(self.num_ports)
        ]
        # Flits actually sitting in queues per port (drain-stage fast path).
        self._queued_count = [0] * self.num_ports
        arbiter_settings = self.settings.child("output_arbiter", default={})
        self._output_arbiters: List[Arbiter] = [
            create_arbiter(arbiter_settings, self.num_vcs)
            for _ in range(self.num_ports)
        ]

    def _finalize_arch(self) -> None:
        for port in range(self.num_ports):
            if self.port_is_wired(port):
                self.sensor.init_port(
                    port,
                    output_capacity=[self.output_queue_depth] * self.num_vcs,
                )

    # -- per-cycle behaviour -----------------------------------------------------

    def _step_cycle(self) -> None:
        self._drain_outputs()
        self._update_input_vcs()
        self._allocate_and_move()

    def _has_work(self) -> bool:
        if self._any_input_flits():
            return True
        for port in range(self.num_ports):
            for vc in range(self.num_vcs):
                if self._committed[port][vc] > 0:
                    return True
        return False

    def _drain_outputs(self) -> None:
        """Send one flit per port per channel cycle, credits permitting."""
        for port in range(self.num_ports):
            if self._queued_count[port] == 0:
                continue
            if not self.output_channel(port).can_send():
                continue
            tracker = self.output_credit_tracker(port)
            requests = []
            for vc in range(self.num_vcs):
                front = self._queues[port][vc].front()
                if front is not None and tracker.has_credit(vc):
                    requests.append((vc, front.packet))
            if not requests:
                continue
            now = self.simulator.tick
            vc = self._output_arbiters[port].arbitrate(requests, now)
            flit = self._queues[port][vc].pop()
            self._committed[port][vc] -= 1
            self._queued_count[port] -= 1
            self.sensor.record(SOURCE_OUTPUT, port, vc, -1)
            self.send_flit_out(port, flit)

    def _allocate_and_move(self) -> None:
        """Claim output VCs and move one flit per input VC into its
        committed output queue, in a single fused pass.

        No scheduling conflicts (§IV-C): every input VC with available
        queue space moves simultaneously.  Fusing claim and move matters
        for the idealized semantics -- a single-flit packet claims and
        releases its output VC within the same pass, so *many* inputs
        can enqueue into the same output queue in one cycle (the
        "bombard a seemingly good output port" behaviour of adaptive
        routing that case study A depends on).  Ownership only persists
        across cycles for multi-flit packets, where it enforces wormhole
        atomicity per VC.
        """
        if not self._occupied_inputs:
            return
        flat = sorted(self._occupied_inputs)
        start = self._alloc_rotor % len(flat)  # fair rotation
        self._alloc_rotor += 1
        owner_table = self._output_vc_owner
        for port, vc in flat[start:] + flat[:start]:
            state = self._input_vcs[port][vc]
            if state.packet is None:
                continue
            if not state.allocated:
                for out_port, out_vc in state.candidates:
                    key = (out_port, out_vc)
                    if key in owner_table:
                        continue
                    if not self._admit(out_port, out_vc, state.packet):
                        continue
                    owner_table[key] = (port, vc)
                    state.allocated = True
                    state.out_port = out_port
                    state.out_vc = out_vc
                    break
                else:
                    continue
            if state.buffer.is_empty():
                continue
            out_port, out_vc = state.out_port, state.out_vc
            if (
                self.output_queue_depth is not None
                and self._committed[out_port][out_vc] >= self.output_queue_depth
            ):
                continue  # finite queue full: flit waits in the input
            flit = self._pop_input_flit(port, vc)
            self._committed[out_port][out_vc] += 1
            self.sensor.record(SOURCE_OUTPUT, out_port, out_vc, +1)
            self.schedule(
                self._core_arrival,
                self.core_latency,
                epsilon=EPS_PIPELINE,
                data=(flit, out_port, out_vc),
            )

    def _core_arrival(self, event: Event) -> None:
        flit, out_port, out_vc = event.data
        self._queues[out_port][out_vc].push(flit)
        self._queued_count[out_port] += 1
        self._wake()

    # -- introspection ------------------------------------------------------------

    def output_queue_occupancy(self, port: int, vc: int) -> int:
        """Committed flits (queued + in flight) for one output VC."""
        return self._committed[port][vc]

"""Output-queued (OQ) router architecture (paper §IV-C).

An idealistic architecture with zero head-of-line blocking and no
scheduling conflicts: all input ports can simultaneously put flits into
any output queue.  Output queues may be infinite or finite.  Because the
model is devoid of VC allocation conflicts and crossbar scheduling it
also simulates fast, which is why case study A (§VI-A) uses it -- the
idealized datapath isolates the effect under study (latent congestion
detection) from microarchitectural bottlenecks.

Settings (beyond the Router base):
    ``output_queue_depth`` -- per-(port, VC) output queue capacity in
        flits; ``null``/absent means infinite.

Flit life cycle: input buffer -> (route, claim output VC) -> commit a
slot in the target output queue -> traverse the core (``core_latency``
ticks, queue-to-queue) -> output queue -> downstream channel when the
next-hop credit allows.

The congestion sensor's ``output`` source tracks *committed* flits
(queued plus in flight through the core), i.e. "the number of flits
resident in the output queues" that Singh's UGAL work used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import factory
from repro.core.event import Event
from repro.net.buffer import FlitBuffer
from repro.net.flit import Flit
from repro.net.phases import EPS_PIPELINE
from repro.router.arbiter import Arbiter, RoundRobinArbiter, create_arbiter
from repro.router.base import Router
from repro.router.congestion import SOURCE_OUTPUT

if TYPE_CHECKING:  # pragma: no cover
    pass


@factory.register(Router, "output_queued")
class OutputQueuedRouter(Router):
    """The idealized OQ router model."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        depth = self.settings.get("output_queue_depth", None)
        if depth is not None and (not isinstance(depth, int) or depth < 1):
            raise ValueError(f"output_queue_depth must be a positive int or null")
        self.output_queue_depth: Optional[int] = depth
        self._queues: List[List[FlitBuffer]] = [
            [
                FlitBuffer(None, f"{self.full_name}.oq{p}.vc{v}")
                for v in range(self.num_vcs)
            ]
            for p in range(self.num_ports)
        ]
        # Committed slots per (port, vc): queued + in flight through the core.
        self._committed: List[List[int]] = [
            [0] * self.num_vcs for _ in range(self.num_ports)
        ]
        # Flits actually sitting in queues per port (drain-stage fast path).
        self._queued_count = [0] * self.num_ports
        # Sum over _committed, so _has_work is O(1).
        self._committed_total = 0
        arbiter_settings = self.settings.child("output_arbiter", default={})
        self._output_arbiters: List[Arbiter] = [
            create_arbiter(arbiter_settings, self.num_vcs)
            for _ in range(self.num_ports)
        ]
        # Recycled request list for the drain stage (per-event H001:
        # arbiters never retain the list they arbitrate over).
        self._drain_requests: list = []

    def _finalize_arch(self) -> None:
        for port in range(self.num_ports):
            if self.port_is_wired(port):
                self.sensor.init_port(
                    port,
                    output_capacity=[self.output_queue_depth] * self.num_vcs,
                )

    # -- per-cycle behaviour -----------------------------------------------------

    def _step_cycle(self) -> None:
        self._drain_outputs()
        self._update_input_vcs()
        # OQ allocates in its own fused pass below; drop the queue the
        # routing stage feeds for _allocate_vcs-based architectures.
        self._alloc_pending.clear()
        self._allocate_and_move()

    def _has_work(self) -> bool:
        return bool(self._occupied_inputs) or self._committed_total > 0

    def _drain_outputs(self) -> None:
        """Send one flit per port per channel cycle, credits permitting."""
        queued_count = self._queued_count
        if not any(queued_count):
            return
        flit_out = self._flit_out
        queues = self._queues
        committed = self._committed
        trackers = self._output_credits
        arbiters = self._output_arbiters
        sensor_record = self.sensor.record
        now = self.simulator.tick
        single_vc = self.num_vcs == 1
        for port in range(self.num_ports):
            if queued_count[port] == 0:
                continue
            channel = flit_out[port]
            if now < channel._next_free_tick:
                continue
            credits = trackers[port]._credits
            port_queues = queues[port]
            if single_vc:
                # One VC: the only possible request either exists with
                # credit or the port stalls; the single-entry arbitration
                # is forced (and leaves a round-robin pointer unmoved).
                if credits[0] < 1:
                    continue
                vc = 0
                flits = port_queues[0]._flits
                arbiter = arbiters[port]
                if type(arbiter) is not RoundRobinArbiter:
                    arbiter.arbitrate([(0, flits[0].packet)], now)
                flit = flits.popleft()
            else:
                requests = self._drain_requests
                requests.clear()
                for vc, queue in enumerate(port_queues):
                    flits = queue._flits
                    if flits and credits[vc] > 0:
                        requests.append((vc, flits[0].packet))
                if not requests:
                    continue
                vc = arbiters[port].arbitrate(requests, now)
                flit = port_queues[vc].pop()
            committed[port][vc] -= 1
            queued_count[port] -= 1
            self._committed_total -= 1
            sensor_record(SOURCE_OUTPUT, port, vc, -1)
            self.send_flit_out(port, flit)

    def _allocate_and_move(self) -> None:
        """Claim output VCs and move one flit per input VC into its
        committed output queue, in a single fused pass.

        No scheduling conflicts (§IV-C): every input VC with available
        queue space moves simultaneously.  Fusing claim and move matters
        for the idealized semantics -- a single-flit packet claims and
        releases its output VC within the same pass, so *many* inputs
        can enqueue into the same output queue in one cycle (the
        "bombard a seemingly good output port" behaviour of adaptive
        routing that case study A depends on).  Ownership only persists
        across cycles for multi-flit packets, where it enforces wormhole
        atomicity per VC.
        """
        occupied = self._occupied_inputs
        if not occupied:
            return
        if len(occupied) == 1:
            # Rotation over one element is the identity; skip the sort.
            self._alloc_rotor += 1
            order = list(occupied)
        else:
            flat = sorted(occupied)
            start = self._alloc_rotor % len(flat)  # fair rotation
            self._alloc_rotor += 1
            order = flat[start:] + flat[:start] if start else flat
        owner_table = self._output_vc_owner
        input_vcs = self._input_vcs
        committed = self._committed
        depth = self.output_queue_depth
        pop_input_flit = self._pop_input_flit
        sensor_record = self.sensor.record
        simulator = self.simulator
        call_at = simulator.call_at
        core_arrival = self._core_arrival
        core_latency = self.core_latency
        if core_latency:
            arrival_tick = simulator.tick + core_latency
            arrival_eps = EPS_PIPELINE
        else:
            arrival_tick = simulator.tick
            arrival_eps = max(EPS_PIPELINE, simulator.epsilon + 1)
        admit = self._admit
        for port, vc in order:
            state = input_vcs[port][vc]
            if state.packet is None:
                continue
            if not state.allocated:
                for out_port, out_vc in state.candidates:
                    key = (out_port, out_vc)
                    if key in owner_table:
                        continue
                    if not admit(out_port, out_vc, state.packet):
                        continue
                    owner_table[key] = (port, vc)
                    state.allocated = True
                    state.out_port = out_port
                    state.out_vc = out_vc
                    break
                else:
                    continue
            if not state.buffer._flits:
                continue
            out_port, out_vc = state.out_port, state.out_vc
            if depth is not None and committed[out_port][out_vc] >= depth:
                continue  # finite queue full: flit waits in the input
            flit = pop_input_flit(port, vc)
            committed[out_port][out_vc] += 1
            self._committed_total += 1
            sensor_record(SOURCE_OUTPUT, out_port, out_vc, +1)
            call_at(arrival_tick, core_arrival, (flit, out_port, out_vc), arrival_eps)

    def _core_arrival(self, event: Event) -> None:
        flit, out_port, out_vc = event.data
        self._queues[out_port][out_vc].push(flit)
        self._queued_count[out_port] += 1
        self._wake()

    # -- introspection ------------------------------------------------------------

    def output_queue_occupancy(self, port: int, vc: int) -> int:
        """Committed flits (queued + in flight) for one output VC."""
        return self._committed[port][vc]

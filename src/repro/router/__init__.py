"""Router microarchitectures and their building blocks (paper §IV-C)."""

from repro.router.arbiter import (
    AgeBasedArbiter,
    Arbiter,
    FixedPriorityArbiter,
    RandomArbiter,
    RoundRobinArbiter,
    create_arbiter,
)
from repro.router.base import InputVcState, Router
from repro.router.congestion import (
    GRANULARITY_PORT,
    GRANULARITY_VC,
    SOURCE_BOTH,
    SOURCE_DOWNSTREAM,
    SOURCE_OUTPUT,
    CongestionSensor,
    CreditSensor,
)
from repro.router.crossbar_scheduler import (
    FLIT_BUFFER,
    PACKET_BUFFER,
    WINNER_TAKE_ALL,
    Bid,
    CrossbarScheduler,
)
from repro.router.input_output_queued import InputOutputQueuedRouter
from repro.router.input_queued import InputQueuedRouter
from repro.router.output_queued import OutputQueuedRouter

__all__ = [
    "AgeBasedArbiter",
    "Arbiter",
    "Bid",
    "CongestionSensor",
    "CreditSensor",
    "CrossbarScheduler",
    "FixedPriorityArbiter",
    "FLIT_BUFFER",
    "GRANULARITY_PORT",
    "GRANULARITY_VC",
    "InputOutputQueuedRouter",
    "InputQueuedRouter",
    "InputVcState",
    "OutputQueuedRouter",
    "PACKET_BUFFER",
    "RandomArbiter",
    "RoundRobinArbiter",
    "Router",
    "SOURCE_BOTH",
    "SOURCE_DOWNSTREAM",
    "SOURCE_OUTPUT",
    "WINNER_TAKE_ALL",
    "create_arbiter",
]

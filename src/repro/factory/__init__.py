"""Object factory subsystem (paper §III-D)."""

from repro.factory.registry import (
    GLOBAL_FACTORY,
    FactoryError,
    ObjectFactory,
    create,
    is_registered,
    lookup,
    names,
    register,
)

__all__ = [
    "GLOBAL_FACTORY",
    "FactoryError",
    "ObjectFactory",
    "create",
    "is_registered",
    "lookup",
    "names",
    "register",
]

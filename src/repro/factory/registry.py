"""Smart object factories (paper §III-D).

SuperSim lets developers drop new component models into the code base
with zero changes to existing files: a source file calls
``registerWithObjectFactory("my_arch", ...)`` and the factory for the
corresponding base class can construct it by name from the JSON
settings.

The Python analog is a registry keyed by ``(base_class, name)`` and a
``register`` decorator.  A new model registers itself at import time::

    @factory.register(Router, "my_arch")
    class MyArchRouter(Router):
        ...

and the simulator builds it with ``factory.create(Router, "my_arch", ...)``
where the name usually comes from the settings block's ``"type"`` key.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, Type, TypeVar

T = TypeVar("T")


class FactoryError(LookupError):
    """Raised when a requested model name is not registered."""


class ObjectFactory:
    """Registry of named implementations per abstract base class."""

    def __init__(self):
        self._registry: Dict[Tuple[type, str], type] = {}

    def register(self, base: Type[T], name: str) -> Callable[[Type[T]], Type[T]]:
        """Class decorator registering an implementation of ``base``.

        Registering two different classes under the same (base, name)
        pair is an error; re-registering the *same* class is idempotent
        (it happens when a module is imported twice under different
        names, e.g. in test runners).
        """

        def decorator(cls: Type[T]) -> Type[T]:
            if not issubclass(cls, base):
                raise TypeError(
                    f"{cls.__name__} must derive from {base.__name__} "
                    f"to register as a {base.__name__} model"
                )
            key = (base, name)
            existing = self._registry.get(key)
            if existing is not None and existing.__qualname__ != cls.__qualname__:
                raise FactoryError(
                    f"{base.__name__} model {name!r} already registered "
                    f"as {existing.__name__}"
                )
            self._registry[key] = cls
            return cls

        return decorator

    def create(self, base: Type[T], name: str, *args: Any, **kwargs: Any) -> T:
        """Construct the implementation of ``base`` registered as ``name``."""
        key = (base, name)
        if key not in self._registry:
            raise FactoryError(
                f"no {base.__name__} model named {name!r}; "
                f"known: {self.names(base)}"
            )
        return self._registry[key](*args, **kwargs)

    def lookup(self, base: Type[T], name: str) -> Type[T]:
        """Return the registered class without constructing it."""
        key = (base, name)
        if key not in self._registry:
            raise FactoryError(
                f"no {base.__name__} model named {name!r}; "
                f"known: {self.names(base)}"
            )
        return self._registry[key]

    def names(self, base: type) -> List[str]:
        """All registered model names for ``base``, sorted."""
        return sorted(name for (b, name) in self._registry if b is base)

    def is_registered(self, base: type, name: str) -> bool:
        return (base, name) in self._registry


#: The process-global factory used by all built-in models.
GLOBAL_FACTORY = ObjectFactory()

register = GLOBAL_FACTORY.register
create = GLOBAL_FACTORY.create
lookup = GLOBAL_FACTORY.lookup
names = GLOBAL_FACTORY.names
is_registered = GLOBAL_FACTORY.is_registered

"""Command line entry point (paper Listing 1).

Usage::

    supersim myconfig.json \\
        network.router.architecture=string=my_arch \\
        network.concentration=uint=16

or equivalently ``python -m repro myconfig.json <overrides...>``.

The first argument is a JSON settings file; every following argument is
a ``path=type=value`` override.  On completion a JSON summary is printed
to stdout.  An optional top-level ``output`` block controls artifacts::

    "output": {
      "message_log": "messages.jsonl",   # SSParse input
      "summary": "summary.json"
    }
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.config.settings import Settings
from repro.sim import Simulation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="supersim",
        description="Flit-level interconnection network simulator "
        "(SuperSim reproduction)",
    )
    parser.add_argument("config", help="JSON settings file")
    parser.add_argument(
        "overrides",
        nargs="*",
        help="settings overrides of the form path=type=value",
    )
    parser.add_argument(
        "--max-time",
        type=int,
        default=None,
        help="hard stop at this simulated tick (overrides simulator.max_time)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary on stdout"
    )
    parser.add_argument(
        "--progress",
        type=int,
        metavar="TICKS",
        default=None,
        help="print a progress line every TICKS simulated ticks",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="lint the resolved config before simulating; abort on "
        "error-severity findings (see docs/LINTING.md)",
    )
    parser.add_argument(
        "--lint-only",
        action="store_true",
        help="lint the resolved config and exit without simulating",
    )
    parser.add_argument(
        "--partition-plan",
        type=int,
        metavar="K",
        default=None,
        help="plan a K-way partition of the resolved config, verify it "
        "with the P-rules, print the manifest JSON to stdout, and exit "
        "without simulating (see docs/PARTITIONING.md)",
    )
    parser.add_argument(
        "--partition",
        type=int,
        metavar="K",
        default=None,
        help="run the simulation sharded K ways under the PDES runtime "
        "(conservative windows; results are digest-equal to a "
        "single-process run -- see docs/PARTITIONING.md)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        metavar="N",
        default=0,
        help="worker processes for --partition: 0 (default) executes "
        "every shard in-process, K spawns one process per shard",
    )
    parser.add_argument(
        "--sanitize",
        metavar="NAMES",
        default=None,
        help="attach runtime sanitizers: 'all' or a comma-separated "
        "subset of credit,flit,event,det (see docs/SANITIZERS.md); "
        "exits 3 at the first invariant violation",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="PSTATS",
        help="run under cProfile and print the hottest functions to "
        "stderr; with an argument, also dump the raw pstats data "
        "to that path (inspect with scripts/profile_sim.py or "
        "python -m pstats)",
    )
    parser.add_argument(
        "--pstats-out",
        metavar="PATH",
        default=None,
        help="dump raw pstats data to PATH (implies --profile); feed "
        "it to sslint --layer perf --profile for the static perf "
        "audit (docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--sweep",
        action="append",
        metavar="SHORT=path=type=v1,v2,...",
        default=None,
        help="sweep a setting over several values instead of running "
        "once; repeat for a cross product (see the sssweep tool)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count(),
        help="worker processes for --sweep mode (default: all cores)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sweep:
        # Delegate to the sssweep CLI: one simulation per value combo,
        # fanned out across --workers processes.
        from repro.tools.cli import sssweep_main

        sweep_argv: List[str] = [args.config]
        for spec in args.sweep:
            sweep_argv.extend(["--var", spec])
        sweep_argv.extend(["--workers", str(args.workers)])
        if args.max_time is not None:
            sweep_argv.extend(["--max-time", str(args.max_time)])
        if args.quiet:
            sweep_argv.append("--quiet")
        if args.sanitize:
            # Sweep mode cannot afford sanitizers on every point; the
            # equivalent is a sanitized smoke run of the base point.
            sweep_argv.append("--smoke")
        return sssweep_main(sweep_argv)
    overrides = list(args.overrides)
    if args.progress:
        overrides.append(f"simulator.monitor.period=uint={args.progress}")
        overrides.append("simulator.monitor.print=bool=true")
    settings = Settings.from_file(args.config, overrides)
    if args.partition_plan is not None:
        from repro.lint import lint_partition
        from repro.partition import to_canonical_json

        report, manifest = lint_partition(
            settings, k=args.partition_plan, subject=args.config
        )
        if report.findings:
            print(report.render_text(), file=sys.stderr)
        if report.has_errors() or manifest is None:
            print("partition planning failed; no manifest emitted",
                  file=sys.stderr)
            return 1
        sys.stdout.write(to_canonical_json(manifest))
        return 0
    if args.lint or args.lint_only:
        from repro.lint import lint_settings

        report = lint_settings(settings, subject=args.config)
        if report.findings or args.lint_only:
            print(report.render_text(), file=sys.stderr)
        if args.lint_only:
            return 1 if report.has_errors() else 0
        if report.has_errors():
            print("lint found errors; not simulating", file=sys.stderr)
            return 1
    if args.partition is not None:
        from repro.factory.registry import FactoryError
        from repro.partition.runtime import PartitionRuntimeError, run_sharded
        from repro.sanitize import SanitizerError

        config = settings.raw()
        if args.max_time is not None:
            config.setdefault("simulator", {})["max_time"] = args.max_time
        try:
            results = run_sharded(
                config,
                k=args.partition,
                shard_workers=args.shard_workers,
                sanitize=args.sanitize or "",
            )
        except FactoryError as exc:
            print(f"supersim: --sanitize: {exc}", file=sys.stderr)
            return 2
        except SanitizerError as exc:
            print(f"sanitizer violation: {exc}", file=sys.stderr)
            return 3
        except PartitionRuntimeError as exc:
            print(f"supersim: --partition: {exc}", file=sys.stderr)
            return 2
        summary = results.summary()
        output = settings.child("output", default={})
        log_path = output.get("message_log", None)
        if log_path:
            with open(log_path, "w", encoding="utf-8") as handle:
                for record in results.records:
                    handle.write(json.dumps(record.to_dict()))
                    handle.write("\n")
            summary["message_log"] = {
                "path": log_path,
                "records": len(results.records),
            }
        summary_path = output.get("summary", None)
        if summary_path:
            with open(summary_path, "w", encoding="utf-8") as handle:
                json.dump(summary, handle, indent=2)
        if not args.quiet:
            json.dump(summary, sys.stdout, indent=2)
            sys.stdout.write("\n")
        return 0 if results.drained else 1
    simulation = Simulation(settings)
    if args.pstats_out and not args.profile:
        args.profile = args.pstats_out
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    if args.sanitize:
        from repro.factory.registry import FactoryError
        from repro.sanitize import SanitizerError, attach_sanitizers

        try:
            with attach_sanitizers(simulation, args.sanitize) as suite:
                results = simulation.run(max_time=args.max_time)
                suite.finish()
                sanitizer_report = suite.report()
        except FactoryError as exc:
            print(f"supersim: --sanitize: {exc}", file=sys.stderr)
            return 2
        except SanitizerError as exc:
            print(f"sanitizer violation: {exc}", file=sys.stderr)
            return 3
        summary = results.summary()
        summary["sanitizers"] = sanitizer_report
    else:
        results = simulation.run(max_time=args.max_time)
        summary = results.summary()
    if profiler is not None:
        profiler.disable()
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        if args.profile:
            stats.dump_stats(args.profile)
            print(f"pstats dump written to {args.profile}", file=sys.stderr)

    output = settings.child("output", default={})
    log_path = output.get("message_log", None)
    if log_path:
        count = simulation.message_log.write_jsonl(log_path)
        summary["message_log"] = {"path": log_path, "records": count}
    summary_path = output.get("summary", None)
    if summary_path:
        with open(summary_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)

    if not args.quiet:
        json.dump(summary, sys.stdout, indent=2)
        sys.stdout.write("\n")
    return 0 if results.drained else 1


if __name__ == "__main__":
    sys.exit(main())

"""Command line entry point (paper Listing 1).

Usage::

    supersim myconfig.json \\
        network.router.architecture=string=my_arch \\
        network.concentration=uint=16

or equivalently ``python -m repro myconfig.json <overrides...>``.

The first argument is a JSON settings file; every following argument is
a ``path=type=value`` override.  On completion a JSON summary is printed
to stdout.  An optional top-level ``output`` block controls artifacts::

    "output": {
      "message_log": "messages.jsonl",   # SSParse input
      "summary": "summary.json"
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.config.settings import Settings
from repro.sim import Simulation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="supersim",
        description="Flit-level interconnection network simulator "
        "(SuperSim reproduction)",
    )
    parser.add_argument("config", help="JSON settings file")
    parser.add_argument(
        "overrides",
        nargs="*",
        help="settings overrides of the form path=type=value",
    )
    parser.add_argument(
        "--max-time",
        type=int,
        default=None,
        help="hard stop at this simulated tick (overrides simulator.max_time)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary on stdout"
    )
    parser.add_argument(
        "--progress",
        type=int,
        metavar="TICKS",
        default=None,
        help="print a progress line every TICKS simulated ticks",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    overrides = list(args.overrides)
    if args.progress:
        overrides.append(f"simulator.monitor.period=uint={args.progress}")
        overrides.append("simulator.monitor.print=bool=true")
    settings = Settings.from_file(args.config, overrides)
    simulation = Simulation(settings)
    results = simulation.run(max_time=args.max_time)
    summary = results.summary()

    output = settings.child("output", default={})
    log_path = output.get("message_log", None)
    if log_path:
        count = simulation.message_log.write_jsonl(log_path)
        summary["message_log"] = {"path": log_path, "records": count}
    summary_path = output.get("summary", None)
    if summary_path:
        with open(summary_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)

    if not args.quiet:
        json.dump(summary, sys.stdout, indent=2)
        sys.stdout.write("\n")
    return 0 if results.drained else 1


if __name__ == "__main__":
    sys.exit(main())

"""Import every packaged component model so it registers with the
object factory.

SuperSim's C++ factories self-register at static-initialization time; in
Python, registration happens at import time, so something must import
the model modules.  :func:`load_all` is that something -- the
Simulation builder and the test suite call it once.  User extensions
register themselves the same way: import your module (anywhere) before
building the simulation and its models become available by name, with
zero changes to this code base (§III-D).
"""

from __future__ import annotations

import importlib

_MODEL_MODULES = (
    # Router architectures.
    "repro.router.output_queued",
    "repro.router.input_queued",
    "repro.router.input_output_queued",
    # Arbiters and congestion sensors.
    "repro.router.arbiter",
    "repro.router.congestion",
    # Interfaces.
    "repro.net.interface",
    # Topologies.
    "repro.topology.torus",
    "repro.topology.folded_clos",
    "repro.topology.hyperx",
    "repro.topology.dragonfly",
    "repro.topology.parking_lot",
    # Routing algorithms.
    "repro.routing.torus",
    "repro.routing.folded_clos",
    "repro.routing.hyperx",
    "repro.routing.dragonfly",
    "repro.routing.chain",
    # Workload models.
    "repro.workload.blast",
    "repro.workload.pulse",
    "repro.workload.request_reply",
    "repro.workload.traffic",
    "repro.workload.size",
    "repro.workload.injection",
)


def load_all() -> None:
    """Import all packaged model modules (idempotent)."""
    for module in _MODEL_MODULES:
        importlib.import_module(module)

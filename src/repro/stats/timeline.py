"""Time-binned statistics for transient analyses (paper Fig. 5).

The Blast/Pulse transient experiment plots mean latency against message
injection time; :func:`latency_timeline` produces exactly that series
from message records.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def latency_timeline(
    records: Sequence,
    bin_ticks: int,
    start_tick: Optional[int] = None,
    end_tick: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bin records by creation time and average their latency.

    Returns ``(bin_centers, mean_latency, counts)``; bins with no
    samples hold NaN latency.
    """
    if bin_ticks < 1:
        raise ValueError(f"bin_ticks must be >= 1, got {bin_ticks}")
    if not records:
        return np.array([]), np.array([]), np.array([])
    created = np.array([r.created_tick for r in records], dtype=float)
    latency = np.array([r.latency for r in records], dtype=float)
    lo = float(start_tick) if start_tick is not None else created.min()
    hi = float(end_tick) if end_tick is not None else created.max() + 1
    edges = np.arange(lo, hi + bin_ticks, bin_ticks)
    counts, _ = np.histogram(created, bins=edges)
    sums, _ = np.histogram(created, bins=edges, weights=latency)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, means, counts


def delivery_rate_timeline(
    records: Sequence,
    bin_ticks: int,
    num_terminals: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Delivered flits per terminal per tick, binned by delivery time."""
    if not records:
        return np.array([]), np.array([])
    delivered = np.array([r.delivered_tick for r in records], dtype=float)
    flits = np.array([r.num_flits for r in records], dtype=float)
    edges = np.arange(delivered.min(), delivered.max() + bin_ticks, bin_ticks)
    totals, _ = np.histogram(delivered, bins=edges, weights=flits)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, totals / (bin_ticks * num_terminals)

"""Latency distributions and percentiles.

Of critical importance to all the analysis tools is analyzing and
viewing latency *distributions*, not just average latency (paper §V):
the percentile distribution tells you the expected latency for N-way
parallelism (the 99.9th percentile is the latency 1 in 1000 packets
exceeds, i.e. what a 1000-wide collective operation should expect).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: The percentile ladder used by load-vs-latency plots (Fig. 8).
STANDARD_PERCENTILES = (50.0, 90.0, 99.0, 99.9, 99.99)


class LatencyDistribution:
    """An empirical distribution of latency samples (ticks)."""

    def __init__(self, samples: Iterable[float]):
        self._samples = np.asarray(sorted(samples), dtype=float)

    @classmethod
    def from_records(cls, records, kind: str = "message") -> "LatencyDistribution":
        """Build from MessageRecords.

        ``kind``: ``"message"`` (creation to delivery), ``"network"``
        (wire time only), or ``"packet"`` (every packet separately).
        """
        if kind == "message":
            return cls(r.latency for r in records)
        if kind == "network":
            return cls(r.network_latency for r in records)
        if kind == "packet":
            return cls(p.latency for r in records for p in r.packets)
        raise ValueError(f"unknown latency kind {kind!r}")

    # -- basic statistics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        return len(self._samples) == 0

    def mean(self) -> float:
        return float(np.mean(self._samples)) if len(self._samples) else float("nan")

    def minimum(self) -> float:
        return float(self._samples[0]) if len(self._samples) else float("nan")

    def maximum(self) -> float:
        return float(self._samples[-1]) if len(self._samples) else float("nan")

    def std(self) -> float:
        return float(np.std(self._samples)) if len(self._samples) else float("nan")

    def percentile(self, percent: float) -> float:
        """The latency not exceeded by ``percent``% of samples."""
        if not len(self._samples):
            return float("nan")
        if not 0.0 <= percent <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percent}")
        return float(np.percentile(self._samples, percent, method="lower"))

    def summary(
        self, percentiles: Sequence[float] = STANDARD_PERCENTILES
    ) -> Dict[str, float]:
        result = {"count": float(len(self._samples)), "mean": self.mean()}
        for percent in percentiles:
            result[f"p{percent:g}"] = self.percentile(percent)
        return result

    # -- distribution shapes (SSPlot inputs) --------------------------------------------

    def pdf(self, num_bins: int = 50) -> Tuple[np.ndarray, np.ndarray]:
        """(bin_centers, density) suitable for a PDF plot."""
        if self.empty:
            return np.array([]), np.array([])
        density, edges = np.histogram(self._samples, bins=num_bins, density=True)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, density

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(latency, cumulative_fraction) suitable for a CDF plot."""
        if self.empty:
            return np.array([]), np.array([])
        fractions = np.arange(1, len(self._samples) + 1) / len(self._samples)
        return self._samples.copy(), fractions

    def percentile_curve(
        self, max_nines: int = 4, points_per_decade: int = 20
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The percentile-distribution plot of Fig. 7.

        X is latency; Y is the number of "nines" of the percentile
        (log-scaled tail: 0.9 -> 1, 0.99 -> 2, ...).  Returns
        (latencies, nines).
        """
        if self.empty:
            return np.array([]), np.array([])
        nines = np.linspace(0.0, float(max_nines), max_nines * points_per_decade)
        percents = (1.0 - 10.0 ** (-nines)) * 100.0
        latencies = np.array([self.percentile(p) for p in percents])
        return latencies, nines

    def samples(self) -> np.ndarray:
        return self._samples.copy()

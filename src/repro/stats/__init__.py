"""Statistics: message records, latency distributions, timelines."""

from repro.stats.latency import STANDARD_PERCENTILES, LatencyDistribution
from repro.stats.monitor import ProgressMonitor, ProgressSample
from repro.stats.records import MessageLog, MessageRecord, PacketRecord, read_jsonl
from repro.stats.timeline import delivery_rate_timeline, latency_timeline

__all__ = [
    "LatencyDistribution",
    "MessageLog",
    "MessageRecord",
    "PacketRecord",
    "ProgressMonitor",
    "ProgressSample",
    "STANDARD_PERCENTILES",
    "delivery_rate_timeline",
    "latency_timeline",
    "read_jsonl",
]

"""Message records and the message log.

During the sampling window SuperSim logs network transaction
information to a verbose file format that SSParse later digests
(paper §V).  Here the :class:`MessageLog` observes every interface,
keeps structured in-memory records, and can export the JSON-lines file
format consumed by :mod:`repro.tools.ssparse`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network


class PacketRecord:
    """Timing of one delivered packet."""

    __slots__ = ("send_tick", "receive_tick", "hop_count", "non_minimal")

    def __init__(self, send_tick, receive_tick, hop_count, non_minimal):
        self.send_tick = send_tick
        self.receive_tick = receive_tick
        self.hop_count = hop_count
        self.non_minimal = non_minimal

    @property
    def latency(self) -> int:
        return self.receive_tick - self.send_tick

    def to_dict(self) -> dict:
        return {
            "send": self.send_tick,
            "recv": self.receive_tick,
            "hops": self.hop_count,
            "nonmin": self.non_minimal,
        }


class MessageRecord:
    """A delivered message with workload- and network-level timing."""

    __slots__ = (
        "message_id",
        "application_id",
        "transaction_id",
        "source",
        "destination",
        "num_flits",
        "sampled",
        "created_tick",
        "delivered_tick",
        "packets",
        "minimal_hops",
    )

    def __init__(self, message: Message, minimal_hops: Optional[int] = None):
        self.message_id = message.id
        self.application_id = message.application_id
        self.transaction_id = message.transaction_id
        self.source = message.source
        self.destination = message.destination
        self.num_flits = message.num_flits
        self.sampled = message.sampled
        self.created_tick = message.created_tick
        self.delivered_tick = message.delivered_tick
        self.minimal_hops = minimal_hops
        self.packets = [
            PacketRecord(
                packet.head_flit.send_tick,
                packet.tail_flit.receive_tick,
                packet.hop_count,
                packet.non_minimal,
            )
            for packet in message.packets
        ]

    @property
    def latency(self) -> int:
        """End-to-end message latency (creation to delivery)."""
        return self.delivered_tick - self.created_tick

    @property
    def network_latency(self) -> int:
        """First flit on the wire to last flit off the wire."""
        start = min(p.send_tick for p in self.packets)
        end = max(p.receive_tick for p in self.packets)
        return end - start

    @property
    def non_minimal(self) -> bool:
        return any(p.non_minimal for p in self.packets)

    def to_dict(self) -> dict:
        return {
            "id": self.message_id,
            "app": self.application_id,
            "txn": self.transaction_id,
            "src": self.source,
            "dst": self.destination,
            "flits": self.num_flits,
            "sampled": self.sampled,
            "created": self.created_tick,
            "delivered": self.delivered_tick,
            "min_hops": self.minimal_hops,
            "packets": [p.to_dict() for p in self.packets],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MessageRecord":
        record = cls.__new__(cls)
        record.message_id = data["id"]
        record.application_id = data["app"]
        record.transaction_id = data["txn"]
        record.source = data["src"]
        record.destination = data["dst"]
        record.num_flits = data["flits"]
        record.sampled = data["sampled"]
        record.created_tick = data["created"]
        record.delivered_tick = data["delivered"]
        record.minimal_hops = data.get("min_hops")
        record.packets = [
            PacketRecord(p["send"], p["recv"], p["hops"], p["nonmin"])
            for p in data["packets"]
        ]
        return record


class MessageLog:
    """Observes a network's interfaces and records every delivery."""

    def __init__(self, network: "Network", compute_minimal_hops: bool = True):
        self.network = network
        self.records: List[MessageRecord] = []
        self._compute_minimal_hops = compute_minimal_hops
        for interface in network.interfaces:
            interface.message_delivered_listeners.append(self._on_delivery)

    def _on_delivery(self, message: Message) -> None:
        minimal = None
        if self._compute_minimal_hops:
            minimal = self.network.minimal_hops(message.source, message.destination)
        self.records.append(MessageRecord(message, minimal))

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def sampled(self) -> List[MessageRecord]:
        return [r for r in self.records if r.sampled]

    def for_application(self, application_id: int) -> List[MessageRecord]:
        return [r for r in self.records if r.application_id == application_id]

    def flits_delivered_between(self, start_tick: int, end_tick: int) -> int:
        """Flits (of any message) delivered inside [start, end)."""
        return sum(
            r.num_flits
            for r in self.records
            if start_tick <= r.delivered_tick < end_tick
        )

    # -- export ---------------------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per record; returns the record count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict()))
                handle.write("\n")
        return len(self.records)


def read_jsonl(path: str) -> List[MessageRecord]:
    """Load records written by :meth:`MessageLog.write_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(MessageRecord.from_dict(json.loads(line)))
    return records

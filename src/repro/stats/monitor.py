"""Progress monitoring.

Long simulations need visibility: the monitor samples simulation state
on a fixed tick period and keeps a history of (tick, executed events,
delivered flits, wall seconds).  The CLI's ``--progress`` flag prints
each sample; programmatic users read ``history`` or register a
callback.  This mirrors the periodic info logging of the original
simulator's runtime output.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, List, NamedTuple, Optional

from repro.core.component import Component
from repro.core.event import Event
from repro.net.phases import EPS_MONITOR

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator
    from repro.net.network import Network


class ProgressSample(NamedTuple):
    tick: int
    executed_events: int
    flits_ejected: int
    wall_seconds: float


class ProgressMonitor(Component):
    """Samples simulation progress every ``period`` ticks."""

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        network: "Network",
        period: int,
        callback: Optional[Callable[[ProgressSample], None]] = None,
        print_samples: bool = False,
    ):
        super().__init__(simulator, name, None)
        if period < 1:
            raise ValueError(f"monitor period must be >= 1, got {period}")
        self.network = network
        self.period = period
        self.callback = callback
        self.print_samples = print_samples
        self.history: List[ProgressSample] = []
        self._start_wall = time.monotonic()
        self.schedule_at(self._sample, period, epsilon=EPS_MONITOR)

    def _sample(self, event: Event) -> None:
        sample = ProgressSample(
            tick=self.simulator.tick,
            executed_events=self.simulator.executed_events,
            flits_ejected=sum(
                interface.flits_ejected for interface in self.network.interfaces
            ),
            wall_seconds=time.monotonic() - self._start_wall,
        )
        self.history.append(sample)
        if self.callback is not None:
            self.callback(sample)
        if self.print_samples:
            rate = sample.executed_events / max(sample.wall_seconds, 1e-9)
            print(
                f"[progress] tick={sample.tick} "
                f"events={sample.executed_events} "
                f"flits={sample.flits_ejected} "
                f"({rate / 1000:.0f}k events/s)"
            )
        # Keep sampling only while other work remains: if the monitor is
        # the only event source left, the queue would never drain.
        if self.simulator.queue_size > 0:
            self.schedule(self._sample, self.period, epsilon=EPS_MONITOR)

    def event_rate(self) -> float:
        """Mean executed events per wall second so far."""
        if not self.history:
            return 0.0
        last = self.history[-1]
        return last.executed_events / max(last.wall_seconds, 1e-9)

    def delivery_rate(self) -> float:
        """Flits ejected per simulated tick over the sampled span."""
        if not self.history:
            return 0.0
        last = self.history[-1]
        return last.flits_ejected / max(last.tick, 1)

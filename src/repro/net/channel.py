"""Channels: latency-bearing links between devices.

A channel moves one item (a flit or a credit) from a source device port
to a sink device port after a fixed latency.  Flit channels additionally
enforce a bandwidth of one flit per channel-clock cycle -- the *phit*
rate.  Credit channels carry the reverse credit flow with the same
latency; multiple credits (for different VCs) may share a cycle, which
models the credit piggybacking used by real links.

High channel latency is a defining property of large-scale networks
(paper §I): a 10 m cable at ~5 ns/m is 50 ns, i.e. tens of flit times in
flight.  The channel keeps an utilization count so analyses can report
channel load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.component import Component
from repro.core.event import Event
from repro.net.credit import Credit
from repro.net.flit import Flit
from repro.net.phases import EPS_DELIVER

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator
    from repro.net.device import PortedDevice


class ChannelError(RuntimeError):
    """Raised on channel protocol violations (overdriving, no sink)."""


class Channel(Component):
    """A unidirectional flit link with latency and one-flit-per-cycle pacing."""

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        latency: int,
        period: int = 1,
    ):
        super().__init__(simulator, name, parent)
        if latency < 1:
            raise ValueError(f"channel latency must be >= 1 tick, got {latency}")
        if period < 1:
            raise ValueError(f"channel period must be >= 1 tick, got {period}")
        self.latency = latency
        self.period = period
        self._sink: Optional["PortedDevice"] = None
        self._sink_port: Optional[int] = None
        self._next_free_tick = 0
        self.flits_carried = 0

    def connect_sink(self, sink: "PortedDevice", port: int) -> None:
        if self._sink is not None:
            raise ChannelError(f"{self.full_name}: sink already connected")
        self._sink = sink
        self._sink_port = port

    @property
    def sink(self) -> Optional["PortedDevice"]:
        return self._sink

    @property
    def sink_port(self) -> Optional[int]:
        return self._sink_port

    def can_send(self) -> bool:
        """True when the channel is free this cycle."""
        return self.simulator.tick >= self._next_free_tick

    def next_send_tick(self) -> int:
        """Earliest tick at which the channel accepts the next flit."""
        return max(self._next_free_tick, self.simulator.tick)

    def send_flit(self, flit: Flit) -> None:
        """Transmit ``flit``; it arrives at the sink after ``latency``."""
        if self._sink is None:
            raise ChannelError(f"{self.full_name}: no sink connected")
        now = self.simulator.tick
        if now < self._next_free_tick:
            raise ChannelError(
                f"{self.full_name}: overdriven -- busy until {self._next_free_tick}, "
                f"send attempted at {now}"
            )
        self._next_free_tick = now + self.period
        self.flits_carried += 1
        self.simulator.call_at(
            now + self.latency, self._deliver, data=flit, epsilon=EPS_DELIVER
        )

    def _deliver(self, event: Event) -> None:
        self._sink.receive_flit(self._sink_port, event.data)

    def utilization(self, window_ticks: int) -> float:
        """Flits carried per channel cycle over ``window_ticks``."""
        if window_ticks <= 0:
            return 0.0
        cycles = window_ticks / self.period
        return self.flits_carried / cycles


class CreditChannel(Component):
    """A unidirectional credit link with latency (no pacing)."""

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        latency: int,
    ):
        super().__init__(simulator, name, parent)
        if latency < 1:
            raise ValueError(f"credit latency must be >= 1 tick, got {latency}")
        self.latency = latency
        self._sink: Optional["PortedDevice"] = None
        self._sink_port: Optional[int] = None
        self.credits_carried = 0

    def connect_sink(self, sink: "PortedDevice", port: int) -> None:
        if self._sink is not None:
            raise ChannelError(f"{self.full_name}: sink already connected")
        self._sink = sink
        self._sink_port = port

    def send_credit(self, credit: Credit) -> None:
        if self._sink is None:
            raise ChannelError(f"{self.full_name}: no sink connected")
        self.credits_carried += 1
        self.simulator.call_at(
            self.simulator.tick + self.latency,
            self._deliver,
            data=credit,
            epsilon=EPS_DELIVER,
        )

    def _deliver(self, event: Event) -> None:
        self._sink.receive_credit(self._sink_port, event.data)

"""Channels: latency-bearing links between devices.

A channel moves one item (a flit or a credit) from a source device port
to a sink device port after a fixed latency.  Flit channels additionally
enforce a bandwidth of one flit per channel-clock cycle -- the *phit*
rate.  Credit channels carry the reverse credit flow with the same
latency; multiple credits (for different VCs) may share a cycle, which
models the credit piggybacking used by real links.

High channel latency is a defining property of large-scale networks
(paper §I): a 10 m cable at ~5 ns/m is 50 ns, i.e. tens of flit times in
flight.  The channel keeps an utilization count so analyses can report
channel load.

Delivery is *coalesced* (see ``docs/PERFORMANCE.md``): instead of one
heap event per item in flight, each channel keeps an in-flight FIFO of
``(due_tick, item)`` pairs and at most one pending delivery event.  The
event drains every item due at the current tick, then reschedules
itself for the next due tick (tracked as the plain int ``_head_due``;
no Event handle is retained, so the engine freelist stays free to
recycle).  Dues are nondecreasing by construction -- simulation time is
monotone and the latency per channel is fixed -- so the FIFO never
needs sorting.  Heap traffic drops from O(items) to O(busy-ticks per
channel), and every per-item hook (sanitizers, delivery digests)
attaches to :meth:`_deliver_item`, which both delivery paths funnel
through.

The pre-coalescing one-event-per-item path is kept behind
:func:`set_legacy_delivery` (or ``SUPERSIM_LEGACY_DELIVERY=1`` in the
environment) so determinism tests can prove the two paths produce
identical simulations.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.component import Component
from repro.core.event import Event
from repro.net.credit import Credit
from repro.net.flit import Flit
from repro.net.phases import EPS_DELIVER

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator
    from repro.net.device import PortedDevice

#: When True, channels schedule one heap event per item (the
#: pre-coalescing behaviour).  Channels capture the flag at
#: construction, so toggle it before building a network.
_LEGACY_DELIVERY = os.environ.get("SUPERSIM_LEGACY_DELIVERY", "") not in (
    "", "0", "false", "no",
)


def legacy_delivery_enabled() -> bool:
    """True when new channels will use the one-event-per-item path."""
    return _LEGACY_DELIVERY


def set_legacy_delivery(enabled: bool) -> bool:
    """Select the delivery path for channels built from now on.

    Returns the previous setting so tests can restore it.
    """
    global _LEGACY_DELIVERY
    previous = _LEGACY_DELIVERY
    _LEGACY_DELIVERY = bool(enabled)
    return previous


class ChannelError(RuntimeError):
    """Raised on channel protocol violations (overdriving, no sink)."""


class Channel(Component):
    """A unidirectional flit link with latency and one-flit-per-cycle pacing."""

    #: True on channels cut by a shard partition: the sharded runtime
    #: (:mod:`repro.partition.runtime`) replaces one endpoint with a
    #: proxy (egress serializes sends onto IPC; ingress lands records
    #: through ``_deliver_item``), so per-link invariant checkers that
    #: need both endpoints (CreditSan) must skip these links.  Always
    #: False in single-process simulation.
    shard_proxy = False

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        latency: int,
        period: int = 1,
    ):
        super().__init__(simulator, name, parent)
        if latency < 1:
            raise ValueError(f"channel latency must be >= 1 tick, got {latency}")
        if period < 1:
            raise ValueError(f"channel period must be >= 1 tick, got {period}")
        self.latency = latency
        self.period = period
        self._sink: Optional["PortedDevice"] = None
        self._sink_port: Optional[int] = None
        self._next_free_tick = 0
        self.flits_carried = 0
        # Coalesced delivery state: FIFO of (due_tick, flit) plus the due
        # tick of the one pending delivery event (-1 = none pending).
        self._inflight = deque()
        self._head_due = -1
        self._legacy = _LEGACY_DELIVERY

    def connect_sink(self, sink: "PortedDevice", port: int) -> None:
        if self._sink is not None:
            raise ChannelError(f"{self.full_name}: sink already connected")
        self._sink = sink
        self._sink_port = port

    @property
    def sink(self) -> Optional["PortedDevice"]:
        return self._sink

    @property
    def sink_port(self) -> Optional[int]:
        return self._sink_port

    def can_send(self) -> bool:
        """True when the channel is free this cycle."""
        return self.simulator.tick >= self._next_free_tick

    def next_send_tick(self) -> int:
        """Earliest tick at which the channel accepts the next flit."""
        return max(self._next_free_tick, self.simulator.tick)

    def inflight_items(self) -> int:
        """Items currently on the wire (either delivery path)."""
        return len(self._inflight)

    def send_flit(self, flit: Flit) -> None:
        """Transmit ``flit``; it arrives at the sink after ``latency``."""
        if self._sink is None:
            raise ChannelError(f"{self.full_name}: no sink connected")
        now = self.simulator.tick
        if now < self._next_free_tick:
            raise ChannelError(
                f"{self.full_name}: overdriven -- busy until {self._next_free_tick}, "
                f"send attempted at {now}"
            )
        self._next_free_tick = now + self.period
        self.flits_carried += 1
        due = now + self.latency
        if self._legacy:
            self._inflight.append((due, flit))
            self.simulator.call_at(due, self._deliver, data=flit, epsilon=EPS_DELIVER)
            return
        self._inflight.append((due, flit))
        if self._head_due < 0:
            self._head_due = due
            self.simulator.call_at(
                due, self._deliver_batch, epsilon=EPS_DELIVER
            )

    def _deliver(self, event: Event) -> None:
        # Legacy one-event-per-item path (see module docstring).
        self._inflight.popleft()
        self._deliver_item(event.data)

    def _deliver_batch(self, event: Event) -> None:
        inflight = self._inflight
        now = self.simulator.tick
        deliver_item = self._deliver_item
        while inflight and inflight[0][0] == now:
            deliver_item(inflight.popleft()[1])
        if inflight:
            due = inflight[0][0]
            self._head_due = due
            self.simulator.call_at(
                due, self._deliver_batch, epsilon=EPS_DELIVER
            )
        else:
            self._head_due = -1

    def _deliver_item(self, flit: Flit) -> None:
        """Hand one landed flit to the sink (sanitizer hookpoint)."""
        self._sink.receive_flit(self._sink_port, flit)

    def utilization(self, window_ticks: int) -> float:
        """Flits carried per channel cycle over ``window_ticks``."""
        if window_ticks <= 0:
            return 0.0
        cycles = window_ticks / self.period
        return self.flits_carried / cycles


class CreditChannel(Component):
    """A unidirectional credit link with latency (no pacing).

    Several credits may be sent within one tick (different VCs of the
    same link free slots in the same cycle); the coalesced path delivers
    all of them from a single event.
    """

    #: see :attr:`Channel.shard_proxy`.
    shard_proxy = False

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        latency: int,
    ):
        super().__init__(simulator, name, parent)
        if latency < 1:
            raise ValueError(f"credit latency must be >= 1 tick, got {latency}")
        self.latency = latency
        self._sink: Optional["PortedDevice"] = None
        self._sink_port: Optional[int] = None
        self.credits_carried = 0
        self._inflight = deque()
        self._head_due = -1
        self._legacy = _LEGACY_DELIVERY

    def connect_sink(self, sink: "PortedDevice", port: int) -> None:
        if self._sink is not None:
            raise ChannelError(f"{self.full_name}: sink already connected")
        self._sink = sink
        self._sink_port = port

    @property
    def sink(self) -> Optional["PortedDevice"]:
        return self._sink

    @property
    def sink_port(self) -> Optional[int]:
        return self._sink_port

    def inflight_items(self) -> int:
        """Credits currently on the wire (either delivery path)."""
        return len(self._inflight)

    def send_credit(self, credit: Credit) -> None:
        if self._sink is None:
            raise ChannelError(f"{self.full_name}: no sink connected")
        self.credits_carried += 1
        due = self.simulator.tick + self.latency
        if self._legacy:
            self._inflight.append((due, credit))
            self.simulator.call_at(
                due, self._deliver, data=credit, epsilon=EPS_DELIVER
            )
            return
        self._inflight.append((due, credit))
        if self._head_due < 0:
            self._head_due = due
            self.simulator.call_at(
                due, self._deliver_batch, epsilon=EPS_DELIVER
            )

    def _deliver(self, event: Event) -> None:
        # Legacy one-event-per-item path (see module docstring).
        self._inflight.popleft()
        self._deliver_item(event.data)

    def _deliver_batch(self, event: Event) -> None:
        inflight = self._inflight
        now = self.simulator.tick
        deliver_item = self._deliver_item
        while inflight and inflight[0][0] == now:
            deliver_item(inflight.popleft()[1])
        if inflight:
            due = inflight[0][0]
            self._head_due = due
            self.simulator.call_at(
                due, self._deliver_batch, epsilon=EPS_DELIVER
            )
        else:
            self._head_due = -1

    def _deliver_item(self, credit: Credit) -> None:
        """Hand one landed credit to the sink (sanitizer hookpoint)."""
        self._sink.receive_credit(self._sink_port, credit)

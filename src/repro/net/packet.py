"""Packets: the unit of routing.

A packet carries a contiguous run of flits from one terminal to another.
Routing state (the per-hop output decision, hop counts, algorithm
scratch space) lives on the packet, because in a wormhole router the
head flit makes decisions that all body flits follow.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.net.flit import FLIT_SLAB, Flit

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message

_global_packet_ids = itertools.count()


@contextlib.contextmanager
def preserve_packet_ids() -> Iterator[None]:
    """Restore the process-global packet *and* message id counters on exit.

    Packet ``global_id`` feeds routing decisions (DOR VC rotation, the
    folded-Clos up-port hash), so two same-seed simulations in one
    process only behave identically when each starts from the same
    counter position.  Every caller that runs a throwaway or auxiliary
    simulation (lint network construction, benchmark rounds, golden
    digest runs, shard workers) wraps it in this context manager so the
    counters come back to where they started.
    """
    global _global_packet_ids
    from repro.net import message as message_mod

    saved_packet = next(_global_packet_ids)
    saved_message = next(message_mod._global_message_ids)
    _global_packet_ids = itertools.count(saved_packet)
    message_mod._global_message_ids = itertools.count(saved_message)
    try:
        yield
    finally:
        _global_packet_ids = itertools.count(saved_packet)
        message_mod._global_message_ids = itertools.count(saved_message)


class Packet:
    """A routable sequence of flits belonging to a message.

    Attributes:
        message: owning message.
        id: index of this packet within its message.
        global_id: unique id across the whole simulation (debug aid).
        flits: the flits of this packet, index order.
        hop_count: number of routers traversed so far.
        non_minimal: set by adaptive routing algorithms when the packet
            took a non-minimal path (used by phantom-congestion analyses).
        intermediate: Valiant-style intermediate destination, if any.
        routing_state: free-form scratch dict for routing algorithms.
        injection_tick: when the head flit entered the network.
    """

    __slots__ = (
        "message",
        "id",
        "global_id",
        "flits",
        "hop_count",
        "non_minimal",
        "intermediate",
        "routing_state",
        "injection_tick",
    )

    def __init__(self, message: "Message", packet_id: int, num_flits: int):
        if num_flits < 1:
            raise ValueError(f"packet must have at least 1 flit, got {num_flits}")
        self.message = message
        self.id = packet_id
        self.global_id = next(_global_packet_ids)
        # Acquire views from the slab: steady state recycles the flit
        # objects of already-delivered messages instead of allocating.
        acquire = FLIT_SLAB.acquire
        last = num_flits - 1
        self.flits: List[Flit] = [
            acquire(self, i, i == 0, i == last) for i in range(num_flits)
        ]
        self.hop_count = 0
        self.non_minimal = False
        self.intermediate: Optional[int] = None
        self.routing_state: Dict[str, Any] = {}
        self.injection_tick: Optional[int] = None

    # -- convenience ---------------------------------------------------------

    @property
    def num_flits(self) -> int:
        return len(self.flits)

    @property
    def head_flit(self) -> Flit:
        return self.flits[0]

    @property
    def tail_flit(self) -> Flit:
        return self.flits[-1]

    @property
    def source(self) -> int:
        return self.message.source

    @property
    def destination(self) -> int:
        return self.message.destination

    def age(self, now_tick: int) -> int:
        """Ticks since injection; used by age-based arbitration."""
        if self.injection_tick is None:
            return 0
        return now_tick - self.injection_tick

    def __repr__(self):
        return (
            f"Packet(g{self.global_id}, msg={self.message.id}, "
            f"{self.source}->{self.destination}, {self.num_flits}f)"
        )

"""Epsilon conventions.

Epsilons order operations within one tick (paper §III-B).  The
simulator-wide convention used by all built-in components:

========  =======================================================
epsilon   what runs there
========  =======================================================
0         channel deliveries: flits and credits arrive
1         terminal traffic generation (new messages appear)
2         internal pipeline arrivals (crossbar traversal done)
3         router / interface cycle step (allocation, transmission)
5         workload state machine transitions
7         monitors and statistics sampling
========  =======================================================

A component is free to use other epsilons, but sticking to these makes
cross-component ordering predictable: everything that arrives at tick T
is visible to the allocation step of tick T, and statistics observe the
post-step state.
"""

EPS_DELIVER = 0
EPS_GENERATE = 1
EPS_PIPELINE = 2
EPS_STEP = 3
EPS_CONTROL = 5
EPS_MONITOR = 7

"""PortedDevice: the wiring contract shared by routers and interfaces.

A *port* is a bidirectional attachment point: each port has an outgoing
flit channel (paired with an incoming credit channel that returns
credits for the flits we send) and an incoming flit channel (paired with
an outgoing credit channel that returns credits for the flits we
receive).  The :func:`wire` helper in :mod:`repro.net.network` connects
two ports with all four channels.

Concrete devices implement ``receive_flit`` / ``receive_credit`` and use
``send_flit`` / ``send_credit`` plus the per-port
:class:`~repro.net.credit.CreditTracker` to obey flow control.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.component import Component
from repro.net.channel import Channel, CreditChannel
from repro.net.credit import Credit, CreditTracker
from repro.net.flit import Flit

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import Simulator


class WiringError(RuntimeError):
    """Raised when a device's ports are wired inconsistently."""


class PortedDevice(Component):
    """Base class for any device with flow-controlled bidirectional ports."""

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        num_ports: int,
        num_vcs: int,
    ):
        super().__init__(simulator, name, parent)
        if num_ports < 1:
            raise ValueError(f"device needs at least 1 port, got {num_ports}")
        if num_vcs < 1:
            raise ValueError(f"device needs at least 1 VC, got {num_vcs}")
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self._flit_out: List[Optional[Channel]] = [None] * num_ports
        self._credit_out: List[Optional[CreditChannel]] = [None] * num_ports
        self._output_credits: List[Optional[CreditTracker]] = [None] * num_ports
        # Interned credit singletons by VC, resolved once per device so
        # the credit-return hot path skips the Credit.of classmethod.
        self._credit_of = [Credit.of(vc) for vc in range(num_vcs)]

    # -- wiring (called by repro.net.network.wire) ---------------------------

    def set_flit_channel_out(self, port: int, channel: Channel) -> None:
        if self._flit_out[port] is not None:
            raise WiringError(f"{self.full_name}: port {port} flit-out already wired")
        self._flit_out[port] = channel

    def set_credit_channel_out(self, port: int, channel: CreditChannel) -> None:
        if self._credit_out[port] is not None:
            raise WiringError(f"{self.full_name}: port {port} credit-out already wired")
        self._credit_out[port] = channel

    def init_output_credits(self, port: int, capacities: List[int]) -> None:
        """Install the credit tracker mirroring the downstream input buffer."""
        if self._output_credits[port] is not None:
            raise WiringError(f"{self.full_name}: port {port} credits already set")
        self._output_credits[port] = CreditTracker(
            capacities, owner_name=f"{self.full_name}.out{port}"
        )

    def port_is_wired(self, port: int) -> bool:
        return self._flit_out[port] is not None

    # -- the flow-control contract ------------------------------------------------

    def input_buffer_capacities(self, port: int) -> List[int]:
        """Per-VC capacity of this device's input buffer at ``port``.

        The wiring helper calls this to size the upstream credit tracker.
        """
        raise NotImplementedError

    def input_occupancy(self, port: int, vc: int) -> int:
        """Flits currently held in this device's input buffer at
        ``(port, vc)``.

        Devices that consume flits the instant they arrive (the standard
        interface's ejection path returns the credit immediately) keep
        the default of ``0``; routers override this with their real
        input-buffer occupancy.  ``repro.sanitize.CreditSan`` uses it to
        close the per-link credit conservation equation.
        """
        return 0

    def receive_flit(self, port: int, flit: Flit) -> None:
        """A flit arrived on the incoming channel of ``port``."""
        raise NotImplementedError

    def receive_credit(self, port: int, credit: Credit) -> None:
        """A credit arrived: downstream freed a slot on ``credit.vc``."""
        raise NotImplementedError

    # -- helpers for subclasses ----------------------------------------------------

    def output_channel(self, port: int) -> Channel:
        channel = self._flit_out[port]
        if channel is None:
            raise WiringError(f"{self.full_name}: port {port} has no flit-out channel")
        return channel

    def output_credit_tracker(self, port: int) -> CreditTracker:
        tracker = self._output_credits[port]
        if tracker is None:
            raise WiringError(f"{self.full_name}: port {port} has no credit tracker")
        return tracker

    def send_flit(self, port: int, flit: Flit) -> None:
        """Transmit a flit on ``port``, consuming one downstream credit."""
        self.output_credit_tracker(port).take(flit.vc)
        self.output_channel(port).send_flit(flit)

    def send_credit(self, port: int, vc: int) -> None:
        """Return one credit upstream for a flit consumed at input ``port``."""
        channel = self._credit_out[port]
        if channel is None:
            raise WiringError(f"{self.full_name}: port {port} has no credit-out channel")
        channel.send_credit(self._credit_of[vc])

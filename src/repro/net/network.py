"""Network base class (paper §IV-B).

A Network component defines the topology and the routing algorithm used
in it.  It does not define the architecture of the Router or the
Interface -- it instantiates them through the object factory and
connects them with Channel components.  When constructing a Network, the
Network provides a routing-algorithm factory closure to each Router it
creates; the router uses it to build RoutingAlgorithm instances per
input port.  In this way the router microarchitecture and the topology
with its accompanying routing algorithm are modeled independently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple, Type

from repro import factory
from repro.core.clock import Clock
from repro.core.component import Component
from repro.net.channel import Channel, CreditChannel
from repro.net.device import PortedDevice
from repro.net.interface import Interface, StandardInterface
from repro.router.base import Router
from repro.routing.base import RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.core.rng import RandomManager
    from repro.core.simulator import Simulator


class NetworkError(RuntimeError):
    """Raised for inconsistent network construction."""


# -- shard-restricted construction (PDES workers) ---------------------------
#
# A shard worker must build the *whole* network object graph -- component
# names, channel wiring, RNG label registration and id sequences have to
# match the single-process run exactly -- but only the routers of its own
# shard ever execute, so only those need finalize() (routing-engine
# construction and congestion-sensor port init, the expensive part of
# construction).  Foreign routers stay inert skeletons: wired, named,
# never scheduled.

_FINALIZE_RESTRICTION: Optional[frozenset] = None


class shard_build_scope:
    """Context manager restricting ``finalize()`` to named components.

    ``names`` holds component full names (a manifest shard's
    ``components`` list).  While active, any Network constructed only
    finalizes routers whose ``full_name`` is in the set.  Interfaces are
    unaffected (their construction is cheap and phantom patching happens
    post-build).  Not reentrant; single-threaded use only.
    """

    def __init__(self, names) -> None:
        self._names = frozenset(names)
        self._previous: Optional[frozenset] = None

    def __enter__(self) -> "shard_build_scope":
        global _FINALIZE_RESTRICTION
        self._previous = _FINALIZE_RESTRICTION
        _FINALIZE_RESTRICTION = self._names
        return self

    def __exit__(self, *exc_info) -> None:
        global _FINALIZE_RESTRICTION
        _FINALIZE_RESTRICTION = self._previous


def wire(
    network: "Network",
    a: PortedDevice,
    port_a: int,
    b: PortedDevice,
    port_b: int,
    latency: int,
    period: int,
) -> None:
    """Connect two device ports with a full bidirectional link.

    Creates four channels: flits a->b and b->a, credits a->b and b->a,
    all with the same latency.  Also sizes each side's credit tracker
    from the opposite side's input buffer capacities.
    """
    simulator = network.simulator
    index = network._next_link_index()
    for src, sp, dst, dp, tag in (
        (a, port_a, b, port_b, "f0"),
        (b, port_b, a, port_a, "f1"),
    ):
        channel = Channel(
            simulator, f"link{index}_{tag}", network, latency, period
        )
        src.set_flit_channel_out(sp, channel)
        channel.connect_sink(dst, dp)
        network.flit_channels.append(channel)
    for src, sp, dst, dp, tag in (
        (a, port_a, b, port_b, "c0"),
        (b, port_b, a, port_a, "c1"),
    ):
        channel = CreditChannel(simulator, f"link{index}_{tag}", network, latency)
        src.set_credit_channel_out(sp, channel)
        channel.connect_sink(dst, dp)
    a.init_output_credits(port_a, b.input_buffer_capacities(port_b))
    b.init_output_credits(port_b, a.input_buffer_capacities(port_a))


class Network(Component):
    """Abstract base: builds routers, interfaces, and channels.

    Common settings:
        ``num_vcs`` -- virtual channels per port (default 1).
        ``channel_latency`` -- router-to-router latency in ticks.
        ``terminal_channel_latency`` -- interface-to-router latency.
        ``channel_period`` -- ticks per flit on every channel (a period
            of 2 with the 1-tick router core models 2x frequency
            speedup, §III-B).
        ``router`` -- settings block for the router architecture
            (``architecture`` selects the factory model).
        ``interface`` -- settings block for the interface model
            (``type`` defaults to ``standard``).
        ``routing`` -- settings block; ``algorithm`` selects the model.
    """

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        settings: "Settings",
        random_manager: "RandomManager",
    ):
        super().__init__(simulator, name, parent)
        self.settings = settings
        self.random = random_manager
        self.num_vcs = settings.get_uint("num_vcs", 1)
        self.channel_latency = settings.get_uint("channel_latency", 1)
        self.terminal_channel_latency = settings.get_uint(
            "terminal_channel_latency", 1
        )
        self.channel_period = settings.get_uint("channel_period", 1)
        self.core_clock = Clock(simulator, period=1)
        self.channel_clock = Clock(simulator, period=self.channel_period)

        self.router_settings = settings.child("router")
        self.interface_settings = settings.child("interface", default={})
        self.routing_settings = settings.child("routing")
        self.routing_class: Type[RoutingAlgorithm] = factory.lookup(
            RoutingAlgorithm, self.routing_settings.get_str("algorithm")
        )
        self._check_routing_compatible()

        self.routers: List[Router] = []
        self.interfaces: List[Interface] = []
        self.flit_channels: List[Channel] = []
        self._link_count = 0

        self._build()
        restriction = _FINALIZE_RESTRICTION
        for router in self.routers:
            if restriction is None or router.full_name in restriction:
                router.finalize()
        self._check_fully_wired()

    # -- subclass contract -------------------------------------------------------

    def _build(self) -> None:
        """Create routers and interfaces and wire them together."""
        raise NotImplementedError

    @property
    def compatible_routing(self) -> Tuple[str, ...]:
        """Routing algorithm names usable on this topology."""
        raise NotImplementedError

    def minimal_hops(self, src_terminal: int, dst_terminal: int) -> int:
        """Router-to-router hops on a minimal path (for analyses)."""
        raise NotImplementedError

    # -- helpers for subclasses -----------------------------------------------------

    def _check_routing_compatible(self) -> None:
        algorithm = self.routing_settings.get_str("algorithm")
        if algorithm in self.compatible_routing:
            return
        # User-defined algorithms (§III-D) declare their topology on the
        # class instead of editing the packaged compatibility lists.
        declared = getattr(self.routing_class, "topology", None)
        topology = self.settings.get_str("topology", None)
        if declared is not None and declared in ("*", topology):
            return
        raise NetworkError(
            f"routing algorithm {algorithm!r} is not compatible with "
            f"{type(self).__name__}; expected one of "
            f"{self.compatible_routing}, or a class declaring "
            f"topology={topology!r}"
        )

    def _next_link_index(self) -> int:
        index = self._link_count
        self._link_count += 1
        return index

    def _routing_factory(self) -> Callable[[Router, int], RoutingAlgorithm]:
        def build(router: Router, input_port: int) -> RoutingAlgorithm:
            return self.routing_class(
                self, router, input_port, self.routing_settings
            )

        return build

    def _create_router(self, name: str, router_id: int, num_ports: int) -> Router:
        architecture = self.router_settings.get_str("architecture")
        router = factory.create(
            Router,
            architecture,
            self.simulator,
            name,
            self,
            router_id,
            num_ports,
            self.num_vcs,
            self.router_settings,
            self._routing_factory(),
            self.core_clock,
            self.channel_clock,
        )
        self.routers.append(router)
        return router

    def _create_interface(self, interface_id: int) -> Interface:
        kind = self.interface_settings.get_str("type", "standard")
        injection_vcs = self.routing_class.injection_vcs(self.num_vcs)
        interface = factory.create(
            Interface,
            kind,
            self.simulator,
            f"interface{interface_id}",
            self,
            interface_id,
            self.num_vcs,
            self.interface_settings,
            self.channel_clock,
            injection_vcs,
        )
        self.interfaces.append(interface)
        return interface

    def _wire_routers(self, a: Router, pa: int, b: Router, pb: int) -> None:
        wire(self, a, pa, b, pb, self.channel_latency, self.channel_period)

    def _wire_terminal(self, interface: Interface, router: Router, port: int) -> None:
        wire(
            self,
            interface,
            0,
            router,
            port,
            self.terminal_channel_latency,
            self.channel_period,
        )

    def _check_fully_wired(self) -> None:
        for interface in self.interfaces:
            if not interface.port_is_wired(0):
                raise NetworkError(f"{interface.full_name} left unwired")

    # -- public API -------------------------------------------------------------------

    @property
    def num_terminals(self) -> int:
        return len(self.interfaces)

    @property
    def num_routers(self) -> int:
        return len(self.routers)

    def interface(self, terminal_id: int) -> Interface:
        return self.interfaces[terminal_id]

    def router(self, router_id: int) -> Router:
        return self.routers[router_id]

    def total_flits_in_flight(self) -> int:
        """Injection backlog across all interfaces (drain diagnostics)."""
        return sum(i.pending_flits() for i in self.interfaces)

    def channel_utilization(self, window_ticks: int) -> List[Tuple[str, float]]:
        """(channel name, flits per cycle) over ``window_ticks``.

        Utilizations use each channel's lifetime flit count, so pass the
        full run length; for windowed analyses use the message log.
        Sorted most-loaded first -- the quick way to find hotspots.
        """
        report = [
            (channel.name, channel.utilization(window_ticks))
            for channel in self.flit_channels
        ]
        report.sort(key=lambda item: -item[1])
        return report

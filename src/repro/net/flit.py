"""Flits: flow control digits.

A flit is the smallest unit of resource allocation in a router (paper
§I).  Routers manage buffering, data flow, and resource scheduling on
flits; a packet is a sequence of flits (one head, zero or more body, one
tail -- a single-flit packet is both head and tail).

Flit state lives in a process-wide :class:`repro.net.slab.FlitSlab`:
the :class:`Flit` objects routers pass around are thin views over the
slab's structure-of-arrays columns, permanently bound to one slab
handle each and recycled (object and all) when a delivered message's
flits are released.  ``packet`` and ``index`` stay ordinary slots --
they are rebound on every recycle anyway and are the hottest reads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.slab import FLIT_HANDLE_SLOTS, FlitSlab

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet

#: Process-wide slab backing all Flit instances.  Sweep workers run in
#: spawned processes, so each owns an independent slab.
FLIT_SLAB = FlitSlab()


class Flit:
    """One flow control digit of a packet (a view into :data:`FLIT_SLAB`).

    Attributes:
        packet: the owning packet.
        index: position of this flit within the packet (0 = head).
        head: True for the first flit of the packet (read-only).
        tail: True for the last flit of the packet (read-only).
        vc: the virtual channel this flit currently occupies.  Rewritten
            hop by hop as the packet claims VCs.
        send_tick: tick at which this flit first entered the network
            (set by the source interface).
        receive_tick: tick at which this flit arrived at the destination
            interface.
    """

    __slots__ = ("packet", "index") + FLIT_HANDLE_SLOTS

    def __init__(self, packet: "Packet", index: int, head: bool, tail: bool):
        # Direct construction (tests, ad-hoc models) binds a fresh slab
        # handle; packetization goes through FLIT_SLAB.acquire, which
        # recycles handles and their pooled views.
        FLIT_SLAB.adopt(self, packet, index, head, tail)

    @property
    def vc(self) -> int:
        return self._vc[self._handle]

    @vc.setter
    def vc(self, value: int) -> None:
        self._vc[self._handle] = value

    @property
    def head(self) -> bool:
        return self._flags[self._handle] & 1 != 0

    @property
    def tail(self) -> bool:
        return self._flags[self._handle] & 2 != 0

    @property
    def send_tick(self) -> Optional[int]:
        return self._send[self._handle]

    @send_tick.setter
    def send_tick(self, value: Optional[int]) -> None:
        self._send[self._handle] = value

    @property
    def receive_tick(self) -> Optional[int]:
        return self._recv[self._handle]

    @receive_tick.setter
    def receive_tick(self, value: Optional[int]) -> None:
        self._recv[self._handle] = value

    def __repr__(self):
        kind = "H" if self.head else ("T" if self.tail else "B")
        if self.head and self.tail:
            kind = "HT"
        return f"Flit(pkt={self.packet.global_id}, i={self.index}, {kind}, vc={self.vc})"


FLIT_SLAB.bind_view_type(Flit)

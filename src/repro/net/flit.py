"""Flits: flow control digits.

A flit is the smallest unit of resource allocation in a router (paper
§I).  Routers manage buffering, data flow, and resource scheduling on
flits; a packet is a sequence of flits (one head, zero or more body, one
tail -- a single-flit packet is both head and tail).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet


class Flit:
    """One flow control digit of a packet.

    Attributes:
        packet: the owning packet.
        index: position of this flit within the packet (0 = head).
        head: True for the first flit of the packet.
        tail: True for the last flit of the packet.
        vc: the virtual channel this flit currently occupies.  Rewritten
            hop by hop as the packet claims VCs.
        send_tick: tick at which this flit first entered the network
            (set by the source interface).
        receive_tick: tick at which this flit arrived at the destination
            interface.
    """

    __slots__ = ("packet", "index", "head", "tail", "vc", "send_tick", "receive_tick")

    def __init__(self, packet: "Packet", index: int, head: bool, tail: bool):
        self.packet = packet
        self.index = index
        self.head = head
        self.tail = tail
        self.vc: int = 0
        self.send_tick: Optional[int] = None
        self.receive_tick: Optional[int] = None

    def __repr__(self):
        kind = "H" if self.head else ("T" if self.tail else "B")
        if self.head and self.tail:
            kind = "HT"
        return f"Flit(pkt={self.packet.global_id}, i={self.index}, {kind}, vc={self.vc})"

"""Flit buffers.

An input port of a router holds one FIFO flit buffer per virtual
channel.  Buffers enforce their capacity: pushing into a full buffer
raises immediately (§IV-D -- buffers never silently overrun).  A
capacity of ``None`` models an infinite buffer (used by the idealized
output-queued router, §IV-C).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

from repro.net.flit import Flit


class BufferOverrunError(RuntimeError):
    """Raised when a flit is pushed into a full buffer."""


class FlitBuffer:
    """A FIFO queue of flits with an optional capacity bound."""

    __slots__ = ("_flits", "_capacity", "_name")

    def __init__(self, capacity: Optional[int], name: str = "?"):
        if capacity is not None and capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1 or None, got {capacity}")
        self._flits: Deque[Flit] = deque()
        self._capacity = capacity
        self._name = name

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def infinite(self) -> bool:
        return self._capacity is None

    def __len__(self) -> int:
        return len(self._flits)

    @property
    def occupancy(self) -> int:
        return len(self._flits)

    @property
    def space(self) -> Optional[int]:
        """Free slots, or None when infinite."""
        if self._capacity is None:
            return None
        return self._capacity - len(self._flits)

    def is_empty(self) -> bool:
        return not self._flits

    def is_full(self) -> bool:
        return self._capacity is not None and len(self._flits) >= self._capacity

    def has_space(self, count: int = 1) -> bool:
        if self._capacity is None:
            return True
        return len(self._flits) + count <= self._capacity

    def push(self, flit: Flit) -> None:
        if self.is_full():
            raise BufferOverrunError(
                f"{self._name}: buffer overrun (capacity {self._capacity})"
            )
        self._flits.append(flit)

    def front(self) -> Optional[Flit]:
        """Peek the flit at the head, or None when empty."""
        return self._flits[0] if self._flits else None

    def pop(self) -> Flit:
        if not self._flits:
            raise IndexError(f"{self._name}: pop from empty buffer")
        return self._flits.popleft()

    def __iter__(self) -> Iterable[Flit]:
        return iter(self._flits)

    def __repr__(self):
        cap = "inf" if self._capacity is None else str(self._capacity)
        return f"FlitBuffer({self._name}: {len(self._flits)}/{cap})"

"""Messages: the unit of workload traffic.

Applications send messages between terminals.  The source interface
segments a message into one or more packets (bounded by the maximum
packet size), and the destination interface reassembles and delivers it.
SuperSim additionally groups messages into *transactions* for
request/response style workloads; we carry a transaction id through for
the same purpose.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.net.packet import Packet

_global_message_ids = itertools.count()


class Message:
    """A variable-length payload from one terminal to another.

    Attributes:
        id: globally unique message id.
        application_id: index of the generating application.
        source / destination: terminal ids.
        num_flits: total payload size in flits.
        transaction_id: groups request/response messages; defaults to
            the message's own id.
        sampled: True when generated inside the workload's sampling
            window; only sampled messages enter the statistics.
        created_tick / delivered_tick: workload-level timestamps.
        packets: filled in by :meth:`packetize`.
    """

    __slots__ = (
        "id",
        "application_id",
        "source",
        "destination",
        "num_flits",
        "transaction_id",
        "sampled",
        "created_tick",
        "delivered_tick",
        "packets",
        "opaque",
    )

    def __init__(
        self,
        application_id: int,
        source: int,
        destination: int,
        num_flits: int,
        transaction_id: Optional[int] = None,
    ):
        if num_flits < 1:
            raise ValueError(f"message must have at least 1 flit, got {num_flits}")
        if source < 0 or destination < 0:
            raise ValueError("terminal ids must be non-negative")
        self.id = next(_global_message_ids)
        self.application_id = application_id
        self.source = source
        self.destination = destination
        self.num_flits = num_flits
        self.transaction_id = transaction_id if transaction_id is not None else self.id
        self.sampled = False
        self.created_tick: Optional[int] = None
        self.delivered_tick: Optional[int] = None
        self.packets: List[Packet] = []
        self.opaque = None  # free slot for application bookkeeping

    def packetize(self, max_packet_flits: int) -> List[Packet]:
        """Split the message into packets of at most ``max_packet_flits``."""
        if max_packet_flits < 1:
            raise ValueError(f"max packet size must be >= 1, got {max_packet_flits}")
        if self.packets:
            raise RuntimeError(f"message {self.id} already packetized")
        remaining = self.num_flits
        packet_id = 0
        while remaining > 0:
            size = min(remaining, max_packet_flits)
            self.packets.append(Packet(self, packet_id, size))
            packet_id += 1
            remaining -= size
        return self.packets

    @property
    def num_packets(self) -> int:
        return len(self.packets)

    def latency(self) -> Optional[int]:
        """End-to-end message latency in ticks, or None if undelivered."""
        if self.delivered_tick is None or self.created_tick is None:
            return None
        return self.delivered_tick - self.created_tick

    def __repr__(self):
        return (
            f"Message({self.id}, app={self.application_id}, "
            f"{self.source}->{self.destination}, {self.num_flits}f)"
        )

"""Network interfaces: terminal-to-network adapters.

The interface sits between a terminal (workload side) and a router
(network side).  On the injection path it segments messages into packets
and flits and transmits them under credit flow control, one flit per
channel cycle.  On the ejection path it reassembles flits into packets
and packets into messages, performing the paper's §IV-D error detection:
every flit delivered is checked to have arrived at the right destination
and in the right order with respect to other flits in the packet.

Interfaces are built through the object factory so users can substitute
their own models (``"standard"`` is the packaged implementation).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro import factory
from repro.core.clock import Clock
from repro.core.component import Component
from repro.core.event import Event
from repro.net.credit import Credit
from repro.net.device import PortedDevice
from repro.net.flit import FLIT_SLAB, Flit
from repro.net.message import Message
from repro.net.packet import Packet
from repro.net.phases import EPS_STEP

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.settings import Settings
    from repro.core.simulator import Simulator


class InterfaceError(RuntimeError):
    """Raised on protocol violations detected at an interface."""


class Interface(PortedDevice):
    """Abstract interface API: the network builds these via the factory."""

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        interface_id: int,
        num_vcs: int,
    ):
        super().__init__(simulator, name, parent, num_ports=1, num_vcs=num_vcs)
        self.interface_id = interface_id
        self.message_delivered_listeners: List[Callable[[Message], None]] = []
        self.packet_delivered_listeners: List[Callable[[Packet], None]] = []

    def send_message(self, message: Message) -> None:
        """Accept a message from the terminal for injection."""
        raise NotImplementedError

    def pending_flits(self) -> int:
        """Flits accepted but not yet transmitted (injection backlog)."""
        raise NotImplementedError

    def _deliver_message(self, message: Message) -> None:
        message.delivered_tick = self.simulator.tick
        for listener in self.message_delivered_listeners:
            listener(message)

    def _deliver_packet(self, packet: Packet) -> None:
        for listener in self.packet_delivered_listeners:
            listener(packet)


@factory.register(Interface, "standard")
class StandardInterface(Interface):
    """The packaged interface model.

    Settings:
        ``max_packet_size`` -- maximum flits per packet (messages larger
            than this are segmented).
        ``ejection_buffer_size`` -- per-VC flit capacity advertised to the
            upstream router (credits are returned as soon as a flit is
            consumed, so this bounds in-flight flits per VC).
        ``injection_vcs`` -- optional explicit list of VCs that new
            packets may start on; defaults to the set the network's
            routing algorithm declares.
    """

    def __init__(
        self,
        simulator: "Simulator",
        name: str,
        parent: Optional[Component],
        interface_id: int,
        num_vcs: int,
        settings: "Settings",
        channel_clock: Clock,
        injection_vcs: Optional[List[int]] = None,
    ):
        super().__init__(simulator, name, parent, interface_id, num_vcs)
        self.max_packet_size = settings.get_uint("max_packet_size", 16)
        self.ejection_buffer_size = settings.get_uint("ejection_buffer_size", 64)
        if "injection_vcs" in settings:
            injection_vcs = settings.get_int_list("injection_vcs")
        if not injection_vcs:
            injection_vcs = list(range(num_vcs))
        for vc in injection_vcs:
            if not 0 <= vc < num_vcs:
                raise InterfaceError(
                    f"{self.full_name}: injection VC {vc} out of range "
                    f"[0, {num_vcs})"
                )
        self.injection_vcs = list(injection_vcs)
        self.channel_clock = channel_clock

        # Injection state: FIFO of packets; the head packet streams its
        # flits in order on its assigned VC.
        self._packet_queue: Deque[Packet] = deque()
        self._next_flit_index = 0
        self._next_vc_choice = 0
        self._step_scheduled = False
        # Unit-period channel clocks (the common case) take arithmetic
        # fast paths instead of Clock edge calls in the injection loop.
        self._chan_period1 = channel_clock.period == 1 and channel_clock.phase == 0
        # Port-0 tracker/channel, cached lazily (wiring happens after
        # construction).
        self._tracker0 = None
        self._channel0 = None

        # Ejection state: per-VC (packet, next expected flit index).
        self._reassembly: Dict[int, Tuple[Packet, int]] = {}
        self._packets_remaining: Dict[int, int] = {}  # message id -> count

        # Counters.
        self.flits_injected = 0
        self.flits_ejected = 0
        self.messages_sent = 0
        self.messages_delivered = 0

    # -- PortedDevice wiring ---------------------------------------------------

    def input_buffer_capacities(self, port: int) -> List[int]:
        return [self.ejection_buffer_size] * self.num_vcs

    # -- injection path ----------------------------------------------------------

    def send_message(self, message: Message) -> None:
        if message.source != self.interface_id:
            raise InterfaceError(
                f"{self.full_name}: message source {message.source} does not "
                f"match interface id {self.interface_id}"
            )
        if message.created_tick is None:
            message.created_tick = self.simulator.tick
        self.messages_sent += 1
        for packet in message.packetize(self.max_packet_size):
            # Assign the starting VC round-robin over the allowed set.
            vc = self.injection_vcs[self._next_vc_choice % len(self.injection_vcs)]
            self._next_vc_choice += 1
            packet.routing_state["injection_vc"] = vc
            self._packet_queue.append(packet)
        self._wake()

    def pending_flits(self) -> int:
        total = sum(p.num_flits for p in self._packet_queue)
        return total - self._next_flit_index

    def _wake(self) -> None:
        if self._step_scheduled or not self._packet_queue:
            return
        self._step_scheduled = True
        simulator = self.simulator
        if self._chan_period1:
            tick = simulator.tick
            if simulator.epsilon >= EPS_STEP:
                tick += 1
        else:
            now_tick = simulator.tick
            tick = self.channel_clock.next_edge(now_tick)
            if tick == now_tick and simulator.epsilon >= EPS_STEP:
                tick = self.channel_clock.following_edge(now_tick)
        simulator.call_at(tick, self._inject_step, None, EPS_STEP)

    def _inject_step(self, event: Event) -> None:
        self._step_scheduled = False
        queue = self._packet_queue
        if not queue:
            return
        packet = queue[0]
        vc = packet.routing_state["injection_vc"]
        tracker = self._tracker0
        if tracker is None:
            tracker = self._tracker0 = self.output_credit_tracker(0)
            self._channel0 = self.output_channel(0)
        channel = self._channel0
        simulator = self.simulator
        now = simulator.tick
        if tracker._credits[vc] > 0 and now >= channel._next_free_tick:
            flit = packet.flits[self._next_flit_index]
            handle = flit._handle
            flit._vc[handle] = vc
            flit._send[handle] = now
            if flit._flags[handle] & 1:  # head
                packet.injection_tick = now
            # Via the public hook: subclasses (and fault-injection
            # models) override send_flit to intercept injection.
            self.send_flit(0, flit)
            self.flits_injected += 1
            self._next_flit_index += 1
            if self._next_flit_index >= packet.num_flits:
                queue.popleft()
                self._next_flit_index = 0
        if queue:
            # Reschedule only when progress is possible without a credit
            # arriving first: when blocked purely on credits, sleep --
            # receive_credit wakes us.  This avoids per-cycle spin at
            # saturation.
            packet = queue[0]
            vc = packet.routing_state["injection_vc"]
            if tracker._credits[vc] > 0:
                self._step_scheduled = True
                if self._chan_period1:
                    tick = now + 1
                    free = channel._next_free_tick
                    if free > tick:
                        tick = free
                else:
                    tick = max(
                        self.channel_clock.following_edge(now),
                        self.channel_clock.next_edge(channel.next_send_tick()),
                    )
                simulator.call_at(tick, self._inject_step, None, EPS_STEP)

    def receive_credit(self, port: int, credit: Credit) -> None:
        self.output_credit_tracker(port).give(credit.vc)
        self._wake()

    # -- ejection path -------------------------------------------------------------

    def receive_flit(self, port: int, flit: Flit) -> None:
        packet = flit.packet
        message = packet.message
        # §IV-D: right destination.
        if message.destination != self.interface_id:
            raise InterfaceError(
                f"{self.full_name}: flit for terminal {message.destination} "
                f"arrived at interface {self.interface_id}: {flit!r}"
            )
        handle = flit._handle
        vc = flit._vc[handle]
        # §IV-D: right order within the packet, no interleaving within a VC.
        if flit._flags[handle] & 1:  # head
            if vc in self._reassembly:
                other = self._reassembly[vc][0]
                raise InterfaceError(
                    f"{self.full_name}: head flit of packet {packet.global_id} "
                    f"interleaves packet {other.global_id} on VC {vc}"
                )
            self._reassembly[vc] = (packet, 0)
        if vc not in self._reassembly:
            raise InterfaceError(
                f"{self.full_name}: body flit with no packet in progress on "
                f"VC {vc}: {flit!r}"
            )
        expected_packet, expected_index = self._reassembly[vc]
        if expected_packet is not packet or expected_index != flit.index:
            raise InterfaceError(
                f"{self.full_name}: out-of-order flit on VC {vc}: expected "
                f"packet {expected_packet.global_id} flit {expected_index}, "
                f"got {flit!r}"
            )
        flit._recv[handle] = self.simulator.tick
        self.flits_ejected += 1
        # The ejection buffer consumes the flit immediately: return credit.
        self.send_credit(port, vc)
        if flit._flags[handle] & 2:  # tail
            del self._reassembly[vc]
            self._packet_done(packet)
        else:
            self._reassembly[vc] = (packet, flit.index + 1)

    def _packet_done(self, packet: Packet) -> None:
        message = packet.message
        self._deliver_packet(packet)
        remaining = self._packets_remaining.get(message.id)
        if remaining is None:
            remaining = message.num_packets
        remaining -= 1
        if remaining == 0:
            self._packets_remaining.pop(message.id, None)
            self.messages_delivered += 1
            self._deliver_message(message)
            # Delivery listeners (statistics) have copied what they
            # need; recycle the message's flit slab handles.
            release_packet = FLIT_SLAB.release_packet
            for delivered in message.packets:
                release_packet(delivered)
        else:
            self._packets_remaining[message.id] = remaining

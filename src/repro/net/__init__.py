"""Network primitives: flits, packets, messages, channels, credits,
buffers, interfaces, and the Network base class."""

from repro.net.buffer import BufferOverrunError, FlitBuffer
from repro.net.channel import Channel, ChannelError, CreditChannel
from repro.net.credit import Credit, CreditError, CreditTracker
from repro.net.device import PortedDevice, WiringError
from repro.net.flit import Flit
from repro.net.interface import Interface, InterfaceError, StandardInterface
from repro.net.message import Message
from repro.net.network import Network, NetworkError, wire
from repro.net.packet import Packet

__all__ = [
    "BufferOverrunError",
    "Channel",
    "ChannelError",
    "Credit",
    "CreditChannel",
    "CreditError",
    "CreditTracker",
    "Flit",
    "FlitBuffer",
    "Interface",
    "InterfaceError",
    "Message",
    "Network",
    "NetworkError",
    "Packet",
    "PortedDevice",
    "StandardInterface",
    "WiringError",
    "wire",
]

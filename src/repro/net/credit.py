"""Credit-based flow control primitives.

Credits are the reverse flow matching every forward flit flow: when a
downstream buffer frees a flit slot it returns one credit to the
upstream sender, which may only transmit while it holds credits.  The
paper's error-detection framework (§IV-D) guarantees that "buffers never
silently overrun and credits never go negative"; :class:`CreditTracker`
enforces both invariants with assertions that raise immediately.
"""

from __future__ import annotations

from typing import List


class Credit:
    """A credit message: one freed buffer slot on a virtual channel.

    A credit carries only its VC and nothing ever mutates one, so the
    hot path uses the per-VC singletons handed out by :meth:`of`
    instead of allocating a fresh object per returned credit (tens of
    thousands per run).  Direct construction stays supported for tests
    and user models; identity is never load-bearing.
    """

    __slots__ = ("vc",)

    #: per-VC interned singletons, grown on demand (index == vc).
    _interned: List["Credit"] = []

    def __init__(self, vc: int):
        if vc < 0:
            raise ValueError(f"credit VC must be non-negative, got {vc}")
        self.vc = vc

    @classmethod
    def of(cls, vc: int) -> "Credit":
        """The interned credit singleton for ``vc``."""
        interned = cls._interned
        if vc < len(interned):
            return interned[vc]
        while len(interned) <= vc:
            interned.append(cls(len(interned)))
        return interned[vc]

    def __repr__(self):
        return f"Credit(vc={self.vc})"


class CreditError(RuntimeError):
    """Raised when credit accounting would go negative or overflow."""


class CreditTracker:
    """Per-VC credit counters for one output port.

    The tracker is initialized with the downstream buffer's per-VC
    capacity.  ``take`` consumes one credit when a flit is sent;
    ``give`` restores one when a credit message returns.  The count can
    never go below zero (would mean a buffer overrun downstream) nor
    above the initial capacity (would mean duplicated credits).
    """

    __slots__ = ("_capacity", "_credits", "_owner_name")

    def __init__(self, capacities: List[int], owner_name: str = "?"):
        if not capacities:
            raise ValueError("credit tracker needs at least one VC")
        for vc, cap in enumerate(capacities):
            if cap < 1:
                raise ValueError(f"VC {vc} capacity must be >= 1, got {cap}")
        self._capacity = list(capacities)
        self._credits = list(capacities)
        self._owner_name = owner_name

    @property
    def num_vcs(self) -> int:
        return len(self._capacity)

    def capacity(self, vc: int) -> int:
        return self._capacity[vc]

    def available(self, vc: int) -> int:
        """Credits currently available on ``vc``."""
        return self._credits[vc]

    def occupancy(self, vc: int) -> int:
        """Flit slots currently consumed downstream on ``vc``."""
        return self._capacity[vc] - self._credits[vc]

    def total_available(self) -> int:
        return sum(self._credits)

    def total_capacity(self) -> int:
        return sum(self._capacity)

    def total_occupancy(self) -> int:
        return self.total_capacity() - self.total_available()

    def has_credit(self, vc: int, count: int = 1) -> bool:
        return self._credits[vc] >= count

    def take(self, vc: int, count: int = 1) -> None:
        """Consume ``count`` credits on ``vc`` (a flit was sent)."""
        if self._credits[vc] < count:
            raise CreditError(
                f"{self._owner_name}: credit underflow on VC {vc}: "
                f"{self._credits[vc]} available, {count} requested"
            )
        self._credits[vc] -= count

    def give(self, vc: int, count: int = 1) -> None:
        """Restore ``count`` credits on ``vc`` (a downstream slot freed)."""
        if self._credits[vc] + count > self._capacity[vc]:
            raise CreditError(
                f"{self._owner_name}: credit overflow on VC {vc}: "
                f"{self._credits[vc]}+{count} > capacity {self._capacity[vc]}"
            )
        self._credits[vc] += count

    def __repr__(self):
        pairs = ",".join(
            f"{avail}/{cap}" for avail, cap in zip(self._credits, self._capacity)
        )
        return f"CreditTracker({self._owner_name}: {pairs})"

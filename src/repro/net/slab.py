"""Slab-backed storage for hot per-flit state.

A simulation creates every flit up front when a message is packetized
and abandons them all when the message is delivered.  Allocating a
fresh object per flit makes that churn the allocator's problem; the
slab makes it an index increment instead.

:class:`FlitSlab` keeps the mutable per-flit fields in parallel
structure-of-arrays columns (``vc``, packed head/tail ``flags``,
``send_tick``, ``receive_tick``) indexed by an integer *handle*.  Each
handle is permanently bound to exactly one view object (a
:class:`repro.net.flit.Flit`): acquiring a handle from the freelist
returns the pooled view rebound to the new packet, so steady-state
packet creation allocates no flit objects at all.  Views hold direct
references to the column lists in slots, so field access is two loads
and an index -- no dictionary lookups, no indirection through the slab.

Handles are recycled through a LIFO freelist.  Release happens at
message delivery, *after* the delivery listeners have run (statistics
copy the timestamps they need into records first).  Released columns
keep their last values until the handle is reacquired, so post-mortem
inspection of a just-delivered packet still shows real data; holding a
flit reference across a reacquisition is a bug, and the double-release
check below catches the usual way that bug is made.
"""

from __future__ import annotations

from typing import List, Optional

HEAD_FLAG = 1
TAIL_FLAG = 2

#: Slots a view class must declare to be bindable to a slab handle:
#: the handle itself plus direct references to the four column lists.
FLIT_HANDLE_SLOTS = ("_handle", "_vc", "_flags", "_send", "_recv")


class FlitSlab:
    """Structure-of-arrays flit store with pooled view objects."""

    __slots__ = (
        "vc",
        "flags",
        "send_tick",
        "receive_tick",
        "_views",
        "_live",
        "_free",
        "_view_type",
        "acquired_total",
        "released_total",
    )

    def __init__(self) -> None:
        self.vc: List[int] = []
        self.flags: List[int] = []  # HEAD_FLAG | TAIL_FLAG
        self.send_tick: List[Optional[int]] = []
        self.receive_tick: List[Optional[int]] = []
        self._views: list = []  # handle -> its permanently-bound view
        self._live = bytearray()
        self._free: List[int] = []
        self._view_type: Optional[type] = None
        self.acquired_total = 0
        self.released_total = 0

    def bind_view_type(self, view_type: type) -> None:
        """Set the class used to materialize views for fresh handles."""
        self._view_type = view_type

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total handles ever created (high-water mark of live flits)."""
        return len(self._views)

    @property
    def live(self) -> int:
        """Handles currently acquired (in-flight flits)."""
        return len(self._views) - len(self._free)

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "live": self.live,
            "acquired_total": self.acquired_total,
            "released_total": self.released_total,
        }

    # -- allocation --------------------------------------------------------

    def adopt(self, view, packet, index: int, head: bool, tail: bool) -> None:
        """Bind ``view`` to a fresh handle (directly-constructed flits)."""
        handle = len(self._views)
        self.vc.append(0)
        self.flags.append((HEAD_FLAG if head else 0) | (TAIL_FLAG if tail else 0))
        self.send_tick.append(None)
        self.receive_tick.append(None)
        self._views.append(view)
        self._live.append(1)
        view._handle = handle
        view._vc = self.vc
        view._flags = self.flags
        view._send = self.send_tick
        view._recv = self.receive_tick
        view.packet = packet
        view.index = index
        self.acquired_total += 1

    def acquire(self, packet, index: int, head: bool, tail: bool):
        """Return a view bound to ``packet``, recycling a handle if any."""
        free = self._free
        if free:
            handle = free.pop()
            self._live[handle] = 1
            self.vc[handle] = 0
            self.flags[handle] = (HEAD_FLAG if head else 0) | (
                TAIL_FLAG if tail else 0
            )
            self.send_tick[handle] = None
            self.receive_tick[handle] = None
            view = self._views[handle]
            view.packet = packet
            view.index = index
            self.acquired_total += 1
            return view
        view = object.__new__(self._view_type)
        self.adopt(view, packet, index, head, tail)
        return view

    def release(self, flit) -> None:
        """Return ``flit``'s handle to the freelist.

        Column values stay intact until the handle is reacquired.
        """
        handle = flit._handle
        if not self._live[handle]:
            raise RuntimeError(
                f"double release of flit slab handle {handle}: {flit!r}"
            )
        self._live[handle] = 0
        self._free.append(handle)
        self.released_total += 1

    def release_packet(self, packet) -> None:
        """Release every flit of ``packet``."""
        for flit in packet.flits:
            self.release(flit)

"""repro: a Python reproduction of SuperSim (ISPASS 2018).

An extensible flit-level interconnection network simulator: a discrete
event core, credit flow-controlled routers (output-queued, input-queued,
input-output-queued), large-scale topologies (torus, folded Clos,
HyperX/flattened butterfly, dragonfly), oblivious and adaptive routing,
a four-phase workload framework, and the accompanying tool suite
(taskrun, sssweep, ssparse, ssplot).

Quick start::

    from repro import Settings, Simulation

    settings = Settings.from_dict({
        "network": {
            "topology": "torus",
            "dimension_widths": [4, 4],
            "concentration": 1,
            "num_vcs": 2,
            "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 16},
            "interface": {},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": {
            "applications": [{
                "type": "blast",
                "injection_rate": 0.3,
                "warmup_duration": 500,
                "generate_duration": 2000,
                "traffic": {"type": "uniform_random"},
                "message_size": {"type": "constant", "size": 4},
            }],
        },
    })
    results = Simulation(settings).run(max_time=100000)
    print(results.summary())
"""

from repro.config.settings import Settings, SettingsError
from repro.core import (
    Clock,
    Component,
    Event,
    RandomManager,
    SimulationError,
    Simulator,
    TimeStep,
)
from repro.sim import Simulation, SimulationResults

__version__ = "1.0.0"

__all__ = [
    "Clock",
    "Component",
    "Event",
    "RandomManager",
    "Settings",
    "SettingsError",
    "Simulation",
    "SimulationError",
    "SimulationResults",
    "Simulator",
    "TimeStep",
    "__version__",
]

"""sssweep: autonomous simulation sweep generation (paper §V, [26]).

SSSweep turns a few lines of variable declarations into a full cross
product of simulations plus their parsing/analysis tasks, all executed
through taskrun.  Mirroring the paper's Listing 2, each sweep variable
carries a function mapping a value to SuperSim command-line override
strings::

    sweep = Sweep(base_config, name="channel_latency_study")
    sweep.add_variable(
        "ChannelLatency", "CL", [1, 2, 4, 8, 16, 32, 64],
        lambda latency: f"network.channel_latency=uint={latency}")
    sweep.run()
    rows = sweep.to_rows()

Every job in the cross product gets a stable id built from the short
names (``CL4_MS2``), a fully resolved Settings object, and a collected
result (by default ``SimulationResults.summary()``; pass ``collect=``
for a custom extractor).  ``write_csv`` and ``write_html_index`` export
the sweep for external tooling -- the latter is the stand-in for
SSSweep's generated web viewer.
"""

from __future__ import annotations

import html
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config.settings import Settings
from repro.sim import Simulation, SimulationResults
from repro.tools.taskrun import (
    FunctionTask,
    ParallelTaskManager,
    TaskManager,
    TaskState,
)

OverrideFn = Callable[[Any], Any]  # value -> str | List[str]
CollectFn = Callable[[SimulationResults], Any]


class SweepVariable:
    """One swept dimension: a value list and its override generator."""

    def __init__(self, name: str, short_name: str, values: Sequence[Any],
                 override_fn: OverrideFn):
        if not values:
            raise ValueError(f"sweep variable {name!r} has no values")
        if not short_name:
            raise ValueError(f"sweep variable {name!r} needs a short name")
        self.name = name
        self.short_name = short_name
        self.values = list(values)
        self.override_fn = override_fn

    def overrides_for(self, value: Any) -> List[str]:
        result = self.override_fn(value)
        if isinstance(result, str):
            return [result]
        return list(result)


class SweepJob:
    """One point of the cross product."""

    def __init__(self, job_id: str, values: Dict[str, Any], overrides: List[str]):
        self.job_id = job_id
        self.values = values
        self.overrides = overrides
        self.result: Any = None
        self.error: Optional[str] = None

    def __repr__(self):
        return f"SweepJob({self.job_id})"

    def describe(self) -> str:
        """The sweep point in human terms: id plus variable values."""
        values = ", ".join(f"{k}={v}" for k, v in self.values.items())
        return f"sweep point {self.job_id!r} ({values})"

    def format_error(self, error: Any) -> str:
        """Attach the originating sweep point to a worker-side failure.

        Parallel workers only ship back the exception; without this the
        user sees a bare executor traceback with no clue which point of
        the cross product produced it.
        """
        kind = type(error).__name__ if isinstance(error, BaseException) else ""
        prefix = f"{kind}: " if kind else ""
        overrides = "; ".join(self.overrides)
        return (
            f"{self.describe()} failed: {prefix}{error} "
            f"[overrides: {overrides}]"
        )


def default_collect(results: SimulationResults) -> Dict[str, Any]:
    return results.summary()


def _execute_sweep_job(
    base_config: dict,
    overrides: List[str],
    max_time: Optional[int],
    collect: CollectFn,
) -> Any:
    """Build and run one sweep job from plain data; the worker-side half
    of a parallel sweep.

    Module-level (and fed only picklable arguments) so it ships to a
    spawned worker process: the ``Simulation`` is constructed *inside*
    the worker from the resolved config dict, and only the collected
    result travels back.
    """
    settings = Settings.from_dict(base_config, overrides=overrides)
    simulation = Simulation(settings)
    results = simulation.run(max_time=max_time)
    return collect(results)


class Sweep:
    """Cross-product simulation sweep over a base configuration."""

    def __init__(
        self,
        base_config: dict,
        name: str = "sweep",
        collect: CollectFn = default_collect,
        max_time: Optional[int] = None,
        num_workers: int = 1,
    ):
        self.base_config = base_config
        self.name = name
        self.collect = collect
        self.max_time = max_time
        self.num_workers = num_workers
        self.variables: List[SweepVariable] = []
        self.jobs: List[SweepJob] = []

    def add_variable(
        self,
        name: str,
        short_name: str,
        values: Sequence[Any],
        override_fn: OverrideFn,
    ) -> SweepVariable:
        if any(v.short_name == short_name for v in self.variables):
            raise ValueError(f"duplicate sweep short name {short_name!r}")
        variable = SweepVariable(name, short_name, values, override_fn)
        self.variables.append(variable)
        return variable

    # -- job generation -----------------------------------------------------------

    def generate_jobs(self) -> List[SweepJob]:
        """Build the cross product (idempotent)."""
        if not self.variables:
            raise ValueError("sweep has no variables")
        combos: List[List[Tuple[SweepVariable, Any]]] = [[]]
        for variable in self.variables:
            combos = [
                combo + [(variable, value)]
                for combo in combos
                for value in variable.values
            ]
        self.jobs = []
        for combo in combos:
            job_id = "_".join(
                f"{variable.short_name}{value}" for variable, value in combo
            )
            values = {variable.name: value for variable, value in combo}
            overrides: List[str] = []
            for variable, value in combo:
                overrides.extend(variable.overrides_for(value))
            self.jobs.append(SweepJob(job_id, values, overrides))
        return self.jobs

    @property
    def num_jobs(self) -> int:
        count = 1
        for variable in self.variables:
            count *= len(variable.values)
        return count

    # -- execution ------------------------------------------------------------------

    def settings_for(self, job: SweepJob) -> Settings:
        return Settings.from_dict(self.base_config, overrides=job.overrides)

    def _run_job(self, job: SweepJob) -> Any:
        settings = self.settings_for(job)
        simulation = Simulation(settings)
        results = simulation.run(max_time=self.max_time)
        job.result = self.collect(results)
        return job.result

    def run(
        self,
        observer: Optional[Callable[[SweepJob], None]] = None,
        workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
    ) -> None:
        """Execute every job; ``workers > 1`` fans out across processes.

        ``workers`` defaults to the sweep's ``num_workers`` (itself 1 by
        default).  With one worker, jobs run serially in this process.
        With more, each job is shipped to a spawned worker process via
        :class:`~repro.tools.taskrun.ParallelTaskManager`: the worker
        rebuilds the ``Simulation`` from the resolved config dict and
        returns only the collected result, so nothing unpicklable ever
        crosses the process boundary.  Job results land in cross-product
        order either way -- ``to_rows()`` output is identical for any
        worker count (simulations are independently seeded from their
        settings).

        ``job_timeout`` (seconds, parallel mode only) fails any single
        job that runs too long instead of hanging the sweep.
        """
        if not self.jobs:
            self.generate_jobs()
        if workers is None:
            workers = self.num_workers
        if workers <= 1:
            self._run_serial(observer)
        else:
            self._run_parallel(observer, workers, job_timeout)

    def _run_serial(self, observer: Optional[Callable[[SweepJob], None]]) -> None:
        manager = TaskManager(resources={"sim": 1}, num_workers=1)
        for job in self.jobs:
            def run_one(job=job):
                result = self._run_job(job)
                if observer is not None:
                    observer(job)
                return result

            manager.add_task(
                FunctionTask(f"{self.name}:{job.job_id}", run_one,
                             resources={"sim": 1})
            )
        manager.run()
        for task in manager.failures():
            job_id = task.name.split(":", 1)[1]
            for job in self.jobs:
                if job.job_id == job_id:
                    job.error = job.format_error(task.error)

    def _run_parallel(
        self,
        observer: Optional[Callable[[SweepJob], None]],
        workers: int,
        job_timeout: Optional[float],
    ) -> None:
        manager = ParallelTaskManager(
            resources={"sim": workers}, num_workers=workers
        )
        pairs = []
        for job in self.jobs:
            task = FunctionTask(
                f"{self.name}:{job.job_id}",
                _execute_sweep_job,
                (self.base_config, job.overrides, self.max_time, self.collect),
                resources={"sim": 1},
                timeout=job_timeout,
            )
            manager.add_task(task)
            pairs.append((task, job))
        manager.run()
        # Results attach to jobs in cross-product order, independent of
        # completion order; observers likewise fire in job order (after
        # the fact -- per-job progress streaming is a serial-mode
        # nicety).
        for task, job in pairs:
            if task.state == TaskState.SUCCEEDED:
                job.result = task.result
            elif task.error is not None:
                job.error = job.format_error(task.error)
            else:
                job.error = job.format_error(
                    f"job ended in state {task.state.value}"
                )
            if observer is not None:
                observer(job)

    # -- sanitized smoke run ------------------------------------------------------------

    def sanitized_smoke(
        self, max_time: int = 1000, sanitize: str = "all"
    ) -> Dict[str, Any]:
        """Run the base point briefly under runtime sanitizers.

        Called before fan-out (``sssweep --smoke``): a model that leaks
        credits or corrupts the event stream should fail here, in one
        short sanitized run with an invariant-violation message, rather
        than as N workers' worth of confusing downstream symptoms (or,
        worse, N quietly wrong result rows).  Raises
        :class:`repro.sanitize.SanitizerError` on the first violation;
        returns the per-sanitizer report dict on a clean run.
        """
        from repro.sanitize import attach_sanitizers

        settings = Settings.from_dict(self.base_config)
        simulation = Simulation(settings)
        with attach_sanitizers(simulation, sanitize) as suite:
            simulation.run(max_time=max_time)
            suite.finish()
            return suite.report()

    # -- results ------------------------------------------------------------------------

    def to_rows(self) -> List[Dict[str, Any]]:
        """One flat dict per job: variables + collected result fields."""
        rows = []
        for job in self.jobs:
            row: Dict[str, Any] = {"job_id": job.job_id}
            row.update(job.values)
            if isinstance(job.result, dict):
                row.update(job.result)
            else:
                row["result"] = job.result
            if job.error:
                row["error"] = job.error
            rows.append(row)
        return rows

    def write_csv(self, path: str) -> int:
        rows = self.to_rows()
        if not rows:
            raise ValueError("no jobs to export; run() first")
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(",".join(columns) + "\n")
            for row in rows:
                cells = []
                for column in columns:
                    value = row.get(column, "")
                    if isinstance(value, (dict, list)):
                        value = json.dumps(value).replace(",", ";")
                    cells.append(str(value))
                handle.write(",".join(cells) + "\n")
        return len(rows)

    def write_html_index(self, path: str) -> None:
        """A static HTML table of all jobs -- the web-viewer stand-in."""
        rows = self.to_rows()
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        parts = [
            "<!DOCTYPE html><html><head><meta charset='utf-8'>",
            f"<title>{html.escape(self.name)}</title>",
            "<style>table{border-collapse:collapse}td,th{border:1px solid #999;"
            "padding:4px 8px;font:13px monospace}</style></head><body>",
            f"<h1>{html.escape(self.name)}</h1>",
            f"<p>{len(rows)} simulations across "
            f"{len(self.variables)} variables</p>",
            "<table><tr>",
        ]
        parts.extend(f"<th>{html.escape(str(c))}</th>" for c in columns)
        parts.append("</tr>")
        for row in rows:
            parts.append("<tr>")
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, (dict, list)):
                    value = json.dumps(value)
                parts.append(f"<td>{html.escape(str(value))}</td>")
            parts.append("</tr>")
        parts.append("</table></body></html>")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("".join(parts))

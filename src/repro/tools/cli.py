"""Command line executables for the tool suite (paper §V).

SSParse, SSPlot, and SSSweep are usable both as Python packages and as
command line tools; these are the CLI faces:

``ssparse``::

    ssparse messages.jsonl +app=0 +send=500-1000 --csv out.csv
    ssparse shard0.jsonl shard1.jsonl +app=0

prints the latency/hop summary of the filtered records and optionally
exports raw samples.  Several logs (e.g. one per PDES shard) are merged
into a single delivery-ordered stream before filtering.

``ssplot``::

    ssplot messages.jsonl --kind percentile --csv fig.csv
    ssplot messages.jsonl --kind timeline --bin 250
    ssplot messages.jsonl --kind cdf

renders the requested plot as ASCII on stdout and optionally exports
the numeric series as CSV.

``sssweep``::

    sssweep base.json \\
        --var "IR=workload.applications[0].injection_rate=float=0.1,0.2,0.3" \\
        --var "S=simulator.seed=uint=1,2,3" \\
        --workers 8 --csv sweep.csv --html sweep.html

runs the cross product of all ``--var`` values (here 9 simulations)
across ``--workers`` processes and prints the result rows as JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.tools import ssplot
from repro.tools.ssparse import parse_file, parse_records


def ssparse_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ssparse",
        description="Parse one or more simulation message logs and "
        "report latency/hop statistics",
    )
    parser.add_argument(
        "logs",
        nargs="+",
        metavar="log",
        help="JSONL message log(s); several (e.g. one per shard) are "
        "merged in delivery order",
    )
    parser.add_argument(
        "filters",
        nargs="*",
        help="filters like +app=0, -sampled=false, +send=500-1000",
    )
    parser.add_argument("--csv", help="also export raw samples as CSV")
    args = parser.parse_args(argv)

    # argparse cannot split "log... filter..." itself: anything after
    # the first positional that starts with +/- (or fails to open) is a
    # filter, the rest are log paths.
    logs: List[str] = []
    filters: List[str] = list(args.filters)
    for item in args.logs:
        if filters or item[:1] in "+-" or not os.path.exists(item):
            filters.append(item)
        else:
            logs.append(item)
    if not logs:
        parser.error(f"no readable log among {args.logs!r}")

    if len(logs) == 1:
        result = parse_file(logs[0], filters)
    else:
        from repro.stats.records import read_jsonl

        merged = []
        for path in logs:
            merged.extend(read_jsonl(path))
        merged.sort(key=lambda r: (r.delivered_tick, r.message_id))
        result = parse_records(merged, filters)
    json.dump(result.summary(), sys.stdout, indent=2)
    sys.stdout.write("\n")
    if args.csv:
        count = result.write_csv(args.csv)
        print(f"wrote {count} records to {args.csv}", file=sys.stderr)
    return 0 if len(result) else 1


_PLOT_KINDS = ("percentile", "pdf", "cdf", "timeline")


def ssplot_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ssplot",
        description="Render latency plots from a simulation message log",
    )
    parser.add_argument("log", help="JSONL message log from a simulation")
    parser.add_argument("filters", nargs="*",
                        help="ssparse-style record filters")
    parser.add_argument("--kind", choices=_PLOT_KINDS, default="percentile")
    parser.add_argument("--bin", type=int, default=100,
                        help="bin width in ticks (timeline only)")
    parser.add_argument("--latency", choices=("message", "network", "packet"),
                        default="message", help="which latency to plot")
    parser.add_argument("--csv", help="export the numeric series as CSV")
    parser.add_argument("--width", type=int, default=72)
    parser.add_argument("--height", type=int, default=20)
    args = parser.parse_args(argv)

    result = parse_file(args.log, args.filters)
    if not len(result):
        print("no records match the filters", file=sys.stderr)
        return 1

    if args.kind == "timeline":
        plot = ssplot.latency_vs_time(result.records, args.bin)
    else:
        distribution = result.latency(args.latency)
        if args.kind == "percentile":
            plot = ssplot.percentile_distribution(distribution)
        elif args.kind == "pdf":
            plot = ssplot.latency_pdf(distribution)
        else:
            plot = ssplot.latency_cdf(distribution)

    sys.stdout.write(plot.render_ascii(width=args.width, height=args.height))
    if args.csv:
        plot.write_csv(args.csv)
        print(f"wrote series to {args.csv}", file=sys.stderr)
    return 0


def _parse_sweep_var(spec: str):
    """Parse ``SHORT=path=type=v1,v2,...`` into sweep-variable pieces."""
    parts = spec.split("=", 3)
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"bad --var {spec!r}; expected SHORT=path=type=v1,v2,..."
        )
    short, path, type_name, raw_values = parts
    values = [v.strip() for v in raw_values.split(",") if v.strip()]
    if not values:
        raise argparse.ArgumentTypeError(f"--var {spec!r} has no values")
    return short, path, type_name, values


def sssweep_main(argv: Optional[List[str]] = None) -> int:
    from repro.tools.sssweep import Sweep

    parser = argparse.ArgumentParser(
        prog="sssweep",
        description="Run a cross-product sweep of simulations from a "
        "base config, optionally across worker processes",
    )
    parser.add_argument("config", help="base JSON settings file")
    parser.add_argument(
        "--var",
        action="append",
        required=True,
        metavar="SHORT=path=type=v1,v2,...",
        help="a swept dimension; repeat for a cross product",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count(),
        help="worker processes (default: all cores)",
    )
    parser.add_argument("--max-time", type=int, default=None,
                        help="hard stop for every simulation")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="per-job wall-clock limit in seconds")
    parser.add_argument("--name", default="sweep")
    parser.add_argument("--csv", help="write result rows as CSV")
    parser.add_argument("--html", help="write the HTML index page")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the JSON rows on stdout")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the pre-fan-out lint of the base "
                        "config and sweep payloads")
    parser.add_argument("--partition", type=int, metavar="K", default=None,
                        help="pre-fan-out gate: plan and P-rule-verify a "
                        "K-way partition of the base config; abort on "
                        "errors (see docs/PARTITIONING.md)")
    parser.add_argument("--smoke", action="store_true",
                        help="before fanning out, run the base point "
                        "briefly under all runtime sanitizers "
                        "(see docs/SANITIZERS.md)")
    parser.add_argument("--smoke-ticks", type=int, default=1000,
                        metavar="TICKS",
                        help="simulated tick budget for the --smoke run "
                        "(default: 1000)")
    args = parser.parse_args(argv)

    with open(args.config, "r", encoding="utf-8") as handle:
        base_config = json.load(handle)

    sweep = Sweep(base_config, name=args.name, max_time=args.max_time)
    for spec in args.var:
        try:
            short, path, type_name, values = _parse_sweep_var(spec)
        except argparse.ArgumentTypeError as exc:
            parser.error(str(exc))
        sweep.add_variable(
            short, short, values,
            lambda v, path=path, type_name=type_name: f"{path}={type_name}={v}",
        )
    if not args.no_lint:
        # Lint before fanning out: a broken base config or unpicklable
        # payload should fail here, with config paths and rule ids, not
        # as one executor traceback per worker process.
        from repro.lint import lint_sweep

        report = lint_sweep(sweep)
        if report.findings:
            print(report.render_text(), file=sys.stderr)
        if report.has_errors():
            print("lint found errors; not launching sweep workers",
                  file=sys.stderr)
            return 2
    if args.partition is not None:
        # Partition gate: a sweep whose base config cannot be soundly
        # sharded should fail here, with rule ids, not after the PDES
        # runtime has fanned out k worker processes per point.
        from repro.config.settings import Settings, SettingsError
        from repro.lint import lint_partition

        try:
            base_settings = Settings.from_dict(base_config)
        except SettingsError as exc:
            print(f"partition gate: config does not resolve: {exc}",
                  file=sys.stderr)
            return 2
        report, manifest = lint_partition(
            base_settings, k=args.partition,
            subject=f"partition:{args.name}",
        )
        if report.findings:
            print(report.render_text(), file=sys.stderr)
        if report.has_errors():
            print("partition gate found errors; not launching sweep "
                  "workers", file=sys.stderr)
            return 2
        if not args.quiet and manifest is not None:
            lookahead = manifest["lookahead"]["global"]
            print(f"partition gate: k={args.partition}, "
                  f"{len(manifest['cut_channels'])} cut channel(s), "
                  f"lookahead {lookahead}", file=sys.stderr)
    if args.smoke:
        from repro.sanitize import SanitizerError

        try:
            report = sweep.sanitized_smoke(max_time=args.smoke_ticks)
        except SanitizerError as exc:
            print(f"sanitized smoke run failed: {exc}", file=sys.stderr)
            print("not launching sweep workers", file=sys.stderr)
            return 3
        if not args.quiet:
            checks = sum(r.get("checks", 0) for r in report.values())
            print(
                f"smoke: base point clean under sanitizers "
                f"({args.smoke_ticks} ticks, {checks} checks)",
                file=sys.stderr,
            )
    sweep.run(workers=args.workers, job_timeout=args.job_timeout)
    for job in sweep.jobs:
        if job.error:
            print(f"FAILED: {job.error}", file=sys.stderr)

    rows = sweep.to_rows()
    if args.csv:
        sweep.write_csv(args.csv)
        print(f"wrote {len(rows)} rows to {args.csv}", file=sys.stderr)
    if args.html:
        sweep.write_html_index(args.html)
        print(f"wrote index to {args.html}", file=sys.stderr)
    if not args.quiet:
        json.dump(rows, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
    return 0 if not any(job.error for job in sweep.jobs) else 1

"""Command line executables for the tool suite (paper §V).

SSParse and SSPlot are usable both as Python packages and as command
line tools; these are the CLI faces:

``ssparse``::

    ssparse messages.jsonl +app=0 +send=500-1000 --csv out.csv

prints the latency/hop summary of the filtered records and optionally
exports raw samples.

``ssplot``::

    ssplot messages.jsonl --kind percentile --csv fig.csv
    ssplot messages.jsonl --kind timeline --bin 250
    ssplot messages.jsonl --kind cdf

renders the requested plot as ASCII on stdout and optionally exports
the numeric series as CSV.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.stats.latency import LatencyDistribution
from repro.tools import ssplot
from repro.tools.ssparse import parse_file


def ssparse_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ssparse",
        description="Parse a simulation message log and report "
        "latency/hop statistics",
    )
    parser.add_argument("log", help="JSONL message log from a simulation")
    parser.add_argument(
        "filters",
        nargs="*",
        help="filters like +app=0, -sampled=false, +send=500-1000",
    )
    parser.add_argument("--csv", help="also export raw samples as CSV")
    args = parser.parse_args(argv)

    result = parse_file(args.log, args.filters)
    json.dump(result.summary(), sys.stdout, indent=2)
    sys.stdout.write("\n")
    if args.csv:
        count = result.write_csv(args.csv)
        print(f"wrote {count} records to {args.csv}", file=sys.stderr)
    return 0 if len(result) else 1


_PLOT_KINDS = ("percentile", "pdf", "cdf", "timeline")


def ssplot_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ssplot",
        description="Render latency plots from a simulation message log",
    )
    parser.add_argument("log", help="JSONL message log from a simulation")
    parser.add_argument("filters", nargs="*",
                        help="ssparse-style record filters")
    parser.add_argument("--kind", choices=_PLOT_KINDS, default="percentile")
    parser.add_argument("--bin", type=int, default=100,
                        help="bin width in ticks (timeline only)")
    parser.add_argument("--latency", choices=("message", "network", "packet"),
                        default="message", help="which latency to plot")
    parser.add_argument("--csv", help="export the numeric series as CSV")
    parser.add_argument("--width", type=int, default=72)
    parser.add_argument("--height", type=int, default=20)
    args = parser.parse_args(argv)

    result = parse_file(args.log, args.filters)
    if not len(result):
        print("no records match the filters", file=sys.stderr)
        return 1

    if args.kind == "timeline":
        plot = ssplot.latency_vs_time(result.records, args.bin)
    else:
        distribution = result.latency(args.latency)
        if args.kind == "percentile":
            plot = ssplot.percentile_distribution(distribution)
        elif args.kind == "pdf":
            plot = ssplot.latency_pdf(distribution)
        else:
            plot = ssplot.latency_cdf(distribution)

    sys.stdout.write(plot.render_ascii(width=args.width, height=args.height))
    if args.csv:
        plot.write_csv(args.csv)
        print(f"wrote series to {args.csv}", file=sys.stderr)
    return 0

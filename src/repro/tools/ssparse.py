"""ssparse: parse simulation transaction logs (paper §V, [23]).

During the sampling window the simulator logs network transaction
information (here: the JSON-lines format written by
:meth:`repro.stats.records.MessageLog.write_jsonl`).  SSParse digests
that format and generates latency- and hop-count-based information for
packets, messages, and transactions -- aggregate distributions as well
as raw samples for plotting.

The filtering mechanism follows the original's syntax: each filter is
``(+|-)field=spec`` where ``+`` keeps matching records and ``-`` drops
them; filters apply conjunctively in order.  Field specs:

* exact value:  ``+app=0``, ``+src=17``, ``+sampled=true``
* ranges:       ``+send=500-1000`` (inclusive), open ends allowed
                (``+send=500-``)
* sets:         ``+dst=1,2,3``

Supported fields: ``app``, ``src``, ``dst``, ``size`` (flits),
``send`` (creation tick), ``recv`` (delivery tick), ``latency``,
``hops``, ``sampled``, ``nonmin``, ``txn``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.stats.latency import LatencyDistribution
from repro.stats.records import MessageRecord, read_jsonl


class FilterError(ValueError):
    """Raised for malformed filter expressions."""


_FIELD_GETTERS: Dict[str, Callable[[MessageRecord], object]] = {
    "app": lambda r: r.application_id,
    "src": lambda r: r.source,
    "dst": lambda r: r.destination,
    "size": lambda r: r.num_flits,
    "send": lambda r: r.created_tick,
    "recv": lambda r: r.delivered_tick,
    "latency": lambda r: r.latency,
    "hops": lambda r: max(p.hop_count for p in r.packets),
    "sampled": lambda r: r.sampled,
    "nonmin": lambda r: r.non_minimal,
    "txn": lambda r: r.transaction_id,
}

_BOOL_FIELDS = ("sampled", "nonmin")


class Filter:
    """One parsed ``(+|-)field=spec`` filter."""

    def __init__(self, expression: str):
        if len(expression) < 4 or expression[0] not in "+-":
            raise FilterError(
                f"filter must look like +field=spec or -field=spec, "
                f"got {expression!r}"
            )
        self.keep = expression[0] == "+"
        body = expression[1:]
        if "=" not in body:
            raise FilterError(f"filter missing '=': {expression!r}")
        field, spec = body.split("=", 1)
        if field not in _FIELD_GETTERS:
            raise FilterError(
                f"unknown filter field {field!r}; known: "
                f"{sorted(_FIELD_GETTERS)}"
            )
        self.field = field
        self.getter = _FIELD_GETTERS[field]
        self._predicate = self._build_predicate(field, spec)

    def _build_predicate(self, field: str, spec: str):
        if field in _BOOL_FIELDS:
            lowered = spec.lower()
            if lowered not in ("true", "false", "1", "0"):
                raise FilterError(f"bad boolean spec {spec!r} for {field}")
            wanted = lowered in ("true", "1")
            return lambda value: bool(value) == wanted
        if "," in spec:
            values = {int(v) for v in spec.split(",") if v}
            return lambda value: value in values
        if "-" in spec:
            lo_text, hi_text = spec.split("-", 1)
            lo = int(lo_text) if lo_text else None
            hi = int(hi_text) if hi_text else None
            def in_range(value, lo=lo, hi=hi):
                if lo is not None and value < lo:
                    return False
                if hi is not None and value > hi:
                    return False
                return True
            return in_range
        wanted = int(spec)
        return lambda value: value == wanted

    def matches(self, record: MessageRecord) -> bool:
        return bool(self._predicate(self.getter(record)))

    def admits(self, record: MessageRecord) -> bool:
        """Apply keep/drop polarity."""
        match = self.matches(record)
        return match if self.keep else not match


def apply_filters(
    records: Iterable[MessageRecord], expressions: Sequence[str]
) -> List[MessageRecord]:
    """Keep records admitted by every filter (conjunctive)."""
    filters = [Filter(e) for e in expressions]
    return [r for r in records if all(f.admits(r) for f in filters)]


class ParseResult:
    """Aggregated view over a filtered record set."""

    def __init__(self, records: List[MessageRecord]):
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def latency(self, kind: str = "message") -> LatencyDistribution:
        return LatencyDistribution.from_records(self.records, kind)

    def hop_counts(self) -> List[int]:
        return [p.hop_count for r in self.records for p in r.packets]

    def mean_hops(self) -> float:
        hops = self.hop_counts()
        return sum(hops) / len(hops) if hops else float("nan")

    def non_minimal_fraction(self) -> float:
        packets = [p for r in self.records for p in r.packets]
        if not packets:
            return float("nan")
        return sum(1 for p in packets if p.non_minimal) / len(packets)

    def transaction_latencies(self) -> LatencyDistribution:
        """Latency per transaction: first message created to last
        message delivered among messages sharing a transaction id.

        For request/reply workloads this is the round-trip time; for
        plain workloads every message is its own transaction and this
        equals the message latency distribution.
        """
        spans: Dict[int, List[int]] = {}
        for record in self.records:
            span = spans.setdefault(record.transaction_id, [
                record.created_tick, record.delivered_tick
            ])
            span[0] = min(span[0], record.created_tick)
            span[1] = max(span[1], record.delivered_tick)
        return LatencyDistribution(end - start for start, end in spans.values())

    def transaction_count(self) -> int:
        return len({r.transaction_id for r in self.records})

    def summary(self) -> Dict[str, object]:
        message = self.latency("message")
        packet = self.latency("packet")
        transaction = self.transaction_latencies()
        return {
            "messages": len(self.records),
            "transactions": self.transaction_count(),
            "message_latency": message.summary() if not message.empty else None,
            "packet_latency": packet.summary() if not packet.empty else None,
            "transaction_latency": (
                transaction.summary() if not transaction.empty else None
            ),
            "mean_hops": self.mean_hops(),
            "non_minimal_fraction": self.non_minimal_fraction(),
        }

    def write_csv(self, path: str) -> int:
        """Raw per-message samples for external plotting."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("id,app,src,dst,flits,created,delivered,latency,hops,nonmin\n")
            for r in self.records:
                hops = max(p.hop_count for p in r.packets)
                handle.write(
                    f"{r.message_id},{r.application_id},{r.source},"
                    f"{r.destination},{r.num_flits},{r.created_tick},"
                    f"{r.delivered_tick},{r.latency},{hops},"
                    f"{int(r.non_minimal)}\n"
                )
        return len(self.records)


def parse_file(path: str, filters: Sequence[str] = ()) -> ParseResult:
    """Load a JSONL message log and apply filters."""
    return ParseResult(apply_filters(read_jsonl(path), filters))


def parse_records(
    records: Iterable[MessageRecord], filters: Sequence[str] = ()
) -> ParseResult:
    """Filter in-memory records (no file round trip)."""
    return ParseResult(apply_filters(records, filters))

"""ssplot: plot data generation and rendering (paper §V, [24]).

The original SSPlot wraps matplotlib; this environment has no plotting
backend, so ssplot produces the *numeric series* of every plot type the
paper shows -- the actual reproduction target -- plus two renderers:

* CSV export for external plotting, and
* a dependency-free ASCII renderer for terminals and logs.

Plot types (paper §V):

* mean latency over time (Fig. 5)        -- :func:`latency_vs_time`
* percentile distribution (Fig. 7)       -- :func:`percentile_distribution`
* load vs latency distributions (Fig. 8) -- :class:`LoadLatencyPlot`
* PDF / CDF of latency                   -- :func:`latency_pdf`, `latency_cdf`
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.latency import STANDARD_PERCENTILES, LatencyDistribution
from repro.stats.timeline import latency_timeline


class Series:
    """A named (x, y) series."""

    def __init__(self, name: str, x: Sequence[float], y: Sequence[float]):
        if len(x) != len(y):
            raise ValueError(f"series {name!r}: x and y lengths differ")
        self.name = name
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)

    def __len__(self) -> int:
        return len(self.x)


class PlotData:
    """A titled collection of series with axis labels."""

    def __init__(self, title: str, x_label: str, y_label: str):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series: List[Series] = []

    def add(self, name: str, x: Sequence[float], y: Sequence[float]) -> Series:
        series = Series(name, x, y)
        self.series.append(series)
        return series

    # -- exports ---------------------------------------------------------------

    def write_csv(self, path: str) -> None:
        """Long-format CSV: series,x,y."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# {self.title}\n")
            handle.write(f"series,{self.x_label},{self.y_label}\n")
            for series in self.series:
                for x, y in zip(series.x, series.y):
                    handle.write(f"{series.name},{x:g},{y:g}\n")

    def render_ascii(self, width: int = 72, height: int = 20) -> str:
        """A dependency-free scatter/line rendering."""
        finite = [
            (x, y)
            for s in self.series
            for x, y in zip(s.x, s.y)
            if math.isfinite(x) and math.isfinite(y)
        ]
        if not finite:
            return f"{self.title}\n(no data)\n"
        xs = [p[0] for p in finite]
        ys = [p[1] for p in finite]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        grid = [[" "] * width for _ in range(height)]
        markers = "ox+*#@%&$"
        for index, series in enumerate(self.series):
            marker = markers[index % len(markers)]
            for x, y in zip(series.x, series.y):
                if not (math.isfinite(x) and math.isfinite(y)):
                    continue
                col = int((x - x_lo) / x_span * (width - 1))
                row = height - 1 - int((y - y_lo) / y_span * (height - 1))
                grid[row][col] = marker
        lines = [self.title]
        lines.append(f"y: {self.y_label}  [{y_lo:g} .. {y_hi:g}]")
        lines.extend("|" + "".join(row) for row in grid)
        lines.append("+" + "-" * width)
        lines.append(f"x: {self.x_label}  [{x_lo:g} .. {x_hi:g}]")
        legend = "  ".join(
            f"{markers[i % len(markers)]}={s.name}" for i, s in enumerate(self.series)
        )
        lines.append(legend)
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# plot builders
# ---------------------------------------------------------------------------


def latency_vs_time(
    records,
    bin_ticks: int,
    title: str = "Mean latency over time",
    start_tick: Optional[int] = None,
    end_tick: Optional[int] = None,
) -> PlotData:
    """Fig. 5: time-binned mean latency of (typically Blast) records."""
    centers, means, _counts = latency_timeline(
        records, bin_ticks, start_tick, end_tick
    )
    plot = PlotData(title, "time (ticks)", "mean latency (ticks)")
    keep = ~np.isnan(means)
    plot.add("mean", centers[keep], means[keep])
    return plot


def percentile_distribution(
    distribution: LatencyDistribution,
    title: str = "Latency percentile distribution",
    max_nines: int = 4,
) -> PlotData:
    """Fig. 7: latency vs percentile 'nines' (log-scale tail)."""
    latencies, nines = distribution.percentile_curve(max_nines=max_nines)
    plot = PlotData(title, "latency (ticks)", "percentile (nines)")
    plot.add("percentile", latencies, nines)
    return plot


def latency_pdf(
    distribution: LatencyDistribution,
    num_bins: int = 50,
    title: str = "Latency PDF",
) -> PlotData:
    centers, density = distribution.pdf(num_bins)
    plot = PlotData(title, "latency (ticks)", "density")
    plot.add("pdf", centers, density)
    return plot


def latency_cdf(
    distribution: LatencyDistribution, title: str = "Latency CDF"
) -> PlotData:
    latencies, fractions = distribution.cdf()
    plot = PlotData(title, "latency (ticks)", "cumulative fraction")
    plot.add("cdf", latencies, fractions)
    return plot


class LoadLatencyPlot:
    """Fig. 8 / Fig. 12: latency distributions across an injection sweep.

    Add one (load, distribution) point per simulation; the plot exposes
    a mean line plus one line per percentile, and stops each line at the
    saturation point (a saturated network yields unbounded latency, so
    plotting it would be meaningless -- the paper's lines stop at 98%
    of saturation for the same reason).
    """

    def __init__(
        self,
        title: str = "Load vs latency",
        percentiles: Sequence[float] = STANDARD_PERCENTILES,
    ):
        self.title = title
        self.percentiles = tuple(percentiles)
        self._points: List[Tuple[float, LatencyDistribution, bool]] = []

    def add_point(
        self,
        load: float,
        distribution: LatencyDistribution,
        saturated: bool = False,
    ) -> None:
        self._points.append((load, distribution, saturated))

    def saturation_load(self) -> Optional[float]:
        """The lowest offered load marked saturated, if any."""
        saturated = [load for load, _d, s in self._points if s]
        return min(saturated) if saturated else None

    def build(self) -> PlotData:
        plot = PlotData(self.title, "offered load (flits/cycle)", "latency (ticks)")
        points = sorted(self._points, key=lambda p: p[0])
        usable = [(load, dist) for load, dist, sat in points if not sat and not dist.empty]
        if not usable:
            return plot
        loads = [load for load, _dist in usable]
        plot.add("mean", loads, [dist.mean() for _load, dist in usable])
        for percent in self.percentiles:
            plot.add(
                f"p{percent:g}",
                loads,
                [dist.percentile(percent) for _load, dist in usable],
            )
        return plot

    def throughput_table(self) -> List[Tuple[float, float]]:
        """(offered load, mean latency) rows for quick inspection."""
        return [
            (load, dist.mean() if not dist.empty else float("nan"))
            for load, dist, _sat in sorted(self._points, key=lambda p: p[0])
        ]

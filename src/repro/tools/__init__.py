"""The accompanying tool suite (paper §V): taskrun, sssweep, ssparse,
ssplot."""

from repro.tools import ssparse, ssplot, sssweep, taskrun

__all__ = ["ssparse", "ssplot", "sssweep", "taskrun"]

"""taskrun: dependency-ordered task execution (paper §V, [25]).

TaskRun runs tasks with dependencies, conditional execution, resource
management, "and much more".  The experiment flow -- simulate, parse,
analyze, plot -- is a DAG where each step depends on earlier steps and
competes for machine resources; a TaskRun script declares the tasks and
the manager executes them in a correct order, in parallel up to the
declared resource capacities.

Core concepts:

* :class:`Task` -- a unit of work: a Python function (:class:`FunctionTask`)
  or a shell command (:class:`ProcessTask`).  Tasks declare resource
  demands (e.g. ``{"cpus": 1, "mem": 2}``) and dependencies.
* conditions -- a task may carry a condition callable; when it returns
  False at schedule time the task is *skipped* (its dependents still
  run), which implements incremental flows ("output file already
  exists").
* :class:`ResourceManager` -- named capacities; a task runs only when
  all its demands fit, and returns them on completion.
* :class:`TaskManager` -- topological scheduling with a worker pool.

Failure semantics: a failed task marks all transitive dependents as
cancelled; independent subgraphs keep running.
"""

from __future__ import annotations

import enum
import os
import pickle
import subprocess
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)


class TaskState(enum.Enum):
    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    SKIPPED = "skipped"
    FAILED = "failed"
    CANCELLED = "cancelled"

_TERMINAL = (TaskState.SUCCEEDED, TaskState.SKIPPED, TaskState.FAILED,
             TaskState.CANCELLED)


class TaskError(RuntimeError):
    """Raised for task graph construction errors."""


class Task:
    """Abstract unit of work in a task graph."""

    def __init__(
        self,
        name: str,
        resources: Optional[Dict[str, int]] = None,
        condition: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ):
        if not name:
            raise TaskError("task name must be non-empty")
        self.name = name
        self.resources = dict(resources or {})
        self.condition = condition
        self.timeout = timeout
        self.dependencies: List["Task"] = []
        self.dependents: List["Task"] = []
        self.state = TaskState.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def depends_on(self, *tasks: "Task") -> "Task":
        """Declare that this task runs after ``tasks``; returns self."""
        for task in tasks:
            if task is self:
                raise TaskError(f"task {self.name!r} cannot depend on itself")
            self.dependencies.append(task)
            task.dependents.append(self)
        return self

    # -- execution ---------------------------------------------------------------

    def execute(self) -> Any:
        raise NotImplementedError

    def payload(self) -> Optional[Tuple[Callable[..., Any], tuple, dict]]:
        """A picklable ``(func, args, kwargs)`` triple for out-of-process
        execution, or ``None`` when the task can only run in-process.

        :class:`ParallelTaskManager` ships the payload to a worker
        process and feeds the return value to :meth:`apply_result` on
        the parent-side task object.  The default is ``None`` (run
        inline).
        """
        return None

    def apply_result(self, result: Any) -> None:
        """Install the worker-returned value onto this (parent-side) task."""
        self.result = result

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"


class FunctionTask(Task):
    """Run a Python callable; its return value becomes ``task.result``."""

    def __init__(
        self,
        name: str,
        func: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        resources: Optional[Dict[str, int]] = None,
        condition: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ):
        super().__init__(name, resources, condition, timeout)
        self.func = func
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})

    def execute(self) -> Any:
        return self.func(*self.args, **self.kwargs)

    def payload(self) -> Optional[Tuple[Callable[..., Any], tuple, dict]]:
        return (self.func, self.args, self.kwargs)


class ProcessTask(Task):
    """Run a shell command; nonzero exit status is a failure."""

    def __init__(
        self,
        name: str,
        command: Sequence[str],
        resources: Optional[Dict[str, int]] = None,
        condition: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ):
        super().__init__(name, resources, condition, timeout)
        self.command = list(command)
        self.stdout: Optional[str] = None
        self.stderr: Optional[str] = None

    def execute(self) -> int:
        try:
            returncode, self.stdout, self.stderr = _run_command(
                self.command, self.timeout
            )
        except CommandError as exc:
            self.stdout, self.stderr = exc.stdout, exc.stderr
            raise
        return returncode

    def payload(self) -> Optional[Tuple[Callable[..., Any], tuple, dict]]:
        return (_run_command, (self.command, self.timeout), {})

    def apply_result(self, result: Any) -> None:
        self.result, self.stdout, self.stderr = result


class CommandError(RuntimeError):
    """A command exited nonzero; carries the captured output.

    The positional-args construction keeps the exception picklable, so
    it survives the trip back from a worker process intact.
    """

    def __init__(self, command, returncode, stdout, stderr):
        super().__init__(command, returncode, stdout, stderr)
        self.command = command
        self.returncode = returncode
        self.stdout = stdout
        self.stderr = stderr

    def __str__(self):
        tail = self.stderr[-500:] if self.stderr else ""
        return f"command {self.command!r} exited {self.returncode}: {tail}"


def _run_command(
    command: Sequence[str], timeout: Optional[float]
) -> Tuple[int, str, str]:
    """Run ``command``; module-level so it pickles for worker processes."""
    proc = subprocess.run(
        list(command),
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise CommandError(command, proc.returncode, proc.stdout, proc.stderr)
    return proc.returncode, proc.stdout, proc.stderr


class ResourceManager:
    """Named resource capacities shared by concurrently running tasks."""

    def __init__(self, capacities: Optional[Dict[str, int]] = None):
        self._capacity = dict(capacities or {})
        self._available = dict(self._capacity)
        self._lock = threading.Lock()

    def capacity(self, name: str) -> int:
        return self._capacity.get(name, 0)

    def available(self, name: str) -> int:
        with self._lock:
            return self._available.get(name, 0)

    def validate(self, task: Task) -> None:
        for name, amount in task.resources.items():
            if amount < 0:
                raise TaskError(f"{task.name}: negative demand for {name!r}")
            if amount > self._capacity.get(name, 0):
                raise TaskError(
                    f"{task.name}: demands {amount} of {name!r} but the "
                    f"capacity is {self._capacity.get(name, 0)} -- it could "
                    f"never run"
                )

    def try_acquire(self, task: Task) -> bool:
        with self._lock:
            for name, amount in task.resources.items():
                if self._available.get(name, 0) < amount:
                    return False
            for name, amount in task.resources.items():
                self._available[name] -= amount
            return True

    def release(self, task: Task) -> None:
        with self._lock:
            for name, amount in task.resources.items():
                self._available[name] += amount
                if self._available[name] > self._capacity[name]:
                    raise TaskError(
                        f"resource {name!r} over-released past capacity"
                    )


class TaskManager:
    """Builds and executes a task DAG.

    ``num_workers`` > 1 uses a thread pool (appropriate for process
    tasks and IO-heavy function tasks; CPython-bound function tasks
    still serialize on the GIL, matching TaskRun's role as an
    orchestrator rather than a parallel compute engine).
    """

    def __init__(
        self,
        resources: Optional[Dict[str, int]] = None,
        num_workers: int = 1,
        observer: Optional[Callable[[Task], None]] = None,
    ):
        if num_workers < 1:
            raise TaskError("num_workers must be >= 1")
        self.resource_manager = ResourceManager(resources)
        self.num_workers = num_workers
        self.tasks: List[Task] = []
        self._observer = observer

    # -- graph construction -------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        self.resource_manager.validate(task)
        self.tasks.append(task)
        return task

    def function_task(self, name: str, func, *args, **kwargs) -> FunctionTask:
        task = FunctionTask(name, func, args, kwargs)
        return self.add_task(task)

    def _check_acyclic(self) -> List[Task]:
        """Kahn's algorithm; returns a topological order or raises."""
        in_degree = {id(t): len(t.dependencies) for t in self.tasks}
        known = {id(t) for t in self.tasks}
        for task in self.tasks:
            for dep in task.dependencies:
                if id(dep) not in known:
                    raise TaskError(
                        f"{task.name!r} depends on {dep.name!r}, which was "
                        f"never added to this manager"
                    )
        queue = [t for t in self.tasks if in_degree[id(t)] == 0]
        order: List[Task] = []
        while queue:
            task = queue.pop()
            order.append(task)
            for dependent in task.dependents:
                if id(dependent) in in_degree:
                    in_degree[id(dependent)] -= 1
                    if in_degree[id(dependent)] == 0:
                        queue.append(dependent)
        if len(order) != len(self.tasks):
            cyclic = [t.name for t in self.tasks if not t.done and t not in order]
            raise TaskError(f"task graph has a cycle involving {cyclic}")
        return order

    # -- execution -----------------------------------------------------------------

    def run(self) -> Dict[str, TaskState]:
        """Execute the graph; returns {task name: final state}."""
        self._check_acyclic()
        lock = threading.Lock()
        ready_cv = threading.Condition(lock)
        remaining = [t for t in self.tasks]

        def dependencies_satisfied(task: Task) -> bool:
            return all(
                d.state in (TaskState.SUCCEEDED, TaskState.SKIPPED)
                for d in task.dependencies
            )

        def cancel_dependents(task: Task) -> None:
            for dependent in task.dependents:
                if not dependent.done:
                    dependent.state = TaskState.CANCELLED
                    self._notify(dependent)
                    cancel_dependents(dependent)

        def next_task() -> Optional[Task]:
            # Called with the lock held.
            for task in remaining:
                if task.done or task.state == TaskState.RUNNING:
                    continue
                if any(d.state in (TaskState.FAILED, TaskState.CANCELLED)
                       for d in task.dependencies):
                    task.state = TaskState.CANCELLED
                    self._notify(task)
                    cancel_dependents(task)
                    continue
                if not dependencies_satisfied(task):
                    continue
                if task.condition is not None and not task.condition():
                    task.state = TaskState.SKIPPED
                    self._notify(task)
                    ready_cv.notify_all()
                    continue
                if self.resource_manager.try_acquire(task):
                    task.state = TaskState.RUNNING
                    return task
            return None

        def all_done() -> bool:
            return all(t.done for t in self.tasks)

        def worker() -> None:
            while True:
                with ready_cv:
                    task = next_task()
                    while task is None:
                        if all_done():
                            ready_cv.notify_all()
                            return
                        # A task may be blocked on resources or deps.
                        if not ready_cv.wait(timeout=0.05):
                            pass
                        task = next_task()
                try:
                    task.result = task.execute()
                    task.state = TaskState.SUCCEEDED
                except BaseException as exc:  # noqa: BLE001 - report and contain
                    task.error = exc
                    task.state = TaskState.FAILED
                finally:
                    self.resource_manager.release(task)
                with ready_cv:
                    if task.state == TaskState.FAILED:
                        cancel_dependents(task)
                    self._notify(task)
                    ready_cv.notify_all()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return {task.name: task.state for task in self.tasks}

    def _notify(self, task: Task) -> None:
        if self._observer is not None:
            self._observer(task)

    # -- reporting ---------------------------------------------------------------------

    def failures(self) -> List[Task]:
        return [t for t in self.tasks if t.state == TaskState.FAILED]

    def succeeded(self) -> bool:
        return all(
            t.state in (TaskState.SUCCEEDED, TaskState.SKIPPED) for t in self.tasks
        )


class TaskTimeout(RuntimeError):
    """A task exceeded its ``timeout`` under :class:`ParallelTaskManager`."""


class ParallelTaskManager(TaskManager):
    """Dependency-ordered execution across a pool of worker *processes*.

    Unlike :class:`TaskManager`'s thread pool (which serializes
    CPU-bound Python on the GIL), this manager ships each ready task's
    :meth:`Task.payload` to a ``ProcessPoolExecutor`` worker and applies
    the returned value to the parent-side task.  This is the engine
    behind ``Sweep.run(workers=N)``: each simulation runs in its own
    process and only the collected result rows travel back.

    Semantics:

    * Dependency edges, conditions, resources, and failure propagation
      match :class:`TaskManager` exactly.
    * A task whose payload is ``None`` or does not pickle (e.g. a
      closure over live objects) runs *inline* in the parent process --
      the graph still completes, it just doesn't parallelize that task.
    * ``task.timeout`` is enforced by deadline: an overdue task is
      marked FAILED with :class:`TaskTimeout` and its future abandoned
      (a running worker cannot be interrupted portably mid-payload; the
      late result is discarded, and any worker still chewing on an
      abandoned payload is terminated once the rest of the graph is
      done).
    * The returned ``{name: state}`` dict and all task results are in
      task-insertion order regardless of completion order, so parallel
      runs are observationally deterministic.

    Workers are started with the ``spawn`` method: forking a process
    that holds live simulator state is a rich source of latent bugs,
    and spawn behaves identically across platforms.
    """

    def __init__(
        self,
        resources: Optional[Dict[str, int]] = None,
        num_workers: Optional[int] = None,
        observer: Optional[Callable[[Task], None]] = None,
    ):
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        super().__init__(resources, num_workers, observer)

    def run(self) -> Dict[str, TaskState]:
        import concurrent.futures as cf
        import multiprocessing

        self._check_acyclic()
        mp_context = multiprocessing.get_context("spawn")

        def cancel_dependents(task: Task) -> None:
            for dependent in task.dependents:
                if not dependent.done:
                    dependent.state = TaskState.CANCELLED
                    self._notify(dependent)
                    cancel_dependents(dependent)

        def finish(task: Task, state: TaskState) -> None:
            task.state = state
            self.resource_manager.release(task)
            if state == TaskState.FAILED:
                cancel_dependents(task)
            self._notify(task)

        running: Dict[Any, Task] = {}  # future -> task
        deadlines: Dict[Any, float] = {}  # future -> monotonic deadline
        abandoned: set = set()  # timed-out futures whose results we drop

        pool = cf.ProcessPoolExecutor(
            max_workers=self.num_workers, mp_context=mp_context
        )
        try:
            while True:
                # Launch every task that became ready.
                progressed = True
                while progressed:
                    progressed = False
                    for task in self.tasks:
                        if task.done or task.state == TaskState.RUNNING:
                            continue
                        if any(
                            d.state in (TaskState.FAILED, TaskState.CANCELLED)
                            for d in task.dependencies
                        ):
                            task.state = TaskState.CANCELLED
                            self._notify(task)
                            cancel_dependents(task)
                            progressed = True
                            continue
                        if not all(
                            d.state in (TaskState.SUCCEEDED, TaskState.SKIPPED)
                            for d in task.dependencies
                        ):
                            continue
                        if task.condition is not None and not task.condition():
                            task.state = TaskState.SKIPPED
                            self._notify(task)
                            progressed = True
                            continue
                        if not self.resource_manager.try_acquire(task):
                            continue
                        task.state = TaskState.RUNNING
                        progressed = True
                        payload = task.payload()
                        if payload is not None:
                            try:
                                pickle.dumps(payload)
                            except Exception:
                                payload = None
                        if payload is None:
                            # Not parallelizable: run inline.
                            try:
                                task.result = task.execute()
                                finish(task, TaskState.SUCCEEDED)
                            except BaseException as exc:  # noqa: BLE001
                                task.error = exc
                                finish(task, TaskState.FAILED)
                            continue
                        func, args, kwargs = payload
                        future = pool.submit(func, *args, **kwargs)
                        running[future] = task
                        if task.timeout is not None:
                            deadlines[future] = time.monotonic() + task.timeout

                if not running:
                    if all(t.done for t in self.tasks):
                        break
                    if not any(t.state == TaskState.RUNNING for t in self.tasks):
                        # Nothing running, nothing launchable: deadlock
                        # (shouldn't happen with validated resources).
                        stuck = [t.name for t in self.tasks if not t.done]
                        raise TaskError(f"no runnable tasks among {stuck}")

                # Wait for a completion (or the nearest deadline).
                wait_timeout = None
                if deadlines:
                    wait_timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                done, _ = cf.wait(
                    set(running) | abandoned,
                    timeout=wait_timeout,
                    return_when=cf.FIRST_COMPLETED,
                )
                for future in done:
                    if future in abandoned:
                        abandoned.discard(future)
                        continue
                    task = running.pop(future)
                    deadlines.pop(future, None)
                    try:
                        task.apply_result(future.result())
                        finish(task, TaskState.SUCCEEDED)
                    except BaseException as exc:  # noqa: BLE001
                        task.error = exc
                        finish(task, TaskState.FAILED)
                now = time.monotonic()
                for future, deadline in list(deadlines.items()):
                    if now > deadline and future in running:
                        task = running.pop(future)
                        deadlines.pop(future, None)
                        if not future.cancel():
                            abandoned.add(future)
                        task.error = TaskTimeout(
                            f"task {task.name!r} exceeded {task.timeout}s"
                        )
                        finish(task, TaskState.FAILED)
        finally:
            if abandoned:
                # Workers still chewing on timed-out payloads would
                # block a clean shutdown indefinitely; everything we
                # still care about has completed, so put them down
                # first -- the pool notices the dead workers, marks
                # itself broken, and shutdown returns promptly.
                for proc in list((getattr(pool, "_processes", None) or {}).values()):
                    proc.terminate()
            pool.shutdown(wait=True, cancel_futures=True)

        return {task.name: task.state for task in self.tasks}

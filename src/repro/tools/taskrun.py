"""taskrun: dependency-ordered task execution (paper §V, [25]).

TaskRun runs tasks with dependencies, conditional execution, resource
management, "and much more".  The experiment flow -- simulate, parse,
analyze, plot -- is a DAG where each step depends on earlier steps and
competes for machine resources; a TaskRun script declares the tasks and
the manager executes them in a correct order, in parallel up to the
declared resource capacities.

Core concepts:

* :class:`Task` -- a unit of work: a Python function (:class:`FunctionTask`)
  or a shell command (:class:`ProcessTask`).  Tasks declare resource
  demands (e.g. ``{"cpus": 1, "mem": 2}``) and dependencies.
* conditions -- a task may carry a condition callable; when it returns
  False at schedule time the task is *skipped* (its dependents still
  run), which implements incremental flows ("output file already
  exists").
* :class:`ResourceManager` -- named capacities; a task runs only when
  all its demands fit, and returns them on completion.
* :class:`TaskManager` -- topological scheduling with a worker pool.

Failure semantics: a failed task marks all transitive dependents as
cancelled; independent subgraphs keep running.
"""

from __future__ import annotations

import enum
import subprocess
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence


class TaskState(enum.Enum):
    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    SKIPPED = "skipped"
    FAILED = "failed"
    CANCELLED = "cancelled"

_TERMINAL = (TaskState.SUCCEEDED, TaskState.SKIPPED, TaskState.FAILED,
             TaskState.CANCELLED)


class TaskError(RuntimeError):
    """Raised for task graph construction errors."""


class Task:
    """Abstract unit of work in a task graph."""

    def __init__(
        self,
        name: str,
        resources: Optional[Dict[str, int]] = None,
        condition: Optional[Callable[[], bool]] = None,
    ):
        if not name:
            raise TaskError("task name must be non-empty")
        self.name = name
        self.resources = dict(resources or {})
        self.condition = condition
        self.dependencies: List["Task"] = []
        self.dependents: List["Task"] = []
        self.state = TaskState.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def depends_on(self, *tasks: "Task") -> "Task":
        """Declare that this task runs after ``tasks``; returns self."""
        for task in tasks:
            if task is self:
                raise TaskError(f"task {self.name!r} cannot depend on itself")
            self.dependencies.append(task)
            task.dependents.append(self)
        return self

    # -- execution ---------------------------------------------------------------

    def execute(self) -> Any:
        raise NotImplementedError

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"


class FunctionTask(Task):
    """Run a Python callable; its return value becomes ``task.result``."""

    def __init__(
        self,
        name: str,
        func: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        resources: Optional[Dict[str, int]] = None,
        condition: Optional[Callable[[], bool]] = None,
    ):
        super().__init__(name, resources, condition)
        self.func = func
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})

    def execute(self) -> Any:
        return self.func(*self.args, **self.kwargs)


class ProcessTask(Task):
    """Run a shell command; nonzero exit status is a failure."""

    def __init__(
        self,
        name: str,
        command: Sequence[str],
        resources: Optional[Dict[str, int]] = None,
        condition: Optional[Callable[[], bool]] = None,
        timeout: Optional[float] = None,
    ):
        super().__init__(name, resources, condition)
        self.command = list(command)
        self.timeout = timeout
        self.stdout: Optional[str] = None
        self.stderr: Optional[str] = None

    def execute(self) -> int:
        proc = subprocess.run(
            self.command,
            capture_output=True,
            text=True,
            timeout=self.timeout,
        )
        self.stdout = proc.stdout
        self.stderr = proc.stderr
        if proc.returncode != 0:
            raise RuntimeError(
                f"command {self.command!r} exited {proc.returncode}: "
                f"{proc.stderr[-500:] if proc.stderr else ''}"
            )
        return proc.returncode


class ResourceManager:
    """Named resource capacities shared by concurrently running tasks."""

    def __init__(self, capacities: Optional[Dict[str, int]] = None):
        self._capacity = dict(capacities or {})
        self._available = dict(self._capacity)
        self._lock = threading.Lock()

    def capacity(self, name: str) -> int:
        return self._capacity.get(name, 0)

    def available(self, name: str) -> int:
        with self._lock:
            return self._available.get(name, 0)

    def validate(self, task: Task) -> None:
        for name, amount in task.resources.items():
            if amount < 0:
                raise TaskError(f"{task.name}: negative demand for {name!r}")
            if amount > self._capacity.get(name, 0):
                raise TaskError(
                    f"{task.name}: demands {amount} of {name!r} but the "
                    f"capacity is {self._capacity.get(name, 0)} -- it could "
                    f"never run"
                )

    def try_acquire(self, task: Task) -> bool:
        with self._lock:
            for name, amount in task.resources.items():
                if self._available.get(name, 0) < amount:
                    return False
            for name, amount in task.resources.items():
                self._available[name] -= amount
            return True

    def release(self, task: Task) -> None:
        with self._lock:
            for name, amount in task.resources.items():
                self._available[name] += amount
                if self._available[name] > self._capacity[name]:
                    raise TaskError(
                        f"resource {name!r} over-released past capacity"
                    )


class TaskManager:
    """Builds and executes a task DAG.

    ``num_workers`` > 1 uses a thread pool (appropriate for process
    tasks and IO-heavy function tasks; CPython-bound function tasks
    still serialize on the GIL, matching TaskRun's role as an
    orchestrator rather than a parallel compute engine).
    """

    def __init__(
        self,
        resources: Optional[Dict[str, int]] = None,
        num_workers: int = 1,
        observer: Optional[Callable[[Task], None]] = None,
    ):
        if num_workers < 1:
            raise TaskError("num_workers must be >= 1")
        self.resource_manager = ResourceManager(resources)
        self.num_workers = num_workers
        self.tasks: List[Task] = []
        self._observer = observer

    # -- graph construction -------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        self.resource_manager.validate(task)
        self.tasks.append(task)
        return task

    def function_task(self, name: str, func, *args, **kwargs) -> FunctionTask:
        task = FunctionTask(name, func, args, kwargs)
        return self.add_task(task)

    def _check_acyclic(self) -> List[Task]:
        """Kahn's algorithm; returns a topological order or raises."""
        in_degree = {id(t): len(t.dependencies) for t in self.tasks}
        known = {id(t) for t in self.tasks}
        for task in self.tasks:
            for dep in task.dependencies:
                if id(dep) not in known:
                    raise TaskError(
                        f"{task.name!r} depends on {dep.name!r}, which was "
                        f"never added to this manager"
                    )
        queue = [t for t in self.tasks if in_degree[id(t)] == 0]
        order: List[Task] = []
        while queue:
            task = queue.pop()
            order.append(task)
            for dependent in task.dependents:
                if id(dependent) in in_degree:
                    in_degree[id(dependent)] -= 1
                    if in_degree[id(dependent)] == 0:
                        queue.append(dependent)
        if len(order) != len(self.tasks):
            cyclic = [t.name for t in self.tasks if not t.done and t not in order]
            raise TaskError(f"task graph has a cycle involving {cyclic}")
        return order

    # -- execution -----------------------------------------------------------------

    def run(self) -> Dict[str, TaskState]:
        """Execute the graph; returns {task name: final state}."""
        self._check_acyclic()
        lock = threading.Lock()
        ready_cv = threading.Condition(lock)
        remaining = [t for t in self.tasks]

        def dependencies_satisfied(task: Task) -> bool:
            return all(
                d.state in (TaskState.SUCCEEDED, TaskState.SKIPPED)
                for d in task.dependencies
            )

        def cancel_dependents(task: Task) -> None:
            for dependent in task.dependents:
                if not dependent.done:
                    dependent.state = TaskState.CANCELLED
                    self._notify(dependent)
                    cancel_dependents(dependent)

        def next_task() -> Optional[Task]:
            # Called with the lock held.
            for task in remaining:
                if task.done or task.state == TaskState.RUNNING:
                    continue
                if any(d.state in (TaskState.FAILED, TaskState.CANCELLED)
                       for d in task.dependencies):
                    task.state = TaskState.CANCELLED
                    self._notify(task)
                    cancel_dependents(task)
                    continue
                if not dependencies_satisfied(task):
                    continue
                if task.condition is not None and not task.condition():
                    task.state = TaskState.SKIPPED
                    self._notify(task)
                    ready_cv.notify_all()
                    continue
                if self.resource_manager.try_acquire(task):
                    task.state = TaskState.RUNNING
                    return task
            return None

        def all_done() -> bool:
            return all(t.done for t in self.tasks)

        def worker() -> None:
            while True:
                with ready_cv:
                    task = next_task()
                    while task is None:
                        if all_done():
                            ready_cv.notify_all()
                            return
                        # A task may be blocked on resources or deps.
                        if not ready_cv.wait(timeout=0.05):
                            pass
                        task = next_task()
                try:
                    task.result = task.execute()
                    task.state = TaskState.SUCCEEDED
                except BaseException as exc:  # noqa: BLE001 - report and contain
                    task.error = exc
                    task.state = TaskState.FAILED
                finally:
                    self.resource_manager.release(task)
                with ready_cv:
                    if task.state == TaskState.FAILED:
                        cancel_dependents(task)
                    self._notify(task)
                    ready_cv.notify_all()

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return {task.name: task.state for task in self.tasks}

    def _notify(self, task: Task) -> None:
        if self._observer is not None:
            self._observer(task)

    # -- reporting ---------------------------------------------------------------------

    def failures(self) -> List[Task]:
        return [t for t in self.tasks if t.state == TaskState.FAILED]

    def succeeded(self) -> bool:
        return all(
            t.state in (TaskState.SUCCEEDED, TaskState.SKIPPED) for t in self.tasks
        )

"""sslint: static analysis of an experiment before it runs.

Lints JSON settings files (config + graph layers), Python source files
(determinism/dataflow/partition AST layers), and the built-in benchmark
configurations::

    sslint experiment.json network.num_vcs=uint=4
    sslint examples/ --format json
    sslint examples/ --format sarif > lint.sarif
    sslint --builtin all
    sslint experiment.json --import my_models   # user models (§III-D)
    sslint experiment.json --layer shard        # shard-purity S-rules
    sslint --import my_models my_models.py --layer shard
    sslint src/repro --layer perf               # hot-path H-rules
    sslint src/repro --layer perf --profile profile.pstats
    sslint src/ --write-baseline lint-baseline.json
    sslint src/ --baseline lint-baseline.json   # new findings only
    sslint --list-rules
    sslint --list-rules --layer partition

Partition planning and verification (docs/PARTITIONING.md)::

    sslint experiment.json --partition 4
    sslint experiment.json --partition 4 --manifest-out plan.json
    sslint --builtin all --partition 4 --manifest-out plans/
    sslint experiment.json --manifest plan.json   # verify a manifest

``--partition K`` plans a deterministic k-way shard assignment for each
config target and runs the P-rules over the planned manifest;
``--manifest FILE`` instead verifies an existing manifest against the
network the (single) config target constructs.

Exit status: 0 when no error-severity finding was produced, 1
otherwise (warnings and infos never fail the run), 2 on usage errors.
With ``--baseline``, findings recorded in the baseline are suppressed
before the exit status is computed, so CI gates on new findings only.
See docs/LINTING.md for the rule catalog.
"""

from __future__ import annotations

import argparse
import importlib
import json
import pathlib
import sys
from typing import Dict, List, Optional, Tuple

from repro.config.settings import Settings, SettingsError
from repro.lint import (
    ALL_LAYERS,
    PERF_LAYER,
    SHARD_LAYER,
    SOURCE_LAYERS,
    Finding,
    LintReport,
    Severity,
    lint_partition,
    lint_settings,
    lint_sources,
    rule_catalog,
)


def _split_args(items: List[str]) -> Tuple[List[str], List[str]]:
    """Separate file/directory paths from path=type=value overrides."""
    paths, overrides = [], []
    for item in items:
        (overrides if "=" in item else paths).append(item)
    return paths, overrides


def _collect_targets(
    paths: List[str], parser: argparse.ArgumentParser
) -> Tuple[List[pathlib.Path], List[pathlib.Path]]:
    """Expand paths into (config files, python source files)."""
    configs: List[pathlib.Path] = []
    sources: List[pathlib.Path] = []
    for text in paths:
        path = pathlib.Path(text)
        if not path.exists():
            parser.error(f"no such file or directory: {text}")
        if path.is_dir():
            configs.extend(sorted(path.rglob("*.json")))
            sources.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            sources.append(path)
        else:
            configs.append(path)
    return configs, sources


def _builtin_configs(
    name: str, parser: argparse.ArgumentParser
) -> List[Tuple[str, str, dict]]:
    """Resolve --builtin NAME into (subject, slug, config dict) jobs."""
    from repro import configs as builders

    available = sorted(
        attr
        for attr in dir(builders)
        if attr.endswith("_config") and callable(getattr(builders, attr))
    )
    wanted = available if name == "all" else [name]
    jobs = []
    for builder_name in wanted:
        builder = getattr(builders, builder_name, None)
        if builder is None or not callable(builder):
            parser.error(
                f"unknown builtin config {name!r}; available: "
                f"{', '.join(available + ['all'])}"
            )
        jobs.append(
            (f"builtin:{builder_name}", builder_name, builder())
        )
    return jobs


def _partition_summary(manifest: dict) -> str:
    """One text line summarizing a planned/verified manifest."""
    lookahead = manifest.get("lookahead", {}).get("global")
    return (
        f"partition: k={manifest.get('k')}, "
        f"{manifest.get('num_components')} components, "
        f"{len(manifest.get('cut_channels', []))} cut channel(s), "
        f"lookahead {lookahead if lookahead is not None else 'unbounded'}"
    )


def _write_manifests(
    destination: str, produced: List[Tuple[str, dict]]
) -> List[str]:
    """Write manifests to a file (single) or directory (any count)."""
    from repro.partition import write_manifest

    out = pathlib.Path(destination)
    written: List[str] = []
    as_directory = (
        out.is_dir()
        or destination.endswith(("/", "\\"))
        or len(produced) > 1
    )
    if not as_directory:
        slug, manifest = produced[0]
        out.parent.mkdir(parents=True, exist_ok=True)
        write_manifest(str(out), manifest)
        written.append(str(out))
        return written
    out.mkdir(parents=True, exist_ok=True)
    for slug, manifest in produced:
        path = out / f"{slug}.partition.json"
        write_manifest(str(path), manifest)
        written.append(str(path))
    return written


def sslint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sslint",
        description="Static analysis of configs, network wiring, and "
        "parallel-sweep determinism",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="JSON settings files, Python source files, directories "
        "(recursed), and path=type=value overrides applied to every "
        "config target",
    )
    parser.add_argument(
        "--builtin",
        metavar="NAME",
        default=None,
        help="lint a built-in benchmark config from repro.configs "
        "(or 'all')",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (json is the CI format; sarif is the "
        "SARIF 2.1.0 interchange format for code-review tooling)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings recorded in this baseline file, so the "
        "exit status gates on new findings only",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record every current finding's fingerprint to FILE and "
        "exit 0 (adopt-now, fix-later workflow)",
    )
    parser.add_argument(
        "--no-graph", action="store_true",
        help="skip the graph layer (no network construction)",
    )
    parser.add_argument(
        "--import", dest="imports", action="append", metavar="MODULE",
        default=[],
        help="import a module first (registers user models; repeatable)",
    )
    parser.add_argument(
        "--max-pairs", type=int, default=512,
        help="terminal pairs sampled by the dependency trace",
    )
    parser.add_argument(
        "--layer", action="append", choices=ALL_LAYERS, default=None,
        help="restrict linting (and --list-rules) to this layer; "
        "repeatable",
    )
    parser.add_argument(
        "--partition", type=int, metavar="K", default=None,
        help="plan a deterministic K-way partition of each config "
        "target and verify it with the P-rules "
        "(docs/PARTITIONING.md)",
    )
    parser.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="verify this partition manifest against the single config "
        "target instead of planning one",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write the planned manifest(s): a file for one config "
        "target, a directory for several",
    )
    parser.add_argument(
        "--partition-tolerance", type=float, metavar="T", default=None,
        help="shard weight balance tolerance for planning and P004 "
        "(default 1.5)",
    )
    parser.add_argument(
        "--lookahead-threshold", type=int, metavar="TICKS", default=1,
        help="minimum acceptable shard lookahead for P003 (default 1)",
    )
    parser.add_argument(
        "--profile", metavar="PSTATS", default=None,
        help="correlate perf-layer findings with this cProfile dump "
        "(scripts/profile_sim.py or supersim --pstats-out write one); "
        "statically-hot-but-measured-cold findings demote to info",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        catalog = rule_catalog()
        if args.layer:
            catalog = {
                rule_id: info
                for rule_id, info in catalog.items()
                if info["layer"] in args.layer
            }
        if args.format == "json":
            json.dump(catalog, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            for rule_id, info in sorted(catalog.items()):
                print(f"{rule_id}  [{info['layer']}]  {info['description']}")
        return 0

    if args.profile is not None and not pathlib.Path(args.profile).exists():
        parser.error(f"no such profile dump: {args.profile}")

    partition_mode = args.partition is not None or args.manifest is not None
    if args.partition is not None and args.manifest is not None:
        parser.error("--partition and --manifest are mutually exclusive")
    if args.manifest_out is not None and args.partition is None:
        parser.error("--manifest-out requires --partition")

    for module in args.imports:
        sys.path.insert(0, ".")
        try:
            importlib.import_module(module)
        except ImportError as exc:
            parser.error(f"cannot import {module!r}: {exc}")

    paths, overrides = _split_args(args.targets)
    if not paths and args.builtin is None:
        parser.error("nothing to lint: pass files/directories or --builtin")

    config_files, source_files = _collect_targets(paths, parser)
    graph = not args.no_graph
    reports: List[LintReport] = []
    manifests: Dict[str, dict] = {}  # subject -> planned/verified manifest
    produced: List[Tuple[str, dict]] = []  # (slug, manifest) for writing

    # (subject, slug, settings-or-None, load-error finding) config jobs.
    jobs: List[Tuple[str, str, Optional[Settings], Optional[Finding]]] = []
    for config_file in config_files:
        subject = str(config_file)
        try:
            settings = Settings.from_file(config_file, overrides=overrides)
            jobs.append((subject, config_file.stem, settings, None))
        except (SettingsError, json.JSONDecodeError, OSError) as exc:
            jobs.append((subject, config_file.stem, None, Finding(
                "C002",
                Severity.ERROR,
                f"configuration does not resolve: {exc}",
            )))
    if args.builtin is not None:
        for subject, slug, config in _builtin_configs(args.builtin, parser):
            try:
                settings = Settings.from_dict(config, overrides=overrides)
                jobs.append((subject, slug, settings, None))
            except SettingsError as exc:
                jobs.append((subject, slug, None, Finding(
                    "C002",
                    Severity.ERROR,
                    f"configuration does not resolve: {exc}",
                )))

    manifest_doc: Optional[dict] = None
    if args.manifest is not None:
        from repro.partition import ManifestError, load_manifest

        if len(jobs) != 1:
            parser.error(
                "--manifest verifies against exactly one config target "
                f"(got {len(jobs)})"
            )
        try:
            manifest_doc = load_manifest(args.manifest)
        except (OSError, ValueError, json.JSONDecodeError,
                ManifestError) as exc:
            parser.error(f"cannot load manifest: {exc}")

    for subject, slug, settings, load_error in jobs:
        if load_error is not None:
            report = LintReport(subject=subject)
            report.add(load_error)
            reports.append(report)
            continue
        if partition_mode:
            report, manifest = lint_partition(
                settings,
                k=args.partition,
                manifest=manifest_doc,
                tolerance=args.partition_tolerance,
                lookahead_threshold=args.lookahead_threshold,
                max_pairs=args.max_pairs,
                subject=subject,
            )
            if manifest is not None:
                manifests[subject] = manifest
                if args.partition is not None:
                    produced.append((slug, manifest))
            reports.append(report)
        else:
            reports.append(
                lint_settings(
                    settings,
                    graph=graph,
                    max_pairs=args.max_pairs,
                    subject=subject,
                    layers=args.layer,
                    profile_path=args.profile,
                )
            )

    if source_files and (
        args.layer is None
        or any(layer in SOURCE_LAYERS + (SHARD_LAYER, PERF_LAYER)
               for layer in args.layer)
    ):
        reports.append(
            lint_sources(
                [str(path) for path in source_files],
                subject="sources",
                layers=args.layer,
                profile_path=args.profile,
            )
        )

    if args.manifest_out is not None and produced:
        for path in _write_manifests(args.manifest_out, produced):
            print(f"wrote manifest to {path}", file=sys.stderr)

    if args.write_baseline is not None:
        from repro.lint.sarif import write_baseline

        count = write_baseline(args.write_baseline, reports)
        print(
            f"recorded {count} fingerprint(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        from repro.lint.sarif import apply_baseline, load_baseline

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        reports = apply_baseline(reports, baseline)

    if args.format == "json":
        payload = {
            "reports": [json.loads(report.to_json()) for report in reports],
            "errors": sum(len(report.errors) for report in reports),
        }
        if partition_mode:
            payload["manifests"] = manifests
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif args.format == "sarif":
        from repro.lint.sarif import to_sarif

        json.dump(to_sarif(reports), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for report in reports:
            print(report.render_text())
            if report.subject in manifests:
                print(_partition_summary(manifests[report.subject]))
    return 1 if any(report.has_errors() for report in reports) else 0


if __name__ == "__main__":
    sys.exit(sslint_main())

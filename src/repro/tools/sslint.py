"""sslint: static analysis of an experiment before it runs.

Lints JSON settings files (config + graph layers), Python source files
(determinism layer), and the built-in benchmark configurations::

    sslint experiment.json network.num_vcs=uint=4
    sslint examples/ --format json
    sslint examples/ --format sarif > lint.sarif
    sslint --builtin all
    sslint experiment.json --import my_models   # user models (§III-D)
    sslint src/ --write-baseline lint-baseline.json
    sslint src/ --baseline lint-baseline.json   # new findings only
    sslint --list-rules

Exit status: 0 when no error-severity finding was produced, 1
otherwise (warnings and infos never fail the run), 2 on usage errors.
With ``--baseline``, findings recorded in the baseline are suppressed
before the exit status is computed, so CI gates on new findings only.
See docs/LINTING.md for the rule catalog.
"""

from __future__ import annotations

import argparse
import importlib
import json
import pathlib
import sys
from typing import List, Optional, Tuple

from repro.config.settings import Settings, SettingsError
from repro.lint import (
    Finding,
    LintReport,
    Severity,
    lint_config_dict,
    lint_settings,
    lint_sources,
    rule_catalog,
)


def _split_args(items: List[str]) -> Tuple[List[str], List[str]]:
    """Separate file/directory paths from path=type=value overrides."""
    paths, overrides = [], []
    for item in items:
        (overrides if "=" in item else paths).append(item)
    return paths, overrides


def _collect_targets(
    paths: List[str], parser: argparse.ArgumentParser
) -> Tuple[List[pathlib.Path], List[pathlib.Path]]:
    """Expand paths into (config files, python source files)."""
    configs: List[pathlib.Path] = []
    sources: List[pathlib.Path] = []
    for text in paths:
        path = pathlib.Path(text)
        if not path.exists():
            parser.error(f"no such file or directory: {text}")
        if path.is_dir():
            configs.extend(sorted(path.rglob("*.json")))
            sources.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            sources.append(path)
        else:
            configs.append(path)
    return configs, sources


def _builtin_reports(
    name: str,
    graph: bool,
    max_pairs: int,
    parser: argparse.ArgumentParser,
) -> List[LintReport]:
    from repro import configs as builders

    available = sorted(
        attr
        for attr in dir(builders)
        if attr.endswith("_config") and callable(getattr(builders, attr))
    )
    wanted = available if name == "all" else [name]
    reports = []
    for builder_name in wanted:
        builder = getattr(builders, builder_name, None)
        if builder is None or not callable(builder):
            parser.error(
                f"unknown builtin config {name!r}; available: "
                f"{', '.join(available + ['all'])}"
            )
        reports.append(
            lint_config_dict(
                builder(),
                graph=graph,
                max_pairs=max_pairs,
                subject=f"builtin:{builder_name}",
            )
        )
    return reports


def sslint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sslint",
        description="Static analysis of configs, network wiring, and "
        "parallel-sweep determinism",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="JSON settings files, Python source files, directories "
        "(recursed), and path=type=value overrides applied to every "
        "config target",
    )
    parser.add_argument(
        "--builtin",
        metavar="NAME",
        default=None,
        help="lint a built-in benchmark config from repro.configs "
        "(or 'all')",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (json is the CI format; sarif is the "
        "SARIF 2.1.0 interchange format for code-review tooling)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings recorded in this baseline file, so the "
        "exit status gates on new findings only",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record every current finding's fingerprint to FILE and "
        "exit 0 (adopt-now, fix-later workflow)",
    )
    parser.add_argument(
        "--no-graph", action="store_true",
        help="skip the graph layer (no network construction)",
    )
    parser.add_argument(
        "--import", dest="imports", action="append", metavar="MODULE",
        default=[],
        help="import a module first (registers user models; repeatable)",
    )
    parser.add_argument(
        "--max-pairs", type=int, default=512,
        help="terminal pairs sampled by the dependency trace",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        catalog = rule_catalog()
        if args.format == "json":
            json.dump(catalog, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            for rule_id, info in sorted(catalog.items()):
                print(f"{rule_id}  [{info['layer']}]  {info['description']}")
        return 0

    for module in args.imports:
        sys.path.insert(0, ".")
        try:
            importlib.import_module(module)
        except ImportError as exc:
            parser.error(f"cannot import {module!r}: {exc}")

    paths, overrides = _split_args(args.targets)
    if not paths and args.builtin is None:
        parser.error("nothing to lint: pass files/directories or --builtin")

    config_files, source_files = _collect_targets(paths, parser)
    graph = not args.no_graph
    reports: List[LintReport] = []

    for config_file in config_files:
        subject = str(config_file)
        try:
            settings = Settings.from_file(config_file, overrides=overrides)
        except (SettingsError, json.JSONDecodeError, OSError) as exc:
            report = LintReport(subject=subject)
            report.add(
                Finding(
                    "C002",
                    Severity.ERROR,
                    f"configuration does not resolve: {exc}",
                )
            )
            reports.append(report)
            continue
        reports.append(
            lint_settings(
                settings,
                graph=graph,
                max_pairs=args.max_pairs,
                subject=subject,
            )
        )

    if source_files:
        reports.append(
            lint_sources(
                [str(path) for path in source_files], subject="sources"
            )
        )

    if args.builtin is not None:
        reports.extend(
            _builtin_reports(args.builtin, graph, args.max_pairs, parser)
        )

    if args.write_baseline is not None:
        from repro.lint.sarif import write_baseline

        count = write_baseline(args.write_baseline, reports)
        print(
            f"recorded {count} fingerprint(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        from repro.lint.sarif import apply_baseline, load_baseline

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        reports = apply_baseline(reports, baseline)

    if args.format == "json":
        payload = {
            "reports": [json.loads(report.to_json()) for report in reports],
            "errors": sum(len(report.errors) for report in reports),
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif args.format == "sarif":
        from repro.lint.sarif import to_sarif

        json.dump(to_sarif(reports), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for report in reports:
            print(report.render_text())
    return 1 if any(report.has_errors() for report in reports) else 0


if __name__ == "__main__":
    sys.exit(sslint_main())

"""Case-study configurations (paper Table I).

Builders for the three simulation case studies of §VI, parameterized by
scale.  ``full_scale=True`` reproduces Table I exactly (4096-terminal
folded Clos, 1024-terminal flattened butterfly, 4096-terminal 4-D
torus); the default scaled-down instances preserve the governing ratios
(channel latency : core latency : queue depths : packet length) while
shrinking the machine so pure-Python simulation stays interactive.

One tick is one nanosecond throughout, matching the paper's use of real
time units.
"""

from __future__ import annotations

import copy
from typing import List, Optional


def latent_congestion_config(
    congestion_latency: int = 1,
    output_queue_depth: Optional[int] = 64,
    injection_rate: float = 0.5,
    full_scale: bool = False,
    half_radix: Optional[int] = None,
    seed: int = 12345,
    warmup: int = 2000,
    window: int = 6000,
) -> dict:
    """Case study A (§VI-A, Fig. 9): latent congestion detection.

    Table I column 1: 3-level folded Clos, adaptive uprouting, OQ
    router, 1 VC, 50 ns channels (10 m cables), 50 ns queue-to-queue
    core latency, 150-flit input buffers, infinite or 64-flit output
    queues, single-flit messages, uniform-random-to-root traffic.

    ``congestion_latency`` is the swept sensed-congestion propagation
    delay (1..32 ns in the paper); ``output_queue_depth=None`` selects
    the infinite-queue variant of Fig. 9a.
    """
    if half_radix is None:
        half_radix = 16 if full_scale else 4
    return {
        "simulator": {"seed": seed},
        "network": {
            "topology": "folded_clos",
            "half_radix": half_radix,
            "num_levels": 3,
            "num_vcs": 1,
            "channel_latency": 50,
            "terminal_channel_latency": 50,
            "channel_period": 1,
            "router": {
                "architecture": "output_queued",
                "input_queue_depth": 150,
                "core_latency": 50,
                "output_queue_depth": output_queue_depth,
                "congestion_sensor": {
                    "type": "credit",
                    "latency": congestion_latency,
                    "granularity": "port",
                    "source": "output",
                },
            },
            # The ejection buffer must cover the terminal channel's
            # bandwidth-delay product (2 * 50 ns round trip at one flit
            # per ns), or ejection caps throughput below line rate.
            "interface": {"max_packet_size": 1, "ejection_buffer_size": 256},
            "routing": {"algorithm": "clos_adaptive"},
        },
        "workload": {
            "applications": [
                {
                    "type": "blast",
                    "injection_rate": injection_rate,
                    "warmup_duration": warmup,
                    "generate_duration": window,
                    "traffic": {"type": "uniform_to_root"},
                    "message_size": {"type": "constant", "size": 1},
                }
            ]
        },
    }


def credit_accounting_config(
    granularity: str = "port",
    source: str = "downstream",
    traffic: str = "uniform_random",
    injection_rate: float = 0.5,
    full_scale: bool = False,
    seed: int = 12345,
    warmup: int = 2000,
    window: int = 6000,
) -> dict:
    """Case study B (§VI-B, Fig. 10): congestion credit accounting.

    Table I column 2: 1-D flattened butterfly (32 routers, 1024
    terminals, radix 63), UGAL, IOQ router with 2x frequency speedup,
    2 VCs, 128-flit input buffers, 256-flit output queues, 50 ns
    channels, 50 ns crossbar, single-flit messages, uniform random and
    bit complement traffic.

    The six accounting styles are the cross product of
    ``granularity`` in {"vc", "port"} and ``source`` in
    {"output", "downstream", "both"}.
    """
    if full_scale:
        widths, concentration = [32], 32
        input_depth, output_depth = 128, 256
    else:
        widths, concentration = [8], 4
        input_depth, output_depth = 64, 128
    return {
        "simulator": {"seed": seed},
        "network": {
            "topology": "hyperx",
            "dimension_widths": widths,
            "concentration": concentration,
            "num_vcs": 2,
            "channel_latency": 50,
            "terminal_channel_latency": 10,
            # 2x frequency speedup: the 1-tick router core runs twice
            # per 2-tick channel cycle (§III-B).
            "channel_period": 2,
            "router": {
                "architecture": "input_output_queued",
                "input_queue_depth": input_depth,
                "output_queue_depth": output_depth,
                "core_latency": 50,
                "congestion_sensor": {
                    "type": "credit",
                    "latency": 8,
                    "granularity": granularity,
                    "source": source,
                },
                "crossbar_scheduler": {"flow_control": "flit_buffer"},
            },
            "interface": {"max_packet_size": 1},
            "routing": {"algorithm": "hyperx_ugal", "ugal_bias": 0.0},
        },
        "workload": {
            "applications": [
                {
                    "type": "blast",
                    "injection_rate": injection_rate,
                    "warmup_duration": warmup,
                    "generate_duration": window,
                    "traffic": {"type": traffic},
                    "message_size": {"type": "constant", "size": 1},
                }
            ]
        },
    }


def flow_control_config(
    flow_control: str = "flit_buffer",
    num_vcs: int = 2,
    message_size: int = 1,
    injection_rate: float = 0.5,
    full_scale: bool = False,
    seed: int = 12345,
    warmup: int = 2000,
    window: int = 6000,
) -> dict:
    """Case study C (§VI-C, Figs. 11-12): flow control techniques.

    Table I column 3: 4-D torus 8x8x8x8 (4096 terminals), dimension
    order routing, IQ router, 5 ns channels (1 m cables), 25 ns main
    crossbar latency, {2, 4, 8} VCs, 128-flit input buffers, message
    sizes {1, 2, 4, 8, 16, 32} flits, uniform random traffic.

    ``flow_control`` is one of ``flit_buffer``, ``packet_buffer``,
    ``winner_take_all``.
    """
    widths = [8, 8, 8, 8] if full_scale else [4, 4, 4]
    return {
        "simulator": {"seed": seed},
        "network": {
            "topology": "torus",
            "dimension_widths": widths,
            "concentration": 1,
            "num_vcs": num_vcs,
            "channel_latency": 5,
            "terminal_channel_latency": 5,
            "channel_period": 1,
            "router": {
                "architecture": "input_queued",
                "input_queue_depth": 128,
                "core_latency": 25,
                "crossbar_scheduler": {
                    "flow_control": flow_control,
                    "arbiter": {"type": "round_robin"},
                },
            },
            "interface": {"max_packet_size": 32},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": {
            "applications": [
                {
                    "type": "blast",
                    "injection_rate": injection_rate,
                    "warmup_duration": warmup,
                    "generate_duration": window,
                    "traffic": {"type": "uniform_random"},
                    "message_size": {"type": "constant", "size": message_size},
                }
            ]
        },
    }


def table1() -> dict:
    """The three full-scale Table I configurations, by case study name."""
    return {
        "latent_congestion_detection": latent_congestion_config(full_scale=True),
        "congestion_credit_accounting": credit_accounting_config(full_scale=True),
        "flow_control_techniques": flow_control_config(
            full_scale=True, num_vcs=2, message_size=1
        ),
    }


def blast_pulse_config(
    blast_rate: float = 0.2,
    pulse_rate: float = 0.6,
    pulse_delay: int = 1500,
    pulse_duration: int = 1000,
    seed: int = 12345,
) -> dict:
    """The Fig. 5 transient workload: Blast disturbed by Pulse, on a
    small 2-D torus suited for quick transient analyses."""
    return {
        "simulator": {"seed": seed},
        "network": {
            "topology": "torus",
            "dimension_widths": [4, 4],
            "concentration": 1,
            "num_vcs": 2,
            "channel_latency": 5,
            "terminal_channel_latency": 5,
            "channel_period": 1,
            "router": {
                "architecture": "input_queued",
                "input_queue_depth": 32,
                "core_latency": 5,
            },
            "interface": {"max_packet_size": 8},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": {
            "applications": [
                {
                    "type": "blast",
                    "injection_rate": blast_rate,
                    "warmup_duration": 1000,
                    "generate_duration": 6000,
                    "traffic": {"type": "uniform_random"},
                    "message_size": {"type": "constant", "size": 4},
                },
                {
                    "type": "pulse",
                    "injection_rate": pulse_rate,
                    "delay": pulse_delay,
                    "duration": pulse_duration,
                    "traffic": {"type": "uniform_random"},
                    "message_size": {"type": "constant", "size": 4},
                },
            ]
        },
    }


def with_overrides(config: dict, **top_level) -> dict:
    """Deep-copy ``config`` and update top-level keys (tests helper)."""
    result = copy.deepcopy(config)
    result.update(top_level)
    return result

"""Ablation benches for design choices DESIGN.md calls out.

Not paper figures -- these quantify the modeling decisions the case
studies rest on:

* **Sensor propagation latency vs a zero-latency oracle** -- how much
  of case study A's effect comes purely from the sensing delay.
* **VC-scheduler arbitration policy** -- round robin vs age-based at
  the VC allocation stage (the parking-lot repair, §IV-B).
* **Injection process** -- Bernoulli vs periodic arrivals: burstiness
  inflates the latency tail at equal mean load.
"""

from __future__ import annotations

import pytest

from repro.configs import latent_congestion_config
from tests.conftest import run_config, small_torus_config

from .conftest import run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]


@pytest.mark.benchmark(group="ablation")
def test_ablation_sensing_delay_is_the_cause(benchmark):
    """Case study A with a 1-tick sensor vs a long-latency sensor,
    everything else identical: the throughput gap is attributable to
    information staleness alone."""

    def sweep():
        accepted = {}
        for sense in (1, 32):
            config = latent_congestion_config(
                congestion_latency=sense, output_queue_depth=64,
                injection_rate=0.85, half_radix=4, warmup=1500, window=3000)
            config["network"]["num_levels"] = 2
            accepted[sense] = run_sim(config, max_time=25_000).accepted_load()
        return accepted

    accepted = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nablation(sensing delay): fresh={accepted[1]:.3f} "
          f"stale={accepted[32]:.3f}")
    assert accepted[1] > accepted[32]


@pytest.mark.benchmark(group="ablation")
def test_ablation_vc_scheduler_policy(benchmark):
    """Parking-lot bandwidth shares under round-robin vs age-based VC
    allocation."""

    def fairness(arbiter_type):
        config = {
            "simulator": {"seed": 9},
            "network": {
                "topology": "parking_lot", "length": 5, "concentration": 1,
                "num_vcs": 1, "channel_latency": 1,
                "router": {
                    "architecture": "input_queued", "input_queue_depth": 4,
                    "core_latency": 1,
                    "crossbar_scheduler": {"arbiter": {"type": arbiter_type}},
                    "vc_scheduler": {"arbiter": {"type": arbiter_type}},
                },
                "interface": {"max_packet_size": 1},
                "routing": {"algorithm": "chain"},
            },
            "workload": {"applications": [{
                "type": "blast", "injection_rate": 0.3,
                "warmup_duration": 1000, "generate_duration": 4000,
                "traffic": {"type": "all_to_one"},
                "message_size": {"type": "constant", "size": 1},
            }]},
        }
        _sim, results = run_config(config, max_time=80_000)
        stop = results.workload.stop_tick
        counts = {}
        for record in results.records():
            if record.delivered_tick <= stop:
                counts[record.source] = counts.get(record.source, 0) + 1
        counts.pop(0, None)
        values = sorted(counts.values())
        return values[0] / values[-1]

    def both():
        return {"round_robin": fairness("round_robin"),
                "age_based": fairness("age_based")}

    ratios = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nablation(vc arbiter): min/max bandwidth share "
          f"round_robin={ratios['round_robin']:.2f} "
          f"age_based={ratios['age_based']:.2f}")
    assert ratios["age_based"] > ratios["round_robin"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_injection_process(benchmark):
    """Bernoulli vs periodic injection at the same mean rate: the
    random process has a heavier latency tail."""

    def tail(process_type):
        config = small_torus_config()
        config["workload"]["applications"][0]["injection_rate"] = 0.55
        config["workload"]["applications"][0]["generate_duration"] = 3000
        config["workload"]["applications"][0]["injection"] = {
            "type": process_type}
        _sim, results = run_config(config)
        return results.latency().percentile(99)

    def both():
        return {"bernoulli": tail("bernoulli"), "periodic": tail("periodic")}

    tails = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nablation(injection): p99 bernoulli={tails['bernoulli']:.0f} "
          f"periodic={tails['periodic']:.0f}")
    assert tails["bernoulli"] > tails["periodic"]

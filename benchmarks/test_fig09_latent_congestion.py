"""Fig. 9 -- latent congestion detection (case study A, §VI-A).

Adaptive uprouting on a folded Clos with output-queued routers; the
congestion sensor's propagation latency is swept.  Expected shape:

* Fig. 9a (infinite output queues): throughput unaffected, message
  latency grows with the sensing latency.
* Fig. 9b (finite 64-flit output queues): throughput collapses as the
  sensing latency grows past a few cycles.

The paper's 4096-terminal system loses ~65% throughput at 4 ns; our
scaled instance (smaller radix -- fewer routing engines herding per
router) shows the same ordering with a milder knee, exactly as the
paper itself reports for its smaller 512-terminal configuration.
"""

from __future__ import annotations

import pytest

from repro.configs import latent_congestion_config
from repro.tools.ssplot import PlotData

from .conftest import FULL_SCALE, emit, run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]

INJECTION_RATE = 0.85
SENSE_LATENCIES = (1, 8, 32)


def _config(sense_latency, depth):
    if FULL_SCALE:
        return latent_congestion_config(
            congestion_latency=sense_latency,
            output_queue_depth=depth,
            injection_rate=INJECTION_RATE,
            full_scale=True,
        )
    config = latent_congestion_config(
        congestion_latency=sense_latency,
        output_queue_depth=depth,
        injection_rate=INJECTION_RATE,
        half_radix=4,
        warmup=1500,
        window=3000,
    )
    config["network"]["num_levels"] = 2
    return config


def _sweep(depth):
    rows = []
    for sense in SENSE_LATENCIES:
        results = run_sim(_config(sense, depth), max_time=25_000)
        latency = results.latency()
        rows.append({
            "sense_latency": sense,
            "accepted": results.accepted_load(),
            "mean_latency": latency.mean(),
            "p99_latency": latency.percentile(99),
        })
    return rows


@pytest.mark.benchmark(group="fig09")
def test_fig09a_infinite_output_queues(benchmark):
    rows = benchmark.pedantic(_sweep, args=(None,), rounds=1, iterations=1)
    plot = PlotData("Fig 9a: infinite output queues",
                    "congestion sense latency (ns)", "value")
    plot.add("accepted", [r["sense_latency"] for r in rows],
             [r["accepted"] for r in rows])
    plot.add("mean_latency", [r["sense_latency"] for r in rows],
             [r["mean_latency"] for r in rows])
    emit(plot, "fig09a")
    print("\nFig 9a (infinite output queues):")
    for row in rows:
        print(f"  sense={row['sense_latency']:3d}ns  "
              f"accepted={row['accepted']:.3f}  "
              f"mean latency={row['mean_latency']:.1f}")
    # Throughput is NOT affected (infinite queues sink everything)...
    accepted = [r["accepted"] for r in rows]
    assert max(accepted) - min(accepted) < 0.05
    # ...but latency rises with the sensing latency.
    latencies = [r["mean_latency"] for r in rows]
    assert latencies[-1] > latencies[0] * 1.1


@pytest.mark.benchmark(group="fig09")
def test_fig09b_finite_output_queues(benchmark):
    rows = benchmark.pedantic(_sweep, args=(64,), rounds=1, iterations=1)
    plot = PlotData("Fig 9b: 64-flit output queues",
                    "congestion sense latency (ns)", "value")
    plot.add("accepted", [r["sense_latency"] for r in rows],
             [r["accepted"] for r in rows])
    plot.add("mean_latency", [r["sense_latency"] for r in rows],
             [r["mean_latency"] for r in rows])
    emit(plot, "fig09b")
    print("\nFig 9b (64-flit output queues):")
    for row in rows:
        print(f"  sense={row['sense_latency']:3d}ns  "
              f"accepted={row['accepted']:.3f}  "
              f"mean latency={row['mean_latency']:.1f}")
    # Throughput collapses as the sensing latency grows.
    accepted = [r["accepted"] for r in rows]
    assert accepted[0] > accepted[-1] * 1.1, (
        "finite-queue throughput should degrade with sensing latency"
    )


@pytest.mark.benchmark(group="fig09")
def test_fig09_smaller_system_is_milder(benchmark):
    """§VI-A's text: smaller systems yield less severe penalties."""

    def both():
        small = _sweep_one(half_radix=2, sense=32)
        large = _sweep_one(half_radix=4, sense=32)
        fresh_small = _sweep_one(half_radix=2, sense=1)
        fresh_large = _sweep_one(half_radix=4, sense=1)
        return {
            "small_drop": 1 - small / max(fresh_small, 1e-9),
            "large_drop": 1 - large / max(fresh_large, 1e-9),
        }

    def _sweep_one(half_radix, sense):
        config = latent_congestion_config(
            congestion_latency=sense,
            output_queue_depth=64,
            injection_rate=INJECTION_RATE,
            half_radix=half_radix,
            warmup=1500,
            window=3000,
        )
        config["network"]["num_levels"] = 2
        return run_sim(config, max_time=25_000).accepted_load()

    drops = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nThroughput drop at sense=32ns: "
          f"half_radix=2: {drops['small_drop']:.1%}, "
          f"half_radix=4: {drops['large_drop']:.1%}")
    assert drops["large_drop"] >= drops["small_drop"] - 0.05

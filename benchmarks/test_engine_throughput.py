"""Simulator engine microbenchmarks (not a paper figure).

Raw event throughput of the DES core and end-to-end simulation
throughput (events/second) for a representative network.  Useful for
tracking the performance impact of engine changes -- the scaled
experiment sizes in this repository assume the engine sustains roughly
10^5 events per second.

Every measurement is appended to ``BENCH_engine.json`` (repo root) so
the perf trajectory across PRs stays visible; ``scripts/bench_report.py``
runs the same workloads standalone.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Settings, Simulation
from repro.core.event import Event
from repro.core.simulator import Simulator
from repro.tools.sssweep import Sweep
from tests.conftest import small_torus_config

from .conftest import record_engine_bench

pytestmark = pytest.mark.perf


def _self_rescheduling_run(simulator: Simulator, target: int = 200_000) -> int:
    """The canonical engine workload: 8 chains of self-rescheduling events."""
    count = [0]

    def handler(event):
        count[0] += 1
        if count[0] < target:
            simulator.call_at(simulator.tick + 1, handler)

    for i in range(8):
        simulator.call_at(i + 1, handler)
    simulator.run()
    return count[0]


@pytest.mark.benchmark(group="engine")
def test_event_queue_throughput(benchmark):
    """Schedule-and-execute cost of 200k self-rescheduling events."""

    def run_engine():
        return _self_rescheduling_run(Simulator())

    executed = benchmark.pedantic(run_engine, rounds=1, iterations=1)
    # Each of the 8 seed chains overshoots the shared counter by at
    # most one event.
    assert 200_000 <= executed <= 200_008
    seconds = benchmark.stats.stats.mean
    record_engine_bench(
        "event_queue_throughput",
        {
            "events": executed,
            "seconds": seconds,
            "events_per_sec": executed / seconds,
            "freelist": True,
        },
    )


@pytest.mark.benchmark(group="engine")
def test_event_queue_throughput_no_freelist(benchmark):
    """The same workload with the event freelist disabled.

    ``event_pool_size=0`` allocates a fresh Event per scheduling and
    routes execution through the general loop -- the before/after
    comparison for the freelist + specialized-loop optimizations.
    """

    def run_engine():
        return _self_rescheduling_run(Simulator(event_pool_size=0))

    executed = benchmark.pedantic(run_engine, rounds=1, iterations=1)
    assert 200_000 <= executed <= 200_008
    seconds = benchmark.stats.stats.mean
    record_engine_bench(
        "event_queue_throughput_no_freelist",
        {
            "events": executed,
            "seconds": seconds,
            "events_per_sec": executed / seconds,
            "freelist": False,
        },
    )


@pytest.mark.benchmark(group="engine")
def test_simulation_event_rate(benchmark):
    """Events per wall-second for a 4x4 torus at 30% load."""

    def run_sim():
        config = small_torus_config()
        config["workload"]["applications"][0]["injection_rate"] = 0.3
        simulation = Simulation(Settings.from_dict(config))
        simulation.run(max_time=100_000)
        return simulation.simulator.executed_events

    events = benchmark.pedantic(run_sim, rounds=1, iterations=1)
    assert events > 50_000
    stats = benchmark.stats.stats
    rate = events / stats.mean
    record_engine_bench(
        "simulation_event_rate",
        {"events": events, "seconds": stats.mean, "events_per_sec": rate},
    )
    print(f"\nengine rate: {rate / 1000:.0f}k events/s "
          f"({events} events in {stats.mean:.2f}s)")


def _scaling_sweep() -> Sweep:
    sweep = Sweep(small_torus_config(), name="scaling", max_time=2_000)
    sweep.add_variable(
        "InjectionRate", "IR", [0.05, 0.1, 0.15, 0.2],
        lambda rate: f"workload.applications[0].injection_rate=float={rate}")
    sweep.add_variable(
        "Seed", "S", [1, 2, 3, 4],
        lambda seed: f"simulator.seed=uint={seed}")
    return sweep


@pytest.mark.slow
@pytest.mark.benchmark(group="engine")
def test_sweep_worker_scaling(benchmark):
    """16-job sweep at workers=1 vs workers=4: identical rows, wall time.

    Row identity must hold on any machine.  The < 0.5x wall-time target
    only makes sense with >= 4 real cores, so the speedup assertion is
    gated on the core count; both times are recorded either way.
    """
    import time

    workers = min(4, os.cpu_count() or 1)

    def run_scaling():
        serial = _scaling_sweep()
        t0 = time.perf_counter()
        serial.run(workers=1)
        serial_s = time.perf_counter() - t0
        parallel = _scaling_sweep()
        t0 = time.perf_counter()
        parallel.run(workers=workers)
        parallel_s = time.perf_counter() - t0
        return serial, parallel, serial_s, parallel_s

    serial, parallel, serial_s, parallel_s = benchmark.pedantic(
        run_scaling, rounds=1, iterations=1
    )
    rows_serial = json.dumps(serial.to_rows(), sort_keys=True)
    rows_parallel = json.dumps(parallel.to_rows(), sort_keys=True)
    assert rows_serial == rows_parallel
    assert len(serial.jobs) == 16
    record_engine_bench(
        "sweep_worker_scaling",
        {
            "jobs": len(serial.jobs),
            "workers": workers,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else None,
        },
    )
    if (os.cpu_count() or 1) >= 4:
        assert parallel_s < 0.5 * serial_s, (
            f"workers={workers} took {parallel_s:.2f}s vs "
            f"serial {serial_s:.2f}s"
        )

"""Simulator engine microbenchmarks (not a paper figure).

Raw event throughput of the DES core and end-to-end simulation
throughput (events/second) for a representative network.  Useful for
tracking the performance impact of engine changes -- the scaled
experiment sizes in this repository assume the engine sustains roughly
10^5 events per second.
"""

from __future__ import annotations

import pytest

from repro import Settings, Simulation
from repro.core.event import Event
from repro.core.simulator import Simulator
from tests.conftest import small_torus_config


@pytest.mark.benchmark(group="engine")
def test_event_queue_throughput(benchmark):
    """Schedule-and-execute cost of one million self-rescheduling events."""

    def run_engine():
        simulator = Simulator()
        count = [0]

        def handler(event):
            count[0] += 1
            if count[0] < 200_000:
                simulator.call_at(simulator.tick + 1, handler)

        for i in range(8):
            simulator.call_at(i + 1, handler)
        simulator.run()
        return count[0]

    executed = benchmark.pedantic(run_engine, rounds=1, iterations=1)
    # Each of the 8 seed chains overshoots the shared counter by at
    # most one event.
    assert 200_000 <= executed <= 200_008


@pytest.mark.benchmark(group="engine")
def test_simulation_event_rate(benchmark):
    """Events per wall-second for a 4x4 torus at 30% load."""

    def run_sim():
        config = small_torus_config()
        config["workload"]["applications"][0]["injection_rate"] = 0.3
        simulation = Simulation(Settings.from_dict(config))
        simulation.run(max_time=100_000)
        return simulation.simulator.executed_events

    events = benchmark.pedantic(run_sim, rounds=1, iterations=1)
    assert events > 50_000
    stats = benchmark.stats.stats
    rate = events / stats.mean
    print(f"\nengine rate: {rate / 1000:.0f}k events/s "
          f"({events} events in {stats.mean:.2f}s)")

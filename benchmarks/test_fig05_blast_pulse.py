"""Fig. 5 -- Blast mean latency disrupted by the Pulse application.

The canonical multi-application transient analysis: Blast supplies
steady sampled background traffic while Pulse injects a burst.  The
regenerated series is Blast's mean latency binned over injection time;
the expected shape is a flat baseline, a spike during the burst, and a
recovery after it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Settings, Simulation
from repro.configs import blast_pulse_config
from repro.tools.ssplot import latency_vs_time

from .conftest import emit, run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]


def _run():
    simulation = Simulation(Settings.from_dict(blast_pulse_config(
        blast_rate=0.2, pulse_rate=0.7, pulse_delay=1500, pulse_duration=1000,
    )))
    results = simulation.run(max_time=150_000)
    return results


@pytest.mark.benchmark(group="fig05")
def test_fig05_blast_disrupted_by_pulse(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert results.drained
    workload = results.workload
    blast = results.records(application_id=0)
    plot = latency_vs_time(
        blast, bin_ticks=250,
        title="Fig 5: Blast mean latency disrupted by Pulse",
        start_tick=workload.start_tick, end_tick=workload.stop_tick,
    )
    emit(plot, "fig05")

    burst_lo = workload.start_tick + 1500
    burst_hi = burst_lo + 1000

    def mean_between(lo, hi):
        window = [r.latency for r in blast if lo <= r.created_tick < hi]
        return float(np.mean(window)) if window else float("nan")

    baseline = mean_between(workload.start_tick, burst_lo)
    during = mean_between(burst_lo, burst_hi)
    after = mean_between(burst_hi + 1500, workload.stop_tick)
    print(f"\nFig 5: baseline={baseline:.1f}  during pulse={during:.1f}  "
          f"after recovery={after:.1f}")
    # The disturbance: latency during the burst well above baseline...
    assert during > baseline * 1.3
    # ...and recovery afterwards (the transient dies out).
    assert after < during

"""Fig. 10 -- congestion credit accounting styles (case study B, §VI-B).

UGAL on a 1-D flattened butterfly with IOQ routers; the congestion
sensor's accounting style is swept over the six combinations of
granularity (VC / port) and credit source (output queues / downstream
queues / both).

Expected shape (paper): with uniform random traffic the port-based
styles win; with bit complement the VC-based styles win (slightly), and
accounting by downstream credits alone fails to sense BC congestion
properly.
"""

from __future__ import annotations

import pytest

from repro.configs import credit_accounting_config
from repro.tools.ssplot import PlotData

from .conftest import emit, run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]

STYLES = [
    (granularity, source)
    for granularity in ("vc", "port")
    for source in ("output", "downstream", "both")
]


def _sweep(traffic, injection_rate):
    rows = []
    for granularity, source in STYLES:
        config = credit_accounting_config(
            granularity=granularity,
            source=source,
            traffic=traffic,
            injection_rate=injection_rate,
            warmup=1500,
            window=3000,
        )
        results = run_sim(config, max_time=25_000)
        latency = results.latency()
        rows.append({
            "style": f"{granularity}/{source}",
            "granularity": granularity,
            "source": source,
            "accepted": results.accepted_load(),
            "mean_latency": latency.mean(),
        })
    return rows


def _report(rows, name, title):
    plot = PlotData(title, "style index", "accepted load")
    plot.add("accepted", list(range(len(rows))),
             [r["accepted"] for r in rows])
    emit(plot, name)
    print(f"\n{title}:")
    for row in rows:
        print(f"  {row['style']:16s} accepted={row['accepted']:.3f}  "
              f"mean latency={row['mean_latency']:.1f}")


@pytest.mark.benchmark(group="fig10")
def test_fig10a_uniform_random(benchmark):
    rows = benchmark.pedantic(_sweep, args=("uniform_random", 0.7),
                              rounds=1, iterations=1)
    _report(rows, "fig10a", "Fig 10a: credit accounting styles, UR traffic")
    # Every style sustains most of the offered uniform load.
    assert all(r["accepted"] > 0.5 for r in rows)


@pytest.mark.benchmark(group="fig10")
def test_fig10b_bit_complement(benchmark):
    rows = benchmark.pedantic(_sweep, args=("bit_complement", 0.6),
                              rounds=1, iterations=1)
    _report(rows, "fig10b", "Fig 10b: credit accounting styles, BC traffic")
    by_style = {r["style"]: r for r in rows}
    # The paper's BC result: VC-based accounting senses BC congestion
    # better than port-based when relying on downstream credits.
    assert (by_style["vc/downstream"]["accepted"]
            >= by_style["port/downstream"]["accepted"] - 0.01)
    # Styles genuinely differ under adversarial traffic: the spread
    # between best and worst style is measurable.
    accepted = [r["accepted"] for r in rows]
    assert max(accepted) - min(accepted) > 0.01

"""Fig. 7 -- the percentile distribution plot.

A single simulation's sampled latency, rendered as latency vs
percentile "nines": the view that reads off the 99.9th-percentile
latency a 1000-way-parallel collective should expect.
"""

from __future__ import annotations

import pytest

from repro.tools.ssplot import percentile_distribution
from tests.conftest import small_torus_config

from .conftest import emit, run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]


def _run():
    config = small_torus_config()
    config["workload"]["applications"][0]["injection_rate"] = 0.45
    config["workload"]["applications"][0]["generate_duration"] = 4000
    return run_sim(config, max_time=150_000)


@pytest.mark.benchmark(group="fig07")
def test_fig07_percentile_distribution(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert results.drained
    distribution = results.latency()
    assert len(distribution) > 2000
    plot = percentile_distribution(
        distribution, title="Fig 7: percentile distribution", max_nines=3
    )
    emit(plot, "fig07")
    p50 = distribution.percentile(50)
    p90 = distribution.percentile(90)
    p999 = distribution.percentile(99.9)
    print(f"\nFig 7: p50={p50:.0f}  p90={p90:.0f}  p99.9={p999:.0f}  "
          f"(only 1 in 1000 packets exceeds {p999:.0f} ticks)")
    # The tail dominates the median: the whole point of plotting
    # distributions instead of averages (§V).
    assert p999 > p90 >= p50
    series = plot.series[0]
    assert all(b >= a for a, b in zip(series.x, series.x[1:]))

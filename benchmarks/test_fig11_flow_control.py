"""Fig. 11 -- throughput of flow control techniques (case study C).

FB / PB / WTA crossbar scheduling on a torus with DOR, swept over
message sizes and VC counts at high offered load.  The paper's
conclusion: at large scale with high channel latencies the technique
barely matters -- with single-flit messages the three are *identical*,
and for larger messages the differences stay small because packets
rarely span multiple routers.
"""

from __future__ import annotations

import pytest

from repro.configs import flow_control_config
from repro.tools.ssplot import PlotData

from .conftest import FULL_SCALE, emit, run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]

TECHNIQUES = ("flit_buffer", "packet_buffer", "winner_take_all")
MESSAGE_SIZES = (1, 8, 32)
INJECTION_RATE = 0.9


def _config(flow_control, num_vcs, message_size):
    config = flow_control_config(
        flow_control=flow_control,
        num_vcs=num_vcs,
        message_size=message_size,
        injection_rate=INJECTION_RATE,
        full_scale=FULL_SCALE,
        warmup=800,
        window=1500,
    )
    if not FULL_SCALE:
        config["network"]["dimension_widths"] = [4, 4]
    return config


def _sweep(num_vcs):
    table = {}
    for size in MESSAGE_SIZES:
        for technique in TECHNIQUES:
            results = run_sim(_config(technique, num_vcs, size),
                              max_time=10_000)
            table[(size, technique)] = results.accepted_load()
    return table


def _report(table, num_vcs, name):
    plot = PlotData(f"Fig 11: flow control throughput, {num_vcs} VCs",
                    "message size (flits)", "accepted load")
    for technique in TECHNIQUES:
        plot.add(technique, list(MESSAGE_SIZES),
                 [table[(s, technique)] for s in MESSAGE_SIZES])
    emit(plot, name)
    print(f"\nFig 11 ({num_vcs} VCs, offered {INJECTION_RATE}):")
    for size in MESSAGE_SIZES:
        row = "  ".join(
            f"{t[:2].upper()}={table[(size, t)]:.3f}" for t in TECHNIQUES
        )
        print(f"  {size:2d} flits: {row}")


def _assert_shape(table):
    # Single-flit messages: the techniques all act the same (§VI-C).
    ones = [table[(1, t)] for t in TECHNIQUES]
    assert max(ones) - min(ones) < 0.02
    # Across all sizes the spread stays small at scale.
    for size in MESSAGE_SIZES:
        values = [table[(size, t)] for t in TECHNIQUES]
        assert max(values) - min(values) < 0.12, (
            f"flow control techniques diverged too much at size {size}"
        )


@pytest.mark.benchmark(group="fig11")
def test_fig11a_2_vcs(benchmark):
    table = benchmark.pedantic(_sweep, args=(2,), rounds=1, iterations=1)
    _report(table, 2, "fig11a")
    _assert_shape(table)


@pytest.mark.benchmark(group="fig11")
def test_fig11b_4_vcs(benchmark):
    table = benchmark.pedantic(_sweep, args=(4,), rounds=1, iterations=1)
    _report(table, 4, "fig11b")
    _assert_shape(table)


@pytest.mark.benchmark(group="fig11")
def test_fig11c_8_vcs(benchmark):
    table = benchmark.pedantic(_sweep, args=(8,), rounds=1, iterations=1)
    _report(table, 8, "fig11c")
    _assert_shape(table)

"""Table I -- the parameters of the three simulation case studies.

Regenerates the table from :mod:`repro.configs` and verifies every cell
against the paper: topology sizes, router radixes, architectures,
latencies, buffer depths, VC counts, message sizes, and traffic
patterns.  Also benchmarks construction of a full-scale network (the
1024-terminal flattened butterfly with radix-63 IOQ routers) to show
the paper-sized systems are buildable, not just configurable.
"""

from __future__ import annotations

import pytest

from repro import Settings, factory, models
from repro.configs import table1
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.network import Network

from .conftest import results_path

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]


def test_table1_latent_congestion_column():
    config = table1()["latent_congestion_detection"]
    network = config["network"]
    # 3-level folded Clos, 4096 terminals.
    assert network["topology"] == "folded_clos"
    assert network["num_levels"] == 3
    assert network["half_radix"] ** network["num_levels"] == 4096
    # Router radix 32 = 2 * half_radix.
    assert 2 * network["half_radix"] == 32
    # 50 ns channels (10 m cables), OQ router, 1 VC, 150-flit inputs.
    assert network["channel_latency"] == 50
    assert network["router"]["architecture"] == "output_queued"
    assert network["num_vcs"] == 1
    assert network["router"]["input_queue_depth"] == 150
    assert network["router"]["core_latency"] == 50
    # Adaptive uprouting; single-flit messages; uniform random to root.
    assert network["routing"]["algorithm"] == "clos_adaptive"
    app = config["workload"]["applications"][0]
    assert app["message_size"]["size"] == 1
    assert app["traffic"]["type"] == "uniform_to_root"


def test_table1_credit_accounting_column():
    config = table1()["congestion_credit_accounting"]
    network = config["network"]
    # 1-D flattened butterfly: 32 routers, 1024 terminals, radix 63.
    assert network["topology"] == "hyperx"
    assert network["dimension_widths"] == [32]
    assert network["concentration"] == 32
    radix = network["concentration"] + (network["dimension_widths"][0] - 1)
    assert radix == 63
    # UGAL, IOQ, 2x speedup, 2 VCs, 128/256-flit buffers, 50 ns.
    assert network["routing"]["algorithm"] == "hyperx_ugal"
    assert network["router"]["architecture"] == "input_output_queued"
    assert network["channel_period"] == 2  # 2x frequency speedup
    assert network["num_vcs"] == 2
    assert network["router"]["input_queue_depth"] == 128
    assert network["router"]["output_queue_depth"] == 256
    assert network["channel_latency"] == 50
    assert network["router"]["core_latency"] == 50


def test_table1_flow_control_column():
    config = table1()["flow_control_techniques"]
    network = config["network"]
    # 4-D torus 8x8x8x8 = 4096 terminals.
    assert network["topology"] == "torus"
    assert network["dimension_widths"] == [8, 8, 8, 8]
    assert network["concentration"] == 1
    # Radix 9 = 8 inter-router ports + 1 terminal.
    radix = network["concentration"] + 2 * len(network["dimension_widths"])
    assert radix == 9
    # DOR, IQ, 1x, 5 ns channels (1 m cables), 25 ns crossbar, 128 inputs.
    assert network["routing"]["algorithm"] == "torus_dimension_order"
    assert network["router"]["architecture"] == "input_queued"
    assert network["channel_period"] == 1
    assert network["channel_latency"] == 5
    assert network["router"]["core_latency"] == 25
    assert network["router"]["input_queue_depth"] == 128
    app = config["workload"]["applications"][0]
    assert app["traffic"]["type"] == "uniform_random"


def _build_full_scale_flattened_butterfly():
    models.load_all()
    config = table1()["congestion_credit_accounting"]
    settings = Settings.from_dict(config["network"])
    simulator = Simulator()
    network = factory.create(
        Network, "hyperx", simulator, "network", None, settings,
        RandomManager(1),
    )
    return network


@pytest.mark.benchmark(group="table1")
def test_table1_full_scale_construction(benchmark):
    """Construct the paper's 1024-terminal flattened butterfly."""
    network = benchmark.pedantic(
        _build_full_scale_flattened_butterfly, rounds=1, iterations=1
    )
    assert network.num_terminals == 1024
    assert network.num_routers == 32
    assert network.routers[0].num_ports == 63
    with open(results_path("table1.txt"), "w", encoding="utf-8") as handle:
        import json

        handle.write(json.dumps(table1(), indent=2))

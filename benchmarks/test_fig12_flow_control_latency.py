"""Fig. 12 -- flow control technique comparison with 32-flit messages.

The paper's Fig. 12 (8 VCs, 32-flit messages) shows flit-buffer flow
control with the best blocking resilience (lowest latency), packet-
buffer the worst, winner-take-all in between.

Scaling note (see EXPERIMENTS.md): the resilience gap is driven by
*blocked* packets, and on our scaled 16-node torus the 2-hop paths with
8 VCs almost never block -- the three techniques converge there, and
sub-saturation latency mildly favours PB's unfragmented transfers.  The
paper's ordering emerges exactly where blocking binds at this scale:
few VCs and overload.  This bench therefore measures both regimes:

* ``blocking`` (2 VCs, offered 0.9): saturation throughput must order
  FB >= WTA >= PB -- who wins, as in the paper.
* ``fluid`` (8 VCs): the three stay within a narrow band, the paper's
  own convergence claim for large scale (§VI-C).
"""

from __future__ import annotations

import pytest

from repro.configs import flow_control_config
from repro.tools.ssplot import PlotData

from .conftest import FULL_SCALE, emit, run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]

TECHNIQUES = ("flit_buffer", "packet_buffer", "winner_take_all")


def _run(technique, num_vcs, load):
    config = flow_control_config(
        flow_control=technique,
        num_vcs=num_vcs,
        message_size=32,
        injection_rate=load,
        full_scale=FULL_SCALE,
        warmup=1000,
        window=2500,
    )
    if not FULL_SCALE:
        config["network"]["dimension_widths"] = [4, 4]
    return run_sim(config, max_time=25_000)


def _sweep():
    table = {}
    for technique in TECHNIQUES:
        blocking = _run(technique, 2, 0.9)
        fluid = _run(technique, 8, 0.7)
        table[technique] = {
            "blocking_accepted": blocking.accepted_load(),
            "blocking_mean": blocking.latency().mean(),
            "fluid_accepted": fluid.accepted_load(),
            "fluid_mean": fluid.latency().mean(),
        }
    return table


@pytest.mark.benchmark(group="fig12")
def test_fig12_flow_control_comparison(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    plot = PlotData("Fig 12: flow control, 32-flit messages",
                    "technique index", "value")
    plot.add("blocking_accepted", range(len(TECHNIQUES)),
             [table[t]["blocking_accepted"] for t in TECHNIQUES])
    plot.add("fluid_mean_latency", range(len(TECHNIQUES)),
             [table[t]["fluid_mean"] for t in TECHNIQUES])
    emit(plot, "fig12")

    print("\nFig 12 (32-flit messages):")
    print("  blocking regime (2 VCs, offered 0.9):")
    for technique in TECHNIQUES:
        row = table[technique]
        print(f"    {technique:16s} accepted={row['blocking_accepted']:.3f}  "
              f"mean={row['blocking_mean']:.1f}")
    print("  fluid regime (8 VCs, offered 0.7):")
    for technique in TECHNIQUES:
        row = table[technique]
        print(f"    {technique:16s} accepted={row['fluid_accepted']:.3f}  "
              f"mean={row['fluid_mean']:.1f}")

    # Who wins under blocking: FB >= WTA >= PB (paper's Fig. 12 order).
    fb = table["flit_buffer"]["blocking_accepted"]
    pb = table["packet_buffer"]["blocking_accepted"]
    wta = table["winner_take_all"]["blocking_accepted"]
    assert fb >= pb - 0.01, f"FB ({fb:.3f}) must beat PB ({pb:.3f})"
    assert fb >= wta - 0.02
    assert wta >= pb - 0.02
    # Convergence in the fluid regime (the §VI-C scale argument).
    fluid = [table[t]["fluid_mean"] for t in TECHNIQUES]
    assert max(fluid) - min(fluid) < 0.25 * min(fluid)

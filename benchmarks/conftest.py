"""Benchmark harness helpers.

Every benchmark regenerates one table or figure from the paper's
evaluation (§VI).  Conventions:

* Simulations run once per bench (``benchmark.pedantic(rounds=1)``) --
  a flit-level simulation is the workload, not a microbenchmark.
* Default configurations are scaled down per DESIGN.md; set
  ``REPRO_FULL_SCALE=1`` to run the paper-sized networks (slow!).
* Each bench writes its regenerated series under
  ``benchmarks/results/`` as CSV plus an ASCII rendering, and prints
  the table it reproduces.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform

import pytest

from repro import Settings, Simulation

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")

#: engine-throughput history shared with scripts/bench_report.py
BENCH_ENGINE_FILE = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"


def record_engine_bench(name: str, payload: dict, source: str = "benchmarks") -> None:
    """Append one engine-throughput measurement to BENCH_engine.json.

    The file keeps a flat history so the perf trajectory is visible
    across PRs; every entry is stamped with enough machine context to
    judge comparability.
    """
    data: dict = {"history": []}
    if BENCH_ENGINE_FILE.exists():
        try:
            data = json.loads(BENCH_ENGINE_FILE.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            pass
    data.setdefault("history", []).append(
        {
            "name": name,
            "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "source": source,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            **payload,
        }
    )
    BENCH_ENGINE_FILE.write_text(
        json.dumps(data, indent=2) + "\n", encoding="utf-8"
    )


def run_sim(config: dict, max_time: int = 60_000):
    """Build and run one simulation from a config dict."""
    simulation = Simulation(Settings.from_dict(config))
    results = simulation.run(max_time=max_time)
    return results


def results_path(name: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def emit(plot_data, name: str) -> None:
    """Persist a PlotData as CSV + ASCII under benchmarks/results/."""
    plot_data.write_csv(str(results_path(f"{name}.csv")))
    with open(results_path(f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(plot_data.render_ascii())


@pytest.fixture
def full_scale():
    return FULL_SCALE

"""Benchmark harness helpers.

Every benchmark regenerates one table or figure from the paper's
evaluation (§VI).  Conventions:

* Simulations run once per bench (``benchmark.pedantic(rounds=1)``) --
  a flit-level simulation is the workload, not a microbenchmark.
* Default configurations are scaled down per DESIGN.md; set
  ``REPRO_FULL_SCALE=1`` to run the paper-sized networks (slow!).
* Each bench writes its regenerated series under
  ``benchmarks/results/`` as CSV plus an ASCII rendering, and prints
  the table it reproduces.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import Settings, Simulation

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def run_sim(config: dict, max_time: int = 60_000):
    """Build and run one simulation from a config dict."""
    simulation = Simulation(Settings.from_dict(config))
    results = simulation.run(max_time=max_time)
    return results


def results_path(name: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def emit(plot_data, name: str) -> None:
    """Persist a PlotData as CSV + ASCII under benchmarks/results/."""
    plot_data.write_csv(str(results_path(f"{name}.csv")))
    with open(results_path(f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(plot_data.render_ascii())


@pytest.fixture
def full_scale():
    return FULL_SCALE

"""Fig. 8 -- load vs latency distributions with phantom congestion.

The paper's flagship plot: an injection-rate sweep of an adaptive
routing experiment where the lines are latency *distributions* (mean +
percentiles), not just averages, and where stale congestion information
("phantom congestion") sends a visible fraction of traffic non-minimal
at low load -- a detail only the percentile lines reveal.

We reproduce it with UGAL on the 1-D flattened butterfly and a slow
congestion sensor: at low load the stale residue of past bursts diverts
packets (inflating the tail percentiles far above the median); as load
grows, genuinely useful congestion signals dominate and the non-minimal
fraction becomes rational.  Lines stop at saturation, as in the paper.
"""

from __future__ import annotations

import pytest

from repro.configs import credit_accounting_config
from repro.tools.ssplot import LoadLatencyPlot

from .conftest import emit, run_sim

# Full figure regenerations are minutes-long simulations: perf tier,
# excluded from the quick benchmark smoke (-m 'not slow').
pytestmark = [pytest.mark.perf, pytest.mark.slow]

LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)


def _point(load):
    config = credit_accounting_config(
        granularity="vc",
        source="output",
        traffic="uniform_random",
        injection_rate=load,
        warmup=1500,
        window=3000,
    )
    config["network"]["router"]["congestion_sensor"]["latency"] = 100
    results = run_sim(config, max_time=25_000)
    records = results.records()
    nonmin = (
        sum(1 for r in records if r.non_minimal) / len(records)
        if records else float("nan")
    )
    saturated = (
        not results.drained
        or results.accepted_load() < 0.93 * results.offered_load()
    )
    return {
        "load": load,
        "latency": results.latency(),
        "accepted": results.accepted_load(),
        "non_minimal": nonmin,
        "saturated": saturated,
    }


def _sweep():
    return [_point(load) for load in LOADS]


@pytest.mark.benchmark(group="fig08")
def test_fig08_load_latency_distributions(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    plot = LoadLatencyPlot(title="Fig 8: load vs latency distributions")
    for row in rows:
        plot.add_point(row["load"], row["latency"], row["saturated"])
    emit(plot.build(), "fig08")

    print("\nFig 8 (UGAL, slow congestion sensor):")
    for row in rows:
        latency = row["latency"]
        marker = " (saturated)" if row["saturated"] else ""
        print(f"  load={row['load']:.1f}  acc={row['accepted']:.3f}  "
              f"mean={latency.mean():7.1f}  p99={latency.percentile(99):7.1f}  "
              f"nonmin={row['non_minimal']:.3f}{marker}")

    usable = [row for row in rows if not row["saturated"]]
    assert len(usable) >= 2, "everything saturated; the sweep is useless"
    # Distribution lines are ordered at every load.
    for row in usable:
        latency = row["latency"]
        assert (latency.percentile(50) <= latency.percentile(90)
                <= latency.percentile(99) <= latency.percentile(99.9))
    # Latency grows from its valley toward saturation.
    means = [row["latency"].mean() for row in usable]
    assert means[-1] >= min(means)
    # Phantom congestion: some traffic goes non-minimal even at the
    # lowest load, where a perfectly informed router would go minimal
    # -- and that stale-diversion extra distance shows up as the
    # low-load latency bump the paper highlights (mean at the lowest
    # load sits above the mid-load valley).
    assert usable[0]["non_minimal"] > 0.0
    if len(means) >= 3:
        assert means[0] >= min(means[1:-1]) - 1.0

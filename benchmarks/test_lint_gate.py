"""Lint gate over every benchmark configuration.

Before any figure regeneration burns simulation time, every config the
benchmark suite runs must lint clean: zero error-severity findings at
the config layer, and zero at the graph layer for the scaled-down
study configs (the full-scale Table I systems are checked config-only
to keep the gate in the quick tier -- their construction is covered by
``test_table1_configs``).
"""

from __future__ import annotations

import pytest

from repro.configs import (
    blast_pulse_config,
    credit_accounting_config,
    flow_control_config,
    latent_congestion_config,
    table1,
)
from repro.lint import lint_config_dict

pytestmark = pytest.mark.perf

_STUDY_BUILDERS = [
    blast_pulse_config,
    credit_accounting_config,
    flow_control_config,
    latent_congestion_config,
]


@pytest.mark.parametrize(
    "builder", _STUDY_BUILDERS, ids=lambda b: b.__name__
)
def test_study_config_lints_clean(builder):
    report = lint_config_dict(
        builder(), subject=builder.__name__, max_pairs=128
    )
    assert not report.has_errors(), report.render_text()


@pytest.mark.parametrize("column", sorted(table1()))
def test_table1_config_lints_clean(column):
    report = lint_config_dict(
        table1()[column], graph=False, subject=f"table1:{column}"
    )
    assert not report.has_errors(), report.render_text()

"""Legacy setup shim: this environment's setuptools lacks the wheel
package, so editable installs go through ``setup.py develop``."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SuperSim reproduction: extensible flit-level simulation of "
        "large-scale interconnection networks (ISPASS 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": [
        "supersim = repro.__main__:main",
        "ssparse = repro.tools.cli:ssparse_main",
        "ssplot = repro.tools.cli:ssplot_main",
        "sssweep = repro.tools.cli:sssweep_main",
        "sslint = repro.tools.sslint:sslint_main",
    ]},
)

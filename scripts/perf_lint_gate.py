#!/usr/bin/env python
"""Perf-lint gate for CI: fail on NEW hot-path hazards (H-rules).

``sslint`` exits non-zero only on *error*-severity findings, and every
H-rule finding is a warning (or an info, under ``--profile``
demotion): advisory for humans, but a gate must still stop a PR that
introduces a brand-new hazard on a hot path.  This script runs the
perf layer over ``src/repro`` with the committed baseline
(``lint-perf-baseline.json``) applied and fails when any finding
survives -- i.e. when its evidence-chain fingerprint is not in the
baseline.

Accepting a new hazard deliberately (or after fixing old ones) means
refreshing the baseline::

    PYTHONPATH=src python -m repro.tools.sslint src/repro --layer perf \
        --write-baseline lint-perf-baseline.json

Opt-out: ``SUPERSIM_SKIP_PERFLINT=1`` skips the gate (exit 0).

Usage::

    PYTHONPATH=src python scripts/perf_lint_gate.py
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BASELINE = REPO_ROOT / "lint-perf-baseline.json"
SOURCES = REPO_ROOT / "src" / "repro"


def main() -> int:
    if os.environ.get("SUPERSIM_SKIP_PERFLINT", "0") != "0":
        print("perf-lint gate: skipped (SUPERSIM_SKIP_PERFLINT set)")
        return 0
    if not BASELINE.exists():
        print(f"perf-lint gate: missing baseline {BASELINE}", file=sys.stderr)
        return 1

    from repro.tools.sslint import sslint_main

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        exit_code = sslint_main([
            str(SOURCES),
            "--layer", "perf",
            "--baseline", str(BASELINE),
            "--format", "json",
        ])
    if exit_code != 0:
        # Error-severity findings never come from H-rules; something in
        # the lint run itself failed.
        sys.stderr.write(stdout.getvalue())
        print("perf-lint gate: sslint failed", file=sys.stderr)
        return exit_code

    payload = json.loads(stdout.getvalue())
    new = [
        finding
        for report in payload["reports"]
        for finding in report.get("findings", [])
    ]
    if not new:
        print("perf-lint gate: no new hot-path hazards")
        return 0
    print(
        f"perf-lint gate: {len(new)} NEW hot-path hazard(s) not in "
        f"{BASELINE.name}:"
    )
    for finding in new:
        print(f"  {finding.get('rule_id')}: {finding.get('message')}")
    print(
        "fix the hazard, or refresh the baseline deliberately:\n"
        "  PYTHONPATH=src python -m repro.tools.sslint src/repro "
        "--layer perf --write-baseline lint-perf-baseline.json"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())

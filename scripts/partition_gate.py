#!/usr/bin/env python
"""CI gate: every builtin config must partition cleanly at k=4.

For each builtin benchmark config this gate plans a 4-way partition,
runs the full P-rule layer over the planned manifest, and fails on:

* any error-severity P- or S-finding not in EXPECTED_UNSAFE (an
  unsound partition, or an unexpected shard-unsafe model verdict),
* a global lookahead below 1 tick (the partition would be useless),
* a manifest that is not byte-identical when planned twice (the
  determinism contract of docs/PARTITIONING.md),
* a SARIF export that is structurally invalid,
* a sharded k=2 run (in-process workers) whose merged delivery digest
  differs from the single-process run of the same config -- the
  execution-equivalence contract of the PDES runtime,
* a shard-purity classification of any builtin model class that
  deviates from EXPECTED_CLASSIFICATIONS (a silent analyzer or model
  regression either way: a model going unsafe breaks sharding, a
  hazard going undetected breaks the analyzer).

Run directly (``python scripts/partition_gate.py``) or via
``scripts/ci_check.sh``; set SUPERSIM_SKIP_PARTITION=1 to skip either
way.
"""

from __future__ import annotations

import os
import sys

K = 4

#: Builtin configs that select a shard-unsafe model on purpose, and the
#: S-rule the gate expects to fire.  credit_accounting routes with
#: hyperx_ugal, whose hop_count-adaptive VC selection the shard-purity
#: analyzer rejects; its partition *plan* is still produced and checked.
EXPECTED_UNSAFE = {
    "credit_accounting_config": {"S001"},
}

#: Derived verdict expected for every builtin model class.  Keyed
#: (kind, registered name); values are shard_rules classifications.
EXPECTED_CLASSIFICATIONS = {
    ("application", "blast"): "conditional",
    ("application", "pulse"): "shard-safe",
    ("application", "request_reply"): "shard-unsafe",
    ("routing", "chain"): "shard-safe",
    ("routing", "clos_adaptive"): "shard-safe",
    ("routing", "clos_deterministic"): "shard-safe",
    ("routing", "dragonfly_minimal"): "shard-unsafe",
    ("routing", "dragonfly_ugal"): "shard-unsafe",
    ("routing", "dragonfly_valiant"): "shard-unsafe",
    ("routing", "hyperx_dimension_order"): "shard-safe",
    ("routing", "hyperx_ugal"): "shard-unsafe",
    ("routing", "hyperx_valiant"): "shard-unsafe",
    ("routing", "torus_dimension_order"): "shard-safe",
    ("routing", "torus_minimal_adaptive"): "shard-safe",
    ("router", "input_output_queued"): "shard-safe",
    ("router", "input_queued"): "shard-safe",
    ("router", "output_queued"): "shard-safe",
    ("interface", "standard"): "shard-safe",
}


def classification_sweep() -> list:
    """Classify every registered builtin model; diff vs expectations."""
    from repro.lint.shard_rules import classify_registered

    problems = []
    actual = {
        (kind, name): verdict
        for kind, verdicts in classify_registered().items()
        for name, verdict in verdicts.items()
    }
    for key, expected in sorted(EXPECTED_CLASSIFICATIONS.items()):
        verdict = actual.pop(key, None)
        if verdict is None:
            problems.append(f"{key[0]} {key[1]!r}: no longer registered")
        elif verdict.classification != expected:
            evidence = "; ".join(h.render() for h in verdict.hazards)
            problems.append(
                f"{key[0]} {key[1]!r}: expected {expected}, analyzer "
                f"says {verdict.classification}"
                + (f" ({evidence})" if evidence else "")
            )
    for (kind, name), verdict in sorted(actual.items()):
        if verdict.classification != "shard-safe":
            problems.append(
                f"new {kind} {name!r} classifies {verdict.classification} "
                f"and is missing from EXPECTED_CLASSIFICATIONS"
            )
    return problems


def check_sarif(log: dict) -> list:
    """Minimal structural validation of a SARIF 2.1.0 log."""
    problems = []
    if log.get("version") != "2.1.0":
        problems.append(f"sarif version is {log.get('version')!r}")
    runs = log.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        problems.append("sarif log must carry exactly one run")
        return problems
    run = runs[0]
    driver = run.get("tool", {}).get("driver", {})
    if driver.get("name") != "sslint":
        problems.append("sarif driver name must be 'sslint'")
    declared = {rule.get("id") for rule in driver.get("rules", [])}
    for result in run.get("results", []):
        if result.get("ruleId") not in declared:
            problems.append(
                f"result rule {result.get('ruleId')!r} not declared"
            )
        if result.get("level") not in ("error", "warning", "note"):
            problems.append(f"bad result level {result.get('level')!r}")
        if not result.get("message", {}).get("text"):
            problems.append("result without message text")
        prints = result.get("partialFingerprints", {})
        if not any(k.startswith("sslintFingerprint/") for k in prints):
            problems.append("result without an sslint fingerprint")
    return problems


def runtime_smoke() -> list:
    """Sharded k=2 execution must reproduce the single-process digest."""
    import itertools

    import repro.net.message as message_mod
    import repro.net.packet as packet_mod
    from repro import configs as builders
    from repro.config.settings import Settings
    from repro.net.packet import preserve_packet_ids
    from repro.partition.runtime import PartitionRuntimeError, run_sharded
    from repro.sanitize import attach_sanitizers
    from repro.sim import Simulation

    max_time = 2_000
    config = builders.latent_congestion_config(
        injection_rate=0.15, warmup=50, window=150, half_radix=2
    )
    # Shard workers count ids from zero like a fresh process; the
    # reference run must too (packet ids feed routing decisions).
    with preserve_packet_ids():
        packet_mod._global_packet_ids = itertools.count(0)
        message_mod._global_message_ids = itertools.count(0)
        simulation = Simulation(Settings.from_dict(config))
        with attach_sanitizers(simulation, "det") as suite:
            results = simulation.run(max_time=max_time)
            suite.finish()
            digest = suite.report()["det"]["delivery_digest"]
    if not results.drained:
        return ["single-process reference run did not drain"]
    config.setdefault("simulator", {})["max_time"] = max_time
    try:
        sharded = run_sharded(config, k=2, sanitize="det")
    except PartitionRuntimeError as exc:
        return [f"sharded run failed: {exc}"]
    problems = []
    if not sharded.drained:
        problems.append("sharded run did not drain")
    if sharded.delivery_digest != digest:
        problems.append(
            f"sharded delivery digest {sharded.delivery_digest} != "
            f"single-process {digest}"
        )
    return problems


def main() -> int:
    from repro import configs as builders
    from repro.config.settings import Settings
    from repro.lint import lint_partition
    from repro.lint.sarif import to_sarif
    from repro.partition import to_canonical_json

    if os.environ.get("SUPERSIM_SKIP_PARTITION", "0") != "0":
        print("partition gate: skipped (SUPERSIM_SKIP_PARTITION set)")
        return 0

    names = sorted(
        attr for attr in dir(builders)
        if attr.endswith("_config") and callable(getattr(builders, attr))
    )
    failures = 0
    reports = []
    for name in names:
        config = getattr(builders, name)()
        report, manifest = lint_partition(
            Settings.from_dict(config), k=K, subject=f"builtin:{name}"
        )
        reports.append(report)
        problems = []
        expected_rules = EXPECTED_UNSAFE.get(name, set())
        unexpected = [
            f for f in report.errors if f.rule_id not in expected_rules
        ]
        missing = expected_rules - {f.rule_id for f in report.errors}
        problems.extend(f.render() for f in unexpected)
        problems.extend(
            f"expected an error-severity {rule} finding, got none"
            for rule in sorted(missing)
        )
        if manifest is None:
            problems.append("no manifest produced")
        else:
            lookahead = manifest["lookahead"]["global"]
            if lookahead is None or lookahead < 1:
                problems.append(f"global lookahead is {lookahead!r}")
            _, again = lint_partition(
                Settings.from_dict(getattr(builders, name)()), k=K
            )
            if to_canonical_json(manifest) != to_canonical_json(again):
                problems.append("manifest is not deterministic")
        if problems:
            failures += 1
            print(f"FAIL {name} (k={K}):")
            for problem in problems:
                print(f"  {problem}")
        else:
            cut = len(manifest["cut_channels"])
            note = (
                f", expected {'/'.join(sorted(expected_rules))} present"
                if expected_rules else ""
            )
            print(
                f"ok   {name}: k={K}, {cut} cut channel(s), "
                f"lookahead {manifest['lookahead']['global']}{note}"
            )

    sweep_problems = classification_sweep()
    if sweep_problems:
        failures += 1
        print("FAIL builtin shard-purity classifications:")
        for problem in sweep_problems:
            print(f"  {problem}")
    else:
        count = len(EXPECTED_CLASSIFICATIONS)
        print(f"ok   shard-purity: {count} builtin model classes match "
              f"expected verdicts")

    sarif_problems = check_sarif(to_sarif(reports))
    if sarif_problems:
        failures += 1
        print("FAIL sarif export:")
        for problem in sarif_problems:
            print(f"  {problem}")
    else:
        print("ok   sarif export validates")

    smoke_problems = runtime_smoke()
    if smoke_problems:
        failures += 1
        print("FAIL sharded runtime smoke (k=2):")
        for problem in smoke_problems:
            print(f"  {problem}")
    else:
        print("ok   sharded runtime smoke: k=2 digest matches "
              "single-process")

    if failures:
        print(f"partition gate: {failures} failure(s)")
        return 1
    print(f"partition gate: {len(names)} config(s) clean at k={K}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

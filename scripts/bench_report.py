#!/usr/bin/env python
"""Measure engine throughput and append the numbers to BENCH_engine.json.

Runs the same workloads as ``benchmarks/test_engine_throughput.py``
without the pytest harness, so a perf data point costs seconds and can
be taken on every PR:

* ``event_queue_throughput``: 200k self-rescheduling events, freelist on.
* ``event_queue_throughput_no_freelist``: the same with the event pool
  disabled (the before/after comparison for the engine optimizations).
* ``simulation_event_rate``: a full flit-level simulation (4x4 torus,
  IQ routers, 30% load) -- the headline model-layer metric; wall time
  includes network construction, matching the benchmarks/ methodology.
* ``simulation_event_rate_folded_clos``: the same metric on a scaled
  folded-Clos / OQ-router / adaptive-routing workload (case study A).
* ``sweep_worker_scaling`` (``--sweep``): a 16-job sweep at workers=1
  vs workers=4, verifying identical rows and recording both wall times.
* ``partition_speedup`` (``--partition``): the sharded PDES runtime at
  k=2 and k=4 (one spawned worker process per shard) against the
  single-process run of the same workload, with per-shard event rates;
  on a single-core host this measures runtime overhead, qualified by
  the recorded ``cpu_count``.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--rounds N] [--sweep]
                                                  [--skip-sim]

Each measurement appends one entry to ``BENCH_engine.json`` at the repo
root; the best (minimum) time over ``--rounds`` is reported.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.simulator import Simulator  # noqa: E402
from repro.tools.sssweep import Sweep  # noqa: E402

BENCH_FILE = REPO_ROOT / "BENCH_engine.json"


def record(name: str, payload: dict) -> None:
    data: dict = {"history": []}
    if BENCH_FILE.exists():
        try:
            data = json.loads(BENCH_FILE.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            pass
    data.setdefault("history", []).append(
        {
            "name": name,
            "timestamp": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "source": "scripts/bench_report.py",
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            **payload,
        }
    )
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def event_queue_throughput(pool_size: int, target: int = 200_000):
    simulator = Simulator(event_pool_size=pool_size)
    count = [0]

    def handler(event):
        count[0] += 1
        if count[0] < target:
            simulator.call_at(simulator.tick + 1, handler)

    for i in range(8):
        simulator.call_at(i + 1, handler)
    start = time.perf_counter()
    simulator.run()
    elapsed = time.perf_counter() - start
    return elapsed, count[0]


def bench_event_queue(rounds: int) -> None:
    for name, pool_size in (
        ("event_queue_throughput", 8192),
        ("event_queue_throughput_no_freelist", 0),
    ):
        best, events = min(
            (event_queue_throughput(pool_size) for _ in range(rounds)),
            key=lambda pair: pair[0],
        )
        rate = events / best
        record(
            name,
            {
                "events": events,
                "seconds": best,
                "events_per_sec": rate,
                "freelist": pool_size > 0,
                "rounds": rounds,
            },
        )
        print(f"{name}: {events} events in {best * 1000:.1f} ms "
              f"({rate / 1000:.0f}k events/s)")


def _simulation_workloads():
    from repro.configs import latent_congestion_config
    from tests.conftest import small_torus_config

    torus = small_torus_config()
    torus["workload"]["applications"][0]["injection_rate"] = 0.3
    clos = latent_congestion_config(injection_rate=0.25, warmup=200, window=500)
    return (
        ("simulation_event_rate", torus, 100_000),
        ("simulation_event_rate_folded_clos", clos, 5_000),
    )


def _timed_simulation(config: dict, max_time: int):
    """One timed build+run, isolated from process-global packet ids.

    Packet ids feed routing decisions (see ``repro.lint.graph``), so the
    counter is restored after each round: every round then simulates the
    exact same event sequence and the timings are comparable.
    """
    import copy

    from repro import Settings, Simulation
    from repro.net.packet import preserve_packet_ids

    with preserve_packet_ids():
        start = time.perf_counter()
        simulation = Simulation(
            Settings.from_dict(copy.deepcopy(config))
        )
        simulation.run(max_time=max_time)
        elapsed = time.perf_counter() - start
        return elapsed, simulation.simulator.executed_events


def bench_simulation_rate(rounds: int) -> None:
    for name, config, max_time in _simulation_workloads():
        best, events = min(
            (_timed_simulation(config, max_time) for _ in range(rounds)),
            key=lambda pair: pair[0],
        )
        rate = events / best
        record(
            name,
            {
                "events": events,
                "seconds": best,
                "events_per_sec": rate,
                "max_time": max_time,
                "rounds": rounds,
            },
        )
        print(f"{name}: {events} events in {best:.2f} s "
              f"({rate / 1000:.0f}k events/s)")


def _scaling_sweep() -> Sweep:
    from tests.conftest import small_torus_config

    sweep = Sweep(small_torus_config(), name="scaling", max_time=2_000)
    sweep.add_variable(
        "InjectionRate", "IR", [0.05, 0.1, 0.15, 0.2],
        lambda rate: f"workload.applications[0].injection_rate=float={rate}")
    sweep.add_variable(
        "Seed", "S", [1, 2, 3, 4],
        lambda seed: f"simulator.seed=uint={seed}")
    return sweep


def bench_sweep_scaling() -> None:
    workers = min(4, os.cpu_count() or 1)
    serial = _scaling_sweep()
    start = time.perf_counter()
    serial.run(workers=1)
    serial_s = time.perf_counter() - start
    parallel = _scaling_sweep()
    start = time.perf_counter()
    parallel.run(workers=workers)
    parallel_s = time.perf_counter() - start
    identical = json.dumps(serial.to_rows(), sort_keys=True) == json.dumps(
        parallel.to_rows(), sort_keys=True
    )
    record(
        "sweep_worker_scaling",
        {
            "jobs": len(serial.jobs),
            "workers": workers,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else None,
            "rows_identical": identical,
        },
    )
    print(f"sweep_worker_scaling: {len(serial.jobs)} jobs, "
          f"serial {serial_s:.2f}s vs workers={workers} {parallel_s:.2f}s "
          f"(identical rows: {identical})")
    if not identical:
        raise SystemExit("parallel sweep rows diverged from serial rows")


def bench_partition_speedup() -> None:
    """Sharded (spawn-mode) wall clock vs the single-process run.

    On a single-core container this measures the *overhead* of the PDES
    runtime (window barriers, record pickling, phantom replay -- every
    worker re-executes the full workload's generate events), not a
    speedup; the recorded ``cpu_count`` qualifies the number.  The
    digest cross-check still makes it a correctness data point.
    """
    from repro import Settings, Simulation
    from repro.net.packet import preserve_packet_ids
    from repro.partition.runtime import run_sharded
    from tests.conftest import small_torus_config

    def config() -> dict:
        return small_torus_config(
            warmup_duration=100, generate_duration=400
        )

    max_time = 50_000
    with preserve_packet_ids():
        start = time.perf_counter()
        simulation = Simulation(Settings.from_dict(config()))
        results = simulation.run(max_time=max_time)
        single_s = time.perf_counter() - start
    single_events = simulation.simulator.executed_events
    assert results.drained

    for k in (2, 4):
        workload = config()
        workload["simulator"]["max_time"] = max_time
        start = time.perf_counter()
        sharded = run_sharded(workload, k=k, shard_workers=k)
        elapsed = time.perf_counter() - start
        shards = [
            {
                "shard": report["shard"],
                "events_executed": report["events_executed"],
                "events_per_sec": report["events_executed"] / elapsed,
            }
            for report in sharded.reports
        ]
        record(
            "partition_speedup",
            {
                "k": k,
                "mode": sharded.mode,
                "windows": sharded.windows,
                "lookahead": sharded.lookahead,
                "records_exchanged": sharded.records_exchanged,
                "single_seconds": single_s,
                "single_events": single_events,
                "sharded_seconds": elapsed,
                "speedup": single_s / elapsed if elapsed else None,
                "drained": sharded.drained,
                "shards": shards,
            },
        )
        print(f"partition_speedup: k={k} ({sharded.mode}), "
              f"single {single_s:.2f}s vs sharded {elapsed:.2f}s "
              f"({sharded.windows} windows, "
              f"{sharded.records_exchanged} records)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5,
                        help="repetitions per microbenchmark (best is kept)")
    parser.add_argument("--sweep", action="store_true",
                        help="also run the (slower) sweep scaling benchmark")
    parser.add_argument("--skip-sim", action="store_true",
                        help="skip the full-simulation event-rate benchmarks")
    parser.add_argument("--sim-only", action="store_true",
                        help="run only the full-simulation event-rate "
                        "benchmarks (skip the engine microbenchmarks)")
    parser.add_argument("--partition", action="store_true",
                        help="also benchmark the sharded PDES runtime "
                        "(spawn-mode workers) against the single-process "
                        "run")
    args = parser.parse_args()
    if not args.sim_only:
        bench_event_queue(args.rounds)
    if not args.skip_sim:
        bench_simulation_rate(args.rounds)
    if args.sweep:
        bench_sweep_scaling()
    if args.partition:
        bench_partition_speedup()
    print(f"appended to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

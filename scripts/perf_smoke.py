#!/usr/bin/env python
"""Perf-regression smoke check for the CI gate.

Re-measures ``simulation_event_rate`` (the headline model-layer
metric, see docs/PERFORMANCE.md) and fails when the rate drops more
than ``--tolerance`` (default 25%) below the most recent entry of the
same name in ``BENCH_engine.json``.  The check never *writes* the
history -- appending honest numbers is ``scripts/bench_report.py``'s
job -- so a slow machine cannot silently lower the bar for the next
run.

Opt-outs:

* ``SUPERSIM_SKIP_PERF=1`` skips the check entirely (exit 0) -- for
  containers whose performance is not comparable to the recorded
  history (shared CI runners, laptops on battery, ...).
* no ``simulation_event_rate`` entry in the history: the check reports
  that and passes (nothing to compare against).

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [--rounds N]
                                                [--tolerance FRACTION]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_report import BENCH_FILE, _simulation_workloads, _timed_simulation  # noqa: E402

METRIC = "simulation_event_rate"


def latest_recorded_rate() -> float | None:
    if not BENCH_FILE.exists():
        return None
    try:
        history = json.loads(BENCH_FILE.read_text(encoding="utf-8"))["history"]
    except (ValueError, KeyError, OSError):
        return None
    for entry in reversed(history):
        if entry.get("name") == METRIC and "events_per_sec" in entry:
            return float(entry["events_per_sec"])
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="measurement repetitions, best is kept (default 3)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop vs the recorded rate "
                        "(default 0.25)")
    args = parser.parse_args()

    if os.environ.get("SUPERSIM_SKIP_PERF", "") not in ("", "0"):
        print("perf_smoke: skipped (SUPERSIM_SKIP_PERF set)")
        return 0
    recorded = latest_recorded_rate()
    if recorded is None:
        print(f"perf_smoke: no {METRIC!r} entry in {BENCH_FILE.name}; "
              "nothing to compare against")
        return 0

    name, config, max_time = next(
        w for w in _simulation_workloads() if w[0] == METRIC
    )
    best, events = min(
        (_timed_simulation(config, max_time) for _ in range(args.rounds)),
        key=lambda pair: pair[0],
    )
    rate = events / best
    floor = recorded * (1.0 - args.tolerance)
    verdict = "OK" if rate >= floor else "REGRESSION"
    print(f"perf_smoke: {name} = {rate / 1000:.0f}k events/s "
          f"(recorded {recorded / 1000:.0f}k, floor {floor / 1000:.0f}k "
          f"at -{args.tolerance:.0%}): {verdict}")
    if rate < floor:
        print("perf_smoke: if this machine is legitimately slower than the "
              "recorded history, set SUPERSIM_SKIP_PERF=1; if the code got "
              "slower, profile it (scripts/profile_sim.py) before shipping")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Sanitizer smoke tier: every built-in config, briefly, under all
runtime sanitizers.

Run as a CI gate (scripts/ci_check.sh) or by hand::

    PYTHONPATH=src python scripts/sanitize_smoke.py [--ticks N]

Each built-in benchmark config is simulated for a short tick budget
with ``repro.sanitize`` fully attached (credit, flit, event, det).
Any invariant violation -- a credit leak, an out-of-order flit, a
recycled event executing -- fails the gate with the sanitizer's
message.  A clean pass prints per-config check counts, which should
be comfortably non-zero: a sanitizer that made zero checks is wired
to nothing.

Exit status: 0 all clean, 1 violation or zero-check wiring problem.
"""

from __future__ import annotations

import argparse
import sys

from repro import configs
from repro.config.settings import Settings
from repro.sanitize import SanitizerError, attach_sanitizers
from repro.sim import Simulation

BUILTIN_CONFIGS = (
    "flow_control_config",
    "credit_accounting_config",
    "latent_congestion_config",
    "blast_pulse_config",
)


def smoke(name: str, ticks: int) -> bool:
    config = getattr(configs, name)()
    settings = Settings.from_dict(config)
    simulation = Simulation(settings)
    try:
        with attach_sanitizers(simulation, "all") as suite:
            simulation.run(max_time=ticks)
            suite.finish()
            report = suite.report()
    except SanitizerError as exc:
        print(f"FAIL {name}: {exc}")
        return False
    checks = {san: r.get("checks", 0) for san, r in report.items()}
    if not all(checks.values()):
        idle = sorted(san for san, n in checks.items() if not n)
        print(f"FAIL {name}: sanitizers made zero checks: {idle}")
        return False
    summary = ", ".join(f"{san}={n}" for san, n in sorted(checks.items()))
    print(f"ok   {name}: {summary}")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ticks",
        type=int,
        default=1500,
        help="simulated tick budget per config (default: 1500)",
    )
    args = parser.parse_args(argv)
    ok = True
    for name in BUILTIN_CONFIGS:
        ok = smoke(name, args.ticks) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# CI gate: tier-1 tests, style/type checks (when the tools exist), and
# sslint over everything the repo ships.
#
# Usage: scripts/ci_check.sh [--fast]
#   --fast  skip the tier-1 pytest run (lint gates only)
#
# Exit status is non-zero if any executed gate fails.  ruff and mypy
# are optional: this container does not bake them in, so their gates
# report SKIPPED instead of failing when the tool is absent (their
# configuration lives in pyproject.toml and applies wherever they are
# installed).

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH=src
FAILURES=0
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

run_gate() {
    local name="$1"
    shift
    echo "==> ${name}"
    if "$@"; then
        echo "    ${name}: OK"
    else
        echo "    ${name}: FAILED"
        FAILURES=$((FAILURES + 1))
    fi
}

skip_gate() {
    echo "==> $1"
    echo "    $1: SKIPPED ($2)"
}

# 1. Tier-1 test suite (see ROADMAP.md).
if [ "${FAST}" = "0" ]; then
    run_gate "pytest (tier-1)" python -m pytest -x -q
else
    skip_gate "pytest (tier-1)" "--fast"
fi

# 2. Style: ruff over the cleaned packages.
if command -v ruff >/dev/null 2>&1; then
    run_gate "ruff" ruff check src/repro/core src/repro/tools
else
    skip_gate "ruff" "not installed"
fi

# 3. Types: mypy over the packages pyproject declares.
if command -v mypy >/dev/null 2>&1; then
    run_gate "mypy" mypy
else
    skip_gate "mypy" "not installed"
fi

# 4. sslint: every example script (determinism layer) and every
#    built-in benchmark config (config + graph layers).  sslint exits
#    non-zero on any error-severity finding.
run_gate "sslint (examples + builtin configs)" \
    python -m repro.tools.sslint examples/ --builtin all --format json

# 5. sslint rule catalog stays importable (registration smoke check).
run_gate "sslint --list-rules" \
    python -m repro.tools.sslint --list-rules

# 6. Sanitizer smoke tier: every built-in config runs briefly under the
#    runtime sanitizers (credit/flit/event conservation, determinism
#    hashing).  See docs/SANITIZERS.md.
run_gate "sanitize smoke (builtin configs)" \
    python scripts/sanitize_smoke.py

# 7. Partition gate: every builtin config must plan a 4-way partition
#    with zero unexpected P/S-errors, lookahead >= 1, byte-identical
#    manifests, and a structurally valid SARIF export; every builtin
#    model class must keep its expected shard-purity classification
#    (S-rules, see docs/LINTING.md).  See docs/PARTITIONING.md.
if [ "${SUPERSIM_SKIP_PARTITION:-0}" != "0" ]; then
    skip_gate "partition gate (builtin configs @ k=4)" \
        "SUPERSIM_SKIP_PARTITION set"
else
    run_gate "partition gate (builtin configs @ k=4)" \
        python scripts/partition_gate.py
fi

# 8. Perf-regression smoke: simulation_event_rate must stay within 25%
#    of the latest BENCH_engine.json entry.  SUPERSIM_SKIP_PERF=1 opts
#    out on machines not comparable to the recorded history.
if [ "${SUPERSIM_SKIP_PERF:-0}" != "0" ]; then
    skip_gate "perf smoke (simulation_event_rate)" "SUPERSIM_SKIP_PERF set"
else
    run_gate "perf smoke (simulation_event_rate)" \
        python scripts/perf_smoke.py
fi

# 9. Perf-lint gate: the hot-path H-rules (static perf audit, see
#    docs/LINTING.md) run over src/repro against the committed
#    fingerprint baseline; only NEW hazards fail.  Refresh the
#    baseline deliberately with --write-baseline after fixing or
#    accepting findings.  SUPERSIM_SKIP_PERFLINT=1 opts out.
if [ "${SUPERSIM_SKIP_PERFLINT:-0}" != "0" ]; then
    skip_gate "perf lint (H-rules vs baseline)" "SUPERSIM_SKIP_PERFLINT set"
else
    run_gate "perf lint (H-rules vs baseline)" \
        python scripts/perf_lint_gate.py
fi

echo
if [ "${FAILURES}" -ne 0 ]; then
    echo "ci_check: ${FAILURES} gate(s) failed"
    exit 1
fi
echo "ci_check: all executed gates passed"

#!/usr/bin/env python
"""Run the full reproduction experiment grid and emit markdown tables.

This is the script that generated the measured numbers recorded in
EXPERIMENTS.md.  It runs every case-study sweep at the default
(scaled-down) sizes; expect ~20-40 minutes of wall time.

Usage:  python scripts/run_experiments.py [output.md]
"""

from __future__ import annotations

import sys
import time

from repro import Settings, Simulation
from repro.configs import (
    blast_pulse_config,
    credit_accounting_config,
    flow_control_config,
    latent_congestion_config,
)


def run(config, max_time):
    return Simulation(Settings.from_dict(config)).run(max_time=max_time)


def section(lines, title):
    lines.append(f"\n### {title}\n")


def fig9(lines):
    section(lines, "Fig. 9 — latent congestion detection")
    lines.append("| output queues | sense latency (ns) | accepted load | mean latency (ns) |")
    lines.append("|---|---|---|---|")
    for depth, label in ((None, "infinite"), (64, "64 flits")):
        for sense in (1, 8, 32, 64):
            config = latent_congestion_config(
                congestion_latency=sense, output_queue_depth=depth,
                injection_rate=0.85, half_radix=4, warmup=1500, window=3000)
            config["network"]["num_levels"] = 2
            results = run(config, 25_000)
            lines.append(
                f"| {label} | {sense} | {results.accepted_load():.3f} "
                f"| {results.latency().mean():.1f} |")
            print(lines[-1], flush=True)


def fig9_smaller(lines):
    section(lines, "Fig. 9 text — smaller systems are milder")
    lines.append("| half radix | terminals | acc @ sense=1 | acc @ sense=32 | drop |")
    lines.append("|---|---|---|---|---|")
    for half_radix in (2, 4):
        accs = {}
        for sense in (1, 32):
            config = latent_congestion_config(
                congestion_latency=sense, output_queue_depth=64,
                injection_rate=0.85, half_radix=half_radix,
                warmup=1500, window=3000)
            config["network"]["num_levels"] = 2
            accs[sense] = run(config, 25_000).accepted_load()
        drop = 1 - accs[32] / accs[1]
        lines.append(f"| {half_radix} | {half_radix**2} | {accs[1]:.3f} "
                     f"| {accs[32]:.3f} | {drop:.1%} |")
        print(lines[-1], flush=True)


def fig10(lines):
    section(lines, "Fig. 10 — credit accounting styles (UGAL, IOQ)")
    for traffic, rate in (("uniform_random", 0.7), ("bit_complement", 0.6)):
        lines.append(f"\n**{traffic} @ {rate}**\n")
        lines.append("| style | accepted load | mean latency (ns) |")
        lines.append("|---|---|---|")
        for granularity in ("vc", "port"):
            for source in ("output", "downstream", "both"):
                config = credit_accounting_config(
                    granularity=granularity, source=source, traffic=traffic,
                    injection_rate=rate, warmup=1500, window=3000)
                results = run(config, 25_000)
                lines.append(
                    f"| {granularity}/{source} | {results.accepted_load():.3f} "
                    f"| {results.latency().mean():.1f} |")
                print(lines[-1], flush=True)


def fig11(lines):
    section(lines, "Fig. 11 — flow control throughput (offered 0.9)")
    lines.append("| VCs | message size | FB | PB | WTA |")
    lines.append("|---|---|---|---|---|")
    for vcs in (2, 4, 8):
        for size in (1, 8, 32):
            row = {}
            for technique in ("flit_buffer", "packet_buffer",
                              "winner_take_all"):
                config = flow_control_config(
                    flow_control=technique, num_vcs=vcs, message_size=size,
                    injection_rate=0.9, warmup=1000, window=2000)
                config["network"]["dimension_widths"] = [4, 4]
                row[technique] = run(config, 14_000).accepted_load()
            lines.append(
                f"| {vcs} | {size} | {row['flit_buffer']:.3f} "
                f"| {row['packet_buffer']:.3f} "
                f"| {row['winner_take_all']:.3f} |")
            print(lines[-1], flush=True)


def fig12(lines):
    section(lines, "Fig. 12 — flow control latency (8 VCs, 32-flit messages)")
    lines.append("| load | FB mean | PB mean | WTA mean |")
    lines.append("|---|---|---|---|")
    for load in (0.3, 0.5, 0.7):
        row = {}
        for technique in ("flit_buffer", "packet_buffer", "winner_take_all"):
            config = flow_control_config(
                flow_control=technique, num_vcs=8, message_size=32,
                injection_rate=load, warmup=1000, window=2500)
            config["network"]["dimension_widths"] = [4, 4]
            row[technique] = run(config, 25_000).latency().mean()
        lines.append(f"| {load} | {row['flit_buffer']:.1f} "
                     f"| {row['packet_buffer']:.1f} "
                     f"| {row['winner_take_all']:.1f} |")
        print(lines[-1], flush=True)


def fig5(lines):
    section(lines, "Fig. 5 — Blast disrupted by Pulse")
    results = run(blast_pulse_config(blast_rate=0.2, pulse_rate=0.7,
                                     pulse_delay=1500, pulse_duration=1000),
                  150_000)
    workload = results.workload
    blast = results.records(application_id=0)
    lo = workload.start_tick + 1500
    hi = lo + 1000

    def mean_between(a, b):
        window = [r.latency for r in blast if a <= r.created_tick < b]
        return sum(window) / len(window) if window else float("nan")

    lines.append("| phase | Blast mean latency (ns) |")
    lines.append("|---|---|")
    lines.append(f"| before pulse | {mean_between(workload.start_tick, lo):.1f} |")
    lines.append(f"| during pulse | {mean_between(lo, hi):.1f} |")
    lines.append(f"| after recovery | {mean_between(hi + 1500, workload.stop_tick):.1f} |")
    for line in lines[-3:]:
        print(line, flush=True)


def main():
    start = time.time()
    lines = ["# Experiment grid output", ""]
    fig5(lines)
    fig9(lines)
    fig9_smaller(lines)
    fig10(lines)
    fig11(lines)
    fig12(lines)
    lines.append(f"\n_total wall time: {time.time() - start:.0f} s_")
    text = "\n".join(lines) + "\n"
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"\nwrote {sys.argv[1]}")
    else:
        print(text)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Run the full reproduction experiment grid and emit markdown tables.

This is the script that generated the measured numbers recorded in
EXPERIMENTS.md.  It runs every case-study sweep at the default
(scaled-down) sizes; expect ~20-40 minutes of wall time serially, or
divide by ``--workers`` on a multi-core machine: every simulation in
the grid is independent, so each figure declares its config grid up
front and the grid runs through a
:class:`~repro.tools.taskrun.ParallelTaskManager`.  Workers rebuild
each ``Simulation`` from its config dict and return only the few
numbers the table needs, so the fan-out stays picklable.

Usage:  python scripts/run_experiments.py [--workers N] [output.md]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import Settings, Simulation
from repro.configs import (
    blast_pulse_config,
    credit_accounting_config,
    flow_control_config,
    latent_congestion_config,
)
from repro.tools.taskrun import FunctionTask, ParallelTaskManager


# -- worker-side collectors (module-level so they pickle) ---------------------

def collect_load_latency(config, max_time):
    """Run one simulation; return the two numbers every table wants."""
    results = Simulation(Settings.from_dict(config)).run(max_time=max_time)
    return {
        "accepted_load": results.accepted_load(),
        "mean_latency": results.latency().mean(),
    }


def collect_blast_phases(config, max_time, pulse_delay, pulse_duration):
    """Fig. 5: mean Blast latency before/during/after the Pulse burst."""
    results = Simulation(Settings.from_dict(config)).run(max_time=max_time)
    workload = results.workload
    blast = results.records(application_id=0)
    lo = workload.start_tick + pulse_delay
    hi = lo + pulse_duration

    def mean_between(a, b):
        window = [r.latency for r in blast if a <= r.created_tick < b]
        return sum(window) / len(window) if window else float("nan")

    return {
        "before": mean_between(workload.start_tick, lo),
        "during": mean_between(lo, hi),
        "after": mean_between(hi + 1500, workload.stop_tick),
    }


def run_grid(jobs, workers):
    """Run ``{key: (collector, args)}``; returns ``{key: result}``.

    With one worker everything runs inline (no process overhead); with
    more, jobs fan out across spawned processes.  Results come back
    keyed, so table-formatting code is identical either way.
    """
    if workers <= 1:
        return {key: func(*args) for key, (func, args) in jobs.items()}
    manager = ParallelTaskManager(
        resources={"sim": workers}, num_workers=workers
    )
    tasks = {
        key: manager.add_task(
            FunctionTask(str(key), func, args, resources={"sim": 1})
        )
        for key, (func, args) in jobs.items()
    }
    manager.run()
    for key, task in tasks.items():
        if task.error is not None:
            raise RuntimeError(f"grid job {key!r} failed") from task.error
    return {key: task.result for key, task in tasks.items()}


def section(lines, title):
    lines.append(f"\n### {title}\n")


def fig9(lines, workers):
    section(lines, "Fig. 9 — latent congestion detection")
    lines.append("| output queues | sense latency (ns) | accepted load | mean latency (ns) |")
    lines.append("|---|---|---|---|")
    grid = {}
    for depth, label in ((None, "infinite"), (64, "64 flits")):
        for sense in (1, 8, 32, 64):
            config = latent_congestion_config(
                congestion_latency=sense, output_queue_depth=depth,
                injection_rate=0.85, half_radix=4, warmup=1500, window=3000)
            config["network"]["num_levels"] = 2
            grid[(label, sense)] = (collect_load_latency, (config, 25_000))
    results = run_grid(grid, workers)
    for (label, sense), r in results.items():
        lines.append(
            f"| {label} | {sense} | {r['accepted_load']:.3f} "
            f"| {r['mean_latency']:.1f} |")
        print(lines[-1], flush=True)


def fig9_smaller(lines, workers):
    section(lines, "Fig. 9 text — smaller systems are milder")
    lines.append("| half radix | terminals | acc @ sense=1 | acc @ sense=32 | drop |")
    lines.append("|---|---|---|---|---|")
    grid = {}
    for half_radix in (2, 4):
        for sense in (1, 32):
            config = latent_congestion_config(
                congestion_latency=sense, output_queue_depth=64,
                injection_rate=0.85, half_radix=half_radix,
                warmup=1500, window=3000)
            config["network"]["num_levels"] = 2
            grid[(half_radix, sense)] = (collect_load_latency, (config, 25_000))
    results = run_grid(grid, workers)
    for half_radix in (2, 4):
        accs = {s: results[(half_radix, s)]["accepted_load"] for s in (1, 32)}
        drop = 1 - accs[32] / accs[1]
        lines.append(f"| {half_radix} | {half_radix**2} | {accs[1]:.3f} "
                     f"| {accs[32]:.3f} | {drop:.1%} |")
        print(lines[-1], flush=True)


def fig10(lines, workers):
    section(lines, "Fig. 10 — credit accounting styles (UGAL, IOQ)")
    grid = {}
    cases = (("uniform_random", 0.7), ("bit_complement", 0.6))
    styles = [
        (granularity, source)
        for granularity in ("vc", "port")
        for source in ("output", "downstream", "both")
    ]
    for traffic, rate in cases:
        for granularity, source in styles:
            config = credit_accounting_config(
                granularity=granularity, source=source, traffic=traffic,
                injection_rate=rate, warmup=1500, window=3000)
            grid[(traffic, granularity, source)] = (
                collect_load_latency, (config, 25_000))
    results = run_grid(grid, workers)
    for traffic, rate in cases:
        lines.append(f"\n**{traffic} @ {rate}**\n")
        lines.append("| style | accepted load | mean latency (ns) |")
        lines.append("|---|---|---|")
        for granularity, source in styles:
            r = results[(traffic, granularity, source)]
            lines.append(
                f"| {granularity}/{source} | {r['accepted_load']:.3f} "
                f"| {r['mean_latency']:.1f} |")
            print(lines[-1], flush=True)


def fig11(lines, workers):
    section(lines, "Fig. 11 — flow control throughput (offered 0.9)")
    lines.append("| VCs | message size | FB | PB | WTA |")
    lines.append("|---|---|---|---|---|")
    techniques = ("flit_buffer", "packet_buffer", "winner_take_all")
    grid = {}
    for vcs in (2, 4, 8):
        for size in (1, 8, 32):
            for technique in techniques:
                config = flow_control_config(
                    flow_control=technique, num_vcs=vcs, message_size=size,
                    injection_rate=0.9, warmup=1000, window=2000)
                config["network"]["dimension_widths"] = [4, 4]
                grid[(vcs, size, technique)] = (
                    collect_load_latency, (config, 14_000))
    results = run_grid(grid, workers)
    for vcs in (2, 4, 8):
        for size in (1, 8, 32):
            row = {t: results[(vcs, size, t)]["accepted_load"]
                   for t in techniques}
            lines.append(
                f"| {vcs} | {size} | {row['flit_buffer']:.3f} "
                f"| {row['packet_buffer']:.3f} "
                f"| {row['winner_take_all']:.3f} |")
            print(lines[-1], flush=True)


def fig12(lines, workers):
    section(lines, "Fig. 12 — flow control latency (8 VCs, 32-flit messages)")
    lines.append("| load | FB mean | PB mean | WTA mean |")
    lines.append("|---|---|---|---|")
    techniques = ("flit_buffer", "packet_buffer", "winner_take_all")
    grid = {}
    for load in (0.3, 0.5, 0.7):
        for technique in techniques:
            config = flow_control_config(
                flow_control=technique, num_vcs=8, message_size=32,
                injection_rate=load, warmup=1000, window=2500)
            config["network"]["dimension_widths"] = [4, 4]
            grid[(load, technique)] = (collect_load_latency, (config, 25_000))
    results = run_grid(grid, workers)
    for load in (0.3, 0.5, 0.7):
        row = {t: results[(load, t)]["mean_latency"] for t in techniques}
        lines.append(f"| {load} | {row['flit_buffer']:.1f} "
                     f"| {row['packet_buffer']:.1f} "
                     f"| {row['winner_take_all']:.1f} |")
        print(lines[-1], flush=True)


def fig5(lines, workers):
    section(lines, "Fig. 5 — Blast disrupted by Pulse")
    config = blast_pulse_config(blast_rate=0.2, pulse_rate=0.7,
                                pulse_delay=1500, pulse_duration=1000)
    phases = run_grid(
        {"fig5": (collect_blast_phases, (config, 150_000, 1500, 1000))},
        workers,
    )["fig5"]
    lines.append("| phase | Blast mean latency (ns) |")
    lines.append("|---|---|")
    lines.append(f"| before pulse | {phases['before']:.1f} |")
    lines.append(f"| during pulse | {phases['during']:.1f} |")
    lines.append(f"| after recovery | {phases['after']:.1f} |")
    for line in lines[-3:]:
        print(line, flush=True)


def main():
    parser = argparse.ArgumentParser(
        description="Run the reproduction experiment grid")
    parser.add_argument("output", nargs="?", default=None,
                        help="markdown output file (default: stdout)")
    parser.add_argument("--workers", type=int, default=os.cpu_count(),
                        help="worker processes (default: all cores)")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the preflight lint of the grid configs")
    args = parser.parse_args()

    if not args.no_lint:
        # Preflight: lint every base config before committing ~30 min
        # of simulation time to the grid.
        from repro.lint import lint_config_dict

        failed = False
        for builder in (blast_pulse_config, latent_congestion_config,
                        credit_accounting_config, flow_control_config):
            report = lint_config_dict(
                builder(), subject=builder.__name__, max_pairs=128
            )
            if report.findings:
                print(report.render_text(), file=sys.stderr)
            failed = failed or report.has_errors()
        if failed:
            print("preflight lint found errors; not running the grid",
                  file=sys.stderr)
            return 1

    start = time.time()
    lines = ["# Experiment grid output", ""]
    fig5(lines, args.workers)
    fig9(lines, args.workers)
    fig9_smaller(lines, args.workers)
    fig10(lines, args.workers)
    fig11(lines, args.workers)
    fig12(lines, args.workers)
    lines.append(f"\n_total wall time: {time.time() - start:.0f} s "
                 f"({args.workers} workers)_")
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"\nwrote {args.output}")
    else:
        print(text)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Profile a simulation and report where the model layer spends time.

By default profiles the benchmark workload of ``simulation_event_rate``
(4x4 torus, IQ routers, 30% load -- see scripts/bench_report.py), so

    PYTHONPATH=src python scripts/profile_sim.py

answers "what is hot right now" in one command.  Alternatively profile
any config:

    PYTHONPATH=src python scripts/profile_sim.py --config myconfig.json
    PYTHONPATH=src python scripts/profile_sim.py --config latent_congestion

``--config`` accepts either a JSON settings file path or the name of a
builtin config builder from ``repro.configs`` (the ``_config`` suffix is
optional).  The report prints the top ``--top`` functions by cumulative
and by internal time, and always dumps the raw profile to
``--pstats-out`` (default ``profile.pstats``) so the static perf lint
can correlate with it in one command::

    PYTHONPATH=src python scripts/profile_sim.py
    PYTHONPATH=src python -m repro.tools.sslint src/repro \\
        --layer perf --profile profile.pstats

Pass ``--pstats-out ''`` to skip the dump.  ``--pstats PATH`` is the
older spelling of the same flag.
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Settings, Simulation  # noqa: E402


def resolve_config(spec: str | None) -> dict:
    """A config dict from a file path, a builtin name, or the default."""
    if spec is None:
        sys.path.insert(0, str(REPO_ROOT))
        from tests.conftest import small_torus_config

        config = small_torus_config()
        config["workload"]["applications"][0]["injection_rate"] = 0.3
        return config
    path = pathlib.Path(spec)
    if path.exists():
        import json

        return json.loads(path.read_text(encoding="utf-8"))
    from repro import configs

    for name in (spec, f"{spec}_config"):
        builder = getattr(configs, name, None)
        if callable(builder):
            return builder()
    raise SystemExit(
        f"profile_sim: {spec!r} is neither a config file nor a builtin "
        "config builder from repro.configs"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--config",
        default=None,
        help="JSON settings file or builtin builder name from "
        "repro.configs (default: the simulation_event_rate workload)",
    )
    parser.add_argument(
        "--ticks",
        type=int,
        default=100_000,
        metavar="N",
        help="hard stop at this simulated tick (default 100000)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="rows per profile table (default 25)",
    )
    parser.add_argument(
        "--pstats-out",
        default="profile.pstats",
        metavar="PATH",
        help="dump the raw pstats profile to PATH (default "
        "profile.pstats; pass '' to skip) -- feed it to sslint "
        "--layer perf --profile",
    )
    parser.add_argument(
        "--pstats",
        default=None,
        metavar="PATH",
        help="alias for --pstats-out",
    )
    args = parser.parse_args()
    if args.pstats:
        args.pstats_out = args.pstats

    config = resolve_config(args.config)
    simulation = Simulation(Settings.from_dict(config))
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    simulation.run(max_time=args.ticks)
    profiler.disable()
    elapsed = time.perf_counter() - start
    events = simulation.simulator.executed_events
    print(
        f"{events} events in {elapsed:.2f}s under the profiler "
        f"({events / elapsed / 1000:.0f}k events/s; expect ~4-5x faster "
        "unprofiled)\n"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(args.top)
    stats.sort_stats("tottime").print_stats(args.top)
    if args.pstats_out:
        stats.dump_stats(args.pstats_out)
        print(f"pstats dump written to {args.pstats_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The Table I configuration builders."""

import pytest

from repro import Settings, Simulation
from repro.configs import (
    blast_pulse_config,
    credit_accounting_config,
    flow_control_config,
    latent_congestion_config,
    table1,
    with_overrides,
)


class TestBuilders:
    def test_latent_congestion_parameters_flow_through(self):
        config = latent_congestion_config(congestion_latency=7,
                                          output_queue_depth=None,
                                          injection_rate=0.4)
        sensor = config["network"]["router"]["congestion_sensor"]
        assert sensor["latency"] == 7
        assert config["network"]["router"]["output_queue_depth"] is None
        app = config["workload"]["applications"][0]
        assert app["injection_rate"] == 0.4

    def test_latent_congestion_scales(self):
        scaled = latent_congestion_config()
        full = latent_congestion_config(full_scale=True)
        assert scaled["network"]["half_radix"] < full["network"]["half_radix"]
        assert full["network"]["half_radix"] ** 3 == 4096

    def test_credit_accounting_styles(self):
        config = credit_accounting_config(granularity="vc", source="both")
        sensor = config["network"]["router"]["congestion_sensor"]
        assert sensor["granularity"] == "vc"
        assert sensor["source"] == "both"

    def test_credit_accounting_full_scale_matches_paper(self):
        config = credit_accounting_config(full_scale=True)
        network = config["network"]
        assert network["dimension_widths"] == [32]
        assert network["concentration"] == 32
        assert network["router"]["input_queue_depth"] == 128
        assert network["router"]["output_queue_depth"] == 256

    def test_flow_control_variants(self):
        config = flow_control_config(flow_control="packet_buffer",
                                     num_vcs=4, message_size=16)
        scheduler = config["network"]["router"]["crossbar_scheduler"]
        assert scheduler["flow_control"] == "packet_buffer"
        assert config["network"]["num_vcs"] == 4
        size = config["workload"]["applications"][0]["message_size"]["size"]
        assert size == 16

    def test_table1_has_all_three_studies(self):
        configs = table1()
        assert set(configs) == {
            "latent_congestion_detection",
            "congestion_credit_accounting",
            "flow_control_techniques",
        }

    def test_with_overrides_copies(self):
        base = latent_congestion_config()
        derived = with_overrides(base, simulator={"seed": 999})
        assert derived["simulator"]["seed"] == 999
        assert base["simulator"]["seed"] != 999


class TestConfigsAreBuildable:
    """Every builder output constructs a working simulation."""

    @pytest.mark.parametrize("builder,kwargs", [
        (latent_congestion_config, {"half_radix": 2}),
        (credit_accounting_config, {}),
        (flow_control_config, {}),
        (blast_pulse_config, {}),
    ])
    def test_constructs(self, builder, kwargs):
        config = builder(**kwargs)
        simulation = Simulation(Settings.from_dict(config))
        assert simulation.network.num_terminals > 0

"""Router architecture behaviours observed through tiny networks."""

import pytest

from tests.conftest import run_config


def chain_config(architecture, **router_extra):
    router = {
        "architecture": architecture,
        "input_queue_depth": 8,
        "core_latency": 3,
    }
    router.update(router_extra)
    return {
        "simulator": {"seed": 5},
        "network": {
            "topology": "parking_lot",
            "length": 3,
            "concentration": 1,
            "num_vcs": 2,
            "channel_latency": 2,
            "router": router,
            "interface": {"max_packet_size": 4},
            "routing": {"algorithm": "chain"},
        },
        "workload": {
            "applications": [{
                "type": "blast",
                "injection_rate": 0.2,
                "warmup_duration": 200,
                "generate_duration": 1000,
                "traffic": {"type": "neighbor", "offset": 1},
                "message_size": {"type": "constant", "size": 4},
            }]
        },
    }


@pytest.mark.parametrize("architecture,extra", [
    ("input_queued", {}),
    ("output_queued", {"output_queue_depth": 16}),
    ("output_queued", {"output_queue_depth": None}),
    ("input_output_queued", {"output_queue_depth": 16}),
])
def test_architecture_delivers(architecture, extra):
    _sim, results = run_config(chain_config(architecture, **extra))
    assert results.drained
    assert results.delivered_fraction() == 1.0


def test_core_latency_adds_to_zero_load_latency():
    slow = chain_config("input_queued", core_latency=20)
    fast = chain_config("input_queued", core_latency=1)
    for config in (slow, fast):
        config["workload"]["applications"][0]["injection_rate"] = 0.02
    _s1, slow_results = run_config(slow)
    _s2, fast_results = run_config(fast)
    # Each message crosses >= 2 routers: 19 extra ticks per router each.
    delta = slow_results.latency().mean() - fast_results.latency().mean()
    assert delta >= 2 * 19 * 0.9


def test_channel_latency_adds_to_latency():
    near = chain_config("input_queued")
    far = chain_config("input_queued")
    far["network"]["channel_latency"] = 30
    far["network"]["terminal_channel_latency"] = 30
    for config in (near, far):
        config["workload"]["applications"][0]["injection_rate"] = 0.02
        config["network"]["router"]["input_queue_depth"] = 128
    _s1, near_results = run_config(near)
    _s2, far_results = run_config(far)
    assert far_results.latency().mean() > near_results.latency().mean() + 50


def test_frequency_speedup_drains_faster_through_core():
    """With a 2-tick channel period and a 1-tick core, the IOQ crossbar
    achieves 2x speedup: an IOQ router keeps up with two inputs
    converging on one output at full channel rate."""
    config = chain_config("input_output_queued", output_queue_depth=32)
    config["network"]["channel_period"] = 2
    config["workload"]["applications"][0]["injection_rate"] = 0.45
    config["workload"]["applications"][0]["traffic"] = {
        "type": "all_to_one"}
    _sim, results = run_config(config)
    assert results.drained
    assert results.delivered_fraction() == 1.0


def test_oq_infinite_queue_absorbs_bursts():
    """The idealistic OQ router with infinite queues never backpressures
    its inputs: accepted equals offered even under all-to-one."""
    config = chain_config("output_queued", output_queue_depth=None)
    config["workload"]["applications"][0]["traffic"] = {"type": "all_to_one"}
    config["workload"]["applications"][0]["injection_rate"] = 0.3
    _sim, results = run_config(config)
    assert results.drained
    assert results.delivered_fraction() == 1.0


def test_input_buffer_depth_bounds_inflight():
    """A 1-deep... small input buffer with long channels throttles
    throughput (credit round trip), a deep one does not."""
    shallow = chain_config("input_queued", input_queue_depth=2)
    deep = chain_config("input_queued", input_queue_depth=64)
    for config in (shallow, deep):
        config["network"]["channel_latency"] = 10
        config["network"]["terminal_channel_latency"] = 10
        config["workload"]["applications"][0]["injection_rate"] = 0.5
        config["workload"]["applications"][0]["generate_duration"] = 2000
    _s1, shallow_results = run_config(shallow)
    _s2, deep_results = run_config(deep)
    assert deep_results.accepted_load() > shallow_results.accepted_load() * 1.5


def test_age_based_arbitration_fixes_parking_lot():
    """§IV-B: the parking-lot topology shows round-robin unfairness that
    age-based arbitration repairs."""
    def parking(arbiter_type, length=5):
        return {
            "simulator": {"seed": 9},
            "network": {
                "topology": "parking_lot",
                "length": length,
                "concentration": 1,
                "num_vcs": 1,
                "channel_latency": 1,
                "router": {
                    "architecture": "input_queued",
                    "input_queue_depth": 4,
                    "core_latency": 1,
                    "crossbar_scheduler": {
                        "flow_control": "flit_buffer",
                        "arbiter": {"type": arbiter_type},
                    },
                    # With a single VC, contention is resolved at VC
                    # allocation, so the VC scheduler carries the policy.
                    "vc_scheduler": {"arbiter": {"type": arbiter_type}},
                },
                "interface": {"max_packet_size": 1},
                "routing": {"algorithm": "chain"},
            },
            "workload": {
                "applications": [{
                    "type": "blast",
                    # 4 remote sources at 0.3 = 1.2x the head link's
                    # capacity: contended but not deeply overloaded.
                    "injection_rate": 0.3,
                    "warmup_duration": 1000,
                    "generate_duration": 4000,
                    "traffic": {"type": "all_to_one"},
                    "message_size": {"type": "constant", "size": 1},
                }]
            },
        }

    def fairness(results):
        # Deliveries per source *within the sampling window*: under
        # saturation the bandwidth each source receives during the
        # window is what the parking-lot problem distorts.
        stop = results.workload.stop_tick
        counts = {}
        for record in results.records():
            if record.delivered_tick <= stop:
                counts[record.source] = counts.get(record.source, 0) + 1
        counts.pop(0, None)  # terminal 0 talks to itself locally
        values = sorted(counts.values())
        return values[0] / values[-1]  # min/max ratio: 1.0 = fair

    _s1, rr = run_config(parking("round_robin"), max_time=100_000)
    _s2, age = run_config(parking("age_based"), max_time=100_000)
    assert fairness(age) > fairness(rr) * 1.5

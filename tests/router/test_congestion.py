"""Congestion sensors: delayed visibility, accounting styles (§VI-A/B)."""

import pytest

from repro.config.settings import Settings
from repro.core.component import Component
from repro.core.simulator import Simulator
from repro.router.congestion import (
    GRANULARITY_PORT,
    SOURCE_BOTH,
    SOURCE_DOWNSTREAM,
    SOURCE_OUTPUT,
    CreditSensor,
)


def make_sensor(sim, latency=1, granularity="vc", source="downstream",
                num_ports=2, num_vcs=2):
    parent = Component(sim, f"host{id(sim) % 1000}_{latency}_{granularity}_{source}")
    settings = Settings.from_dict(
        {"latency": latency, "granularity": granularity, "source": source}
    )
    return CreditSensor(sim, "sensor", parent, num_ports, num_vcs, settings)


@pytest.fixture
def sim():
    return Simulator()


def test_update_not_visible_before_latency(sim):
    sensor = make_sensor(sim, latency=10)
    sensor.init_port(0, downstream_capacity=[8, 8])
    seen = {}

    def record(event):
        sensor.record(SOURCE_DOWNSTREAM, 0, 0, +4)

    def check_early(event):
        seen["early"] = sensor.status(0, 0)

    def check_late(event):
        seen["late"] = sensor.status(0, 0)

    sim.call_at(0, record, epsilon=1)
    sim.call_at(5, check_early)
    sim.call_at(10, check_late)
    sim.run()
    assert seen["early"] == 0.0
    assert seen["late"] == pytest.approx(0.5)


def test_latent_view_is_stale_not_averaged(sim):
    """The sensed value is exactly the old value during the window."""
    sensor = make_sensor(sim, latency=4)
    sensor.init_port(0, downstream_capacity=[10])
    values = []

    def record(event):
        sensor.record(SOURCE_DOWNSTREAM, 0, 0, +5)

    sim.call_at(0, record, epsilon=1)
    for tick in range(1, 8):
        sim.call_at(tick, lambda e: values.append(sensor.status(0, 0)))
    sim.run()
    assert values == [0.0, 0.0, 0.0, pytest.approx(0.5), pytest.approx(0.5),
                      pytest.approx(0.5), pytest.approx(0.5)]


def test_vc_granularity_isolates_vcs(sim):
    sensor = make_sensor(sim, granularity="vc")
    sensor.init_port(0, downstream_capacity=[4, 4])
    out = {}

    def go(event):
        sensor.record(SOURCE_DOWNSTREAM, 0, 0, +4)

    def check(event):
        out["vc0"] = sensor.status(0, 0)
        out["vc1"] = sensor.status(0, 1)

    sim.call_at(0, go, epsilon=1)
    sim.call_at(5, check)
    sim.run()
    assert out["vc0"] == pytest.approx(1.0)
    assert out["vc1"] == 0.0


def test_port_granularity_aggregates_vcs(sim):
    sensor = make_sensor(sim, granularity=GRANULARITY_PORT)
    sensor.init_port(0, downstream_capacity=[4, 4])
    out = {}

    def go(event):
        sensor.record(SOURCE_DOWNSTREAM, 0, 0, +4)

    def check(event):
        # 4 of 8 total slots occupied regardless of which VC is asked.
        out["vc0"] = sensor.status(0, 0)
        out["vc1"] = sensor.status(0, 1)

    sim.call_at(0, go, epsilon=1)
    sim.call_at(5, check)
    sim.run()
    assert out["vc0"] == pytest.approx(0.5)
    assert out["vc1"] == pytest.approx(0.5)


def test_source_selection(sim):
    out = {}

    def build(source):
        sensor = make_sensor(sim, latency=1, source=source)
        sensor.init_port(0, output_capacity=[4, 4],
                         downstream_capacity=[8, 8])
        return sensor

    sensors = {s: build(s) for s in (SOURCE_OUTPUT, SOURCE_DOWNSTREAM, SOURCE_BOTH)}

    def go(event):
        for sensor in sensors.values():
            sensor.record(SOURCE_OUTPUT, 0, 0, +2)      # 2/4 output
            sensor.record(SOURCE_DOWNSTREAM, 0, 0, +2)  # 2/8 downstream

    def check(event):
        for name, sensor in sensors.items():
            out[name] = sensor.status(0, 0)

    sim.call_at(0, go, epsilon=1)
    sim.call_at(5, check)
    sim.run()
    assert out[SOURCE_OUTPUT] == pytest.approx(0.5)
    assert out[SOURCE_DOWNSTREAM] == pytest.approx(0.25)
    assert out[SOURCE_BOTH] == pytest.approx(4 / 12)


def test_infinite_capacity_reference(sim):
    sensor = make_sensor(sim, source=SOURCE_OUTPUT)
    sensor.init_port(0, output_capacity=[None, None])
    out = {}

    def go(event):
        sensor.record(SOURCE_OUTPUT, 0, 0, +32)

    def check(event):
        out["value"] = sensor.status(0, 0)

    sim.call_at(0, go, epsilon=1)
    sim.call_at(5, check)
    sim.run()
    # 32 flits against the 64-flit reference depth.
    assert out["value"] == pytest.approx(0.5)


def test_uninitialized_key_rejected(sim):
    sensor = make_sensor(sim)
    with pytest.raises(KeyError):
        sensor.record(SOURCE_DOWNSTREAM, 1, 0, +1)


def test_unknown_settings_rejected(sim):
    with pytest.raises(ValueError):
        make_sensor(sim, granularity="bogus")
    with pytest.raises(ValueError):
        make_sensor(sim, source="bogus")


def test_raw_occupancy(sim):
    sensor = make_sensor(sim, latency=2)
    sensor.init_port(0, downstream_capacity=[4])
    out = {}

    def go(event):
        sensor.record(SOURCE_DOWNSTREAM, 0, 0, +3)

    sim.call_at(0, go, epsilon=1)
    sim.call_at(5, lambda e: out.update(v=sensor.raw_occupancy(SOURCE_DOWNSTREAM, 0, 0)))
    sim.run()
    assert out["v"] == 3

"""Property-based tests of the crossbar scheduler's invariants."""

from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.config.settings import Settings
from repro.net.message import Message
from repro.router.crossbar_scheduler import (
    FLIT_BUFFER,
    PACKET_BUFFER,
    WINNER_TAKE_ALL,
    Bid,
    CrossbarScheduler,
)

MODES = (FLIT_BUFFER, PACKET_BUFFER, WINNER_TAKE_ALL)


class Workbench:
    """Drives a scheduler with a set of packets until all are granted
    or progress stops, checking invariants each cycle."""

    def __init__(self, mode, num_ports=3, num_vcs=2, credits=64):
        self.scheduler = CrossbarScheduler(
            num_ports, num_vcs,
            Settings.from_dict({"flow_control": mode}),
            lambda port, vc: self.credits[(port, vc)],
        )
        self.num_vcs = num_vcs
        self.credits = {
            (p, v): credits for p in range(num_ports) for v in range(num_vcs)
        }
        # stream id -> (packet, next flit index, in_port, in_vc, out_port,
        # out_vc)
        self.streams = {}

    def add_stream(self, stream_id, num_flits, in_port, in_vc, out_port,
                   out_vc):
        packet = Message(0, 0, 1, num_flits).packetize(num_flits)[0]
        self.streams[stream_id] = [packet, 0, in_port, in_vc, out_port, out_vc]

    def step(self, now):
        bids = []
        for packet, index, in_port, in_vc, out_port, out_vc in (
            self.streams.values()
        ):
            if index < packet.num_flits:
                bids.append(Bid(in_port, in_vc, packet,
                                packet.flits[index], out_port, out_vc))
        grants = self.scheduler.schedule(bids, now)
        # Invariant: at most one grant per output port.
        out_ports = [g.out_port for g in grants]
        assert len(out_ports) == len(set(out_ports))
        # Invariant: at most one grant per input VC.
        in_keys = [(g.in_port, g.in_vc) for g in grants]
        assert len(in_keys) == len(set(in_keys))
        for grant in grants:
            # Invariant: grants only go to actual bidders with credits.
            assert self.credits[(grant.out_port, grant.out_vc)] >= 1
            self.credits[(grant.out_port, grant.out_vc)] -= 1
            for entry in self.streams.values():
                if entry[0] is grant.packet:
                    assert entry[0].flits[entry[1]] is grant.flit
                    entry[1] += 1
        return grants


stream_strategy = st.tuples(
    st.integers(min_value=1, max_value=6),   # flits
    st.integers(min_value=0, max_value=2),   # in_port
    st.integers(min_value=0, max_value=1),   # in_vc
    st.integers(min_value=0, max_value=2),   # out_port
    st.integers(min_value=0, max_value=1),   # out_vc
)


@given(st.sampled_from(MODES),
       st.lists(stream_strategy, min_size=1, max_size=6))
@hyp_settings(max_examples=60, deadline=None)
def test_all_flits_eventually_granted_in_order(mode, stream_specs):
    """With ample credits every packet completes, flits in order, and
    (input VC, output VC) pairings never interleave within a stream."""
    bench = Workbench(mode)
    used_inputs = set()
    used_outputs = set()
    stream_id = 0
    for flits, in_port, in_vc, out_port, out_vc in stream_specs:
        # One stream per input VC and per output VC (wormhole ownership
        # is the router's job; the scheduler assumes it).
        if (in_port, in_vc) in used_inputs or (out_port, out_vc) in used_outputs:
            continue
        used_inputs.add((in_port, in_vc))
        used_outputs.add((out_port, out_vc))
        bench.add_stream(stream_id, flits, in_port, in_vc, out_port, out_vc)
        stream_id += 1
    if not bench.streams:
        return
    total_flits = sum(e[0].num_flits for e in bench.streams.values())
    granted = 0
    for cycle in range(total_flits * 4 + 10):
        granted += len(bench.step(cycle))
        if granted == total_flits:
            break
    assert granted == total_flits, f"{mode}: stalled at {granted}/{total_flits}"


@given(st.lists(stream_strategy, min_size=2, max_size=6))
@hyp_settings(max_examples=40, deadline=None)
def test_packet_buffer_never_interleaves_an_output(stream_specs):
    """Under PB, once an output port grants a packet, no other packet is
    granted on that port until the first one's tail."""
    bench = Workbench(PACKET_BUFFER)
    used_inputs, used_outputs = set(), set()
    stream_id = 0
    for flits, in_port, in_vc, out_port, out_vc in stream_specs:
        if (in_port, in_vc) in used_inputs or (out_port, out_vc) in used_outputs:
            continue
        used_inputs.add((in_port, in_vc))
        used_outputs.add((out_port, out_vc))
        bench.add_stream(stream_id, flits, in_port, in_vc, out_port, out_vc)
        stream_id += 1
    if not bench.streams:
        return
    active_packet = {}
    total = sum(e[0].num_flits for e in bench.streams.values())
    granted = 0
    for cycle in range(total * 4 + 10):
        for grant in bench.step(cycle):
            granted += 1
            current = active_packet.get(grant.out_port)
            if current is not None:
                assert current is grant.packet, "PB interleaved an output"
            if grant.flit.tail:
                active_packet[grant.out_port] = None
                active_packet.pop(grant.out_port)
            else:
                active_packet[grant.out_port] = grant.packet
        if granted == total:
            break
